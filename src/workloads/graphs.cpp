#include "workloads/graphs.hpp"

#include <string>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace banger::workloads {

using graph::TaskGraph;
using graph::TaskId;

namespace {

TaskId add(TaskGraph& g, std::string name, double work) {
  graph::Task t;
  t.name = std::move(name);
  t.work = work;
  return g.add_task(std::move(t));
}

bool power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

TaskGraph fft_taskgraph(int n, double work, double bytes) {
  if (!power_of_two(n) || n < 2) {
    fail(ErrorCode::Graph, "fft_taskgraph requires a power of two >= 2");
  }
  int stages = 0;
  while ((1 << stages) < n) ++stages;

  TaskGraph g;
  std::vector<TaskId> prev(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    prev[static_cast<std::size_t>(i)] =
        add(g, "s0_" + std::to_string(i), work);
  }
  for (int s = 1; s <= stages; ++s) {
    const int stride = 1 << (s - 1);
    std::vector<TaskId> cur(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      cur[static_cast<std::size_t>(i)] =
          add(g, "s" + std::to_string(s) + "_" + std::to_string(i), work);
      const int partner = i ^ stride;
      g.add_edge(prev[static_cast<std::size_t>(i)],
                 cur[static_cast<std::size_t>(i)], bytes);
      g.add_edge(prev[static_cast<std::size_t>(partner)],
                 cur[static_cast<std::size_t>(i)], bytes);
    }
    prev = std::move(cur);
  }
  return g;
}

TaskGraph fork_join(int width, double worker_work, double bytes) {
  if (width < 1) fail(ErrorCode::Graph, "fork_join requires width >= 1");
  TaskGraph g;
  const TaskId source = add(g, "fork", 1.0);
  const TaskId sink = add(g, "join", 1.0);
  for (int w = 0; w < width; ++w) {
    const TaskId worker = add(g, "work" + std::to_string(w), worker_work);
    g.add_edge(source, worker, bytes);
    g.add_edge(worker, sink, bytes);
  }
  return g;
}

TaskGraph pipeline(int stages, int width, bool coupled, double work,
                   double bytes) {
  if (stages < 1 || width < 1) {
    fail(ErrorCode::Graph, "pipeline requires stages, width >= 1");
  }
  TaskGraph g;
  std::vector<TaskId> prev;
  for (int s = 0; s < stages; ++s) {
    std::vector<TaskId> cur;
    cur.reserve(static_cast<std::size_t>(width));
    for (int w = 0; w < width; ++w) {
      cur.push_back(
          add(g, "p" + std::to_string(s) + "_" + std::to_string(w), work));
      if (s > 0) {
        g.add_edge(prev[static_cast<std::size_t>(w)], cur.back(), bytes);
        if (coupled && w > 0) {
          g.add_edge(prev[static_cast<std::size_t>(w - 1)], cur.back(),
                     bytes);
        }
        if (coupled && w + 1 < width) {
          g.add_edge(prev[static_cast<std::size_t>(w + 1)], cur.back(),
                     bytes);
        }
      }
    }
    prev = std::move(cur);
  }
  return g;
}

TaskGraph diamond(int rows, int cols, double work, double bytes) {
  if (rows < 1 || cols < 1) {
    fail(ErrorCode::Graph, "diamond requires rows, cols >= 1");
  }
  TaskGraph g;
  std::vector<std::vector<TaskId>> grid(
      static_cast<std::size_t>(rows),
      std::vector<TaskId>(static_cast<std::size_t>(cols)));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
          add(g, "d" + std::to_string(r) + "_" + std::to_string(c), work);
      if (r > 0) {
        g.add_edge(grid[static_cast<std::size_t>(r - 1)]
                       [static_cast<std::size_t>(c)],
                   grid[static_cast<std::size_t>(r)]
                       [static_cast<std::size_t>(c)],
                   bytes);
      }
      if (c > 0) {
        g.add_edge(grid[static_cast<std::size_t>(r)]
                       [static_cast<std::size_t>(c - 1)],
                   grid[static_cast<std::size_t>(r)]
                       [static_cast<std::size_t>(c)],
                   bytes);
      }
    }
  }
  return g;
}

TaskGraph reduction_tree(int leaves, double work, double bytes) {
  if (!power_of_two(leaves)) {
    fail(ErrorCode::Graph, "reduction_tree requires a power-of-two leaves");
  }
  TaskGraph g;
  std::vector<TaskId> level;
  for (int i = 0; i < leaves; ++i) {
    level.push_back(add(g, "leaf" + std::to_string(i), work));
  }
  int depth = 0;
  while (level.size() > 1) {
    ++depth;
    std::vector<TaskId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const TaskId parent = add(
          g, "r" + std::to_string(depth) + "_" + std::to_string(i / 2), work);
      g.add_edge(level[i], parent, bytes);
      g.add_edge(level[i + 1], parent, bytes);
      next.push_back(parent);
    }
    level = std::move(next);
  }
  return g;
}

TaskGraph divide_conquer(int depth, double work, double bytes) {
  if (depth < 1 || depth > 20) {
    fail(ErrorCode::Graph, "divide_conquer depth must be in [1,20]");
  }
  TaskGraph g;
  // Divide phase: out-tree.
  std::vector<std::vector<TaskId>> down(static_cast<std::size_t>(depth + 1));
  down[0].push_back(add(g, "div0_0", work));
  for (int d = 1; d <= depth; ++d) {
    for (std::size_t i = 0; i < down[static_cast<std::size_t>(d - 1)].size();
         ++i) {
      for (int child = 0; child < 2; ++child) {
        const TaskId id =
            add(g,
                "div" + std::to_string(d) + "_" +
                    std::to_string(2 * i + static_cast<std::size_t>(child)),
                work);
        g.add_edge(down[static_cast<std::size_t>(d - 1)][i], id, bytes);
        down[static_cast<std::size_t>(d)].push_back(id);
      }
    }
  }
  // Conquer phase: mirror in-tree.
  std::vector<TaskId> level = down[static_cast<std::size_t>(depth)];
  int up = 0;
  while (level.size() > 1) {
    ++up;
    std::vector<TaskId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const TaskId parent = add(
          g, "con" + std::to_string(up) + "_" + std::to_string(i / 2), work);
      g.add_edge(level[i], parent, bytes);
      g.add_edge(level[i + 1], parent, bytes);
      next.push_back(parent);
    }
    level = std::move(next);
  }
  return g;
}

TaskGraph chain_graph(int length, double work, double bytes) {
  if (length < 1) fail(ErrorCode::Graph, "chain requires length >= 1");
  TaskGraph g;
  TaskId prev = add(g, "c0", work);
  for (int i = 1; i < length; ++i) {
    const TaskId cur = add(g, "c" + std::to_string(i), work);
    g.add_edge(prev, cur, bytes);
    prev = cur;
  }
  return g;
}

TaskGraph random_layered(const RandomGraphSpec& spec) {
  if (spec.layers < 1 || spec.width < 1) {
    fail(ErrorCode::Graph, "random_layered requires layers, width >= 1");
  }
  util::Rng rng(spec.seed);
  TaskGraph g;
  // Nominal shape: layers x width tasks, edge_probability of the full
  // bipartite wiring between consecutive layers.
  g.reserve(static_cast<std::size_t>(spec.layers) *
                static_cast<std::size_t>(spec.width),
            static_cast<std::size_t>(
                static_cast<double>(spec.layers) * spec.width * spec.width *
                spec.edge_probability));
  std::vector<TaskId> prev;
  for (int layer = 0; layer < spec.layers; ++layer) {
    // Layer width varies a little around the nominal width.
    const int w = std::max<int>(
        1, spec.width +
               static_cast<int>(rng.uniform_int(-spec.width / 3,
                                                spec.width / 3)));
    std::vector<TaskId> cur;
    cur.reserve(static_cast<std::size_t>(w));
    for (int i = 0; i < w; ++i) {
      graph::Task t;
      t.name = "t" + std::to_string(layer) + "_" + std::to_string(i);
      t.work = rng.uniform(spec.work_lo, spec.work_hi);
      const TaskId id = g.add_task(std::move(t));
      cur.push_back(id);
      if (!prev.empty()) {
        bool wired = false;
        for (TaskId p : prev) {
          if (rng.chance(spec.edge_probability)) {
            g.add_edge(p, id, rng.uniform(spec.bytes_lo, spec.bytes_hi));
            wired = true;
          }
        }
        if (!wired) {
          // Keep every non-root task reachable: at least one parent.
          const TaskId p = prev[rng.next_below(prev.size())];
          g.add_edge(p, id, rng.uniform(spec.bytes_lo, spec.bytes_hi));
        }
      }
    }
    prev = std::move(cur);
  }
  return g;
}

}  // namespace banger::workloads
