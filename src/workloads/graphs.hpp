// banger/workloads/graphs.hpp
//
// Canonical task-graph generators used by tests and by the ablation
// benches: classic parallel-computing DAG shapes with work and message
// sizes that follow their textbook cost models. All generators produce
// deterministic graphs; random_layered is seeded.
#pragma once

#include <cstdint>

#include "graph/task_graph.hpp"

namespace banger::workloads {

/// FFT butterfly DAG: log2(n) stages of n tasks; each stage-s task feeds
/// the two tasks of the next stage that share its butterfly. n must be a
/// power of two >= 2.
graph::TaskGraph fft_taskgraph(int n, double work = 1.0, double bytes = 8.0);

/// Fork-join: source -> `width` independent workers -> sink.
graph::TaskGraph fork_join(int width, double worker_work = 1.0,
                           double bytes = 8.0);

/// `stages` x `width` pipeline grid: stage s task w depends on stage s-1
/// task w (and on its neighbour for `coupled` stencils).
graph::TaskGraph pipeline(int stages, int width, bool coupled = false,
                          double work = 1.0, double bytes = 8.0);

/// Diamond / wavefront grid of `rows` x `cols`: (r,c) depends on (r-1,c)
/// and (r,c-1) — Gauss-Seidel style sweep.
graph::TaskGraph diamond(int rows, int cols, double work = 1.0,
                         double bytes = 8.0);

/// Binary in-tree reduction of `leaves` (power of two) inputs.
graph::TaskGraph reduction_tree(int leaves, double work = 1.0,
                                double bytes = 8.0);

/// Binary out-tree (divide) of the given depth, then optionally a mirror
/// in-tree (conquer) — the divide-and-conquer diamond.
graph::TaskGraph divide_conquer(int depth, double work = 1.0,
                                double bytes = 8.0);

/// Linear chain of `length` tasks (zero exploitable parallelism).
graph::TaskGraph chain_graph(int length, double work = 1.0,
                             double bytes = 8.0);

/// Seeded random layered DAG: `layers` layers of ~`width` tasks, each
/// task wired to 1..3 tasks of the previous layer; work in
/// [work_lo, work_hi], bytes in [bytes_lo, bytes_hi].
struct RandomGraphSpec {
  int layers = 6;
  int width = 8;
  double edge_probability = 0.35;
  double work_lo = 1.0;
  double work_hi = 10.0;
  double bytes_lo = 8.0;
  double bytes_hi = 512.0;
  std::uint64_t seed = 1;
};
graph::TaskGraph random_layered(const RandomGraphSpec& spec);

}  // namespace banger::workloads
