// banger/workloads/designs.hpp
//
// Complete executable PITL designs beyond the paper's LU example — the
// "quick-and-dirty scientific programs" the introduction motivates. Each
// has PITS routines throughout, so it schedules, simulates, AND runs.
#pragma once

#include "graph/design.hpp"

namespace banger::workloads {

/// Monte-Carlo estimation of pi: `workers` independent sampler tasks
/// (each drawing `samples` seeded points) fan into a reduce task that
/// writes output store `pi_est`. Input store `unused`? none: samplers
/// are self-seeding sources.
graph::Design montecarlo_design(int workers, int samples);

/// A signal-processing pipeline over `channels` independent channels:
/// input store `signal` (one vector per run) -> per-channel bandpass
/// (moving average) -> rectify -> per-channel energy -> reduce to output
/// store `energy`. Two-level: each channel chain is a supernode.
graph::Design signal_pipeline_design(int channels, int window = 4);

/// Polynomial evaluation ensemble: input store `coeffs` and `xs`;
/// `workers` tasks evaluate a Horner polynomial over slices of `xs`;
/// a gather task concatenates into output store `ys`.
graph::Design polyeval_design(int workers);

/// 1-D explicit heat diffusion with halo exchange: the rod (input store
/// `rod`, segments*cells values) is split across `segments` chains of
/// `steps` update tasks; neighbouring segments exchange edge
/// temperatures each step (the classic ghost-cell pattern). Output
/// store `result` holds the final temperatures. alpha is the stability
/// parameter (< 0.5), boundary condition is fixed zero.
graph::Design heat_design(int segments, int steps, int cells,
                          double alpha = 0.2);

}  // namespace banger::workloads
