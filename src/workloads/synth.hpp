// banger/workloads/synth.hpp
//
// Makes arbitrary generated task graphs *executable*: synthesizes a PITS
// busy-work routine per task (deterministic numeric mixing of its inputs,
// loop length proportional to task work) and wires variable names along
// edges. Used by the prediction-accuracy ablation, which compares the
// scheduler's predicted makespan against real threaded wall time.
#pragma once

#include "graph/design.hpp"

namespace banger::workloads {

struct SynthOptions {
  /// Inner-loop iterations per unit of task work (calibrates how long a
  /// work unit takes on the host).
  int iterations_per_work = 200;
};

/// Fills every task's pits/inputs/outputs in place: task `t` outputs one
/// scalar named after itself, consuming its predecessors' scalars; edges
/// get matching variable labels.
void synthesize_pits(graph::TaskGraph& graph, const SynthOptions& options = {});

/// Wraps a (synthesized) task graph as a FlattenResult so the executor
/// can run it directly (no stores: sources self-seed).
graph::FlattenResult as_flatten(graph::TaskGraph graph);

}  // namespace banger::workloads
