// banger/workloads/lu.hpp
//
// The paper's running example (Fig. 1): LU decomposition of a 3x3 system
// Ax = b as a two-level hierarchical PITL design — complete with PITS
// routines, so the design not only schedules but actually *solves* the
// system through the executor. Also a scalable LU task-graph generator
// for the benches.
#pragma once

#include "graph/design.hpp"

namespace banger::workloads {

/// Figure 1: two-level hierarchical design. Root level: stores A, b, L,
/// U, x; fan/update tasks of Doolittle elimination; a bold `solve`
/// supernode. Child level: forward/back substitution through store y.
/// Every task has a working PITS routine; flatten + execute with
/// inputs {A: 9 values row-major, b: 3 values} yields output store x.
graph::Design lu3x3_design();

/// Scalable LU elimination DAG (no PITS): per step k a pivot/fan task
/// producing the column multipliers and one update task per remaining
/// row. Task work follows flop counts; edge bytes follow row sizes with
/// `element_bytes` per element. n >= 2.
graph::TaskGraph lu_taskgraph(int n, double element_bytes = 8.0);

}  // namespace banger::workloads
