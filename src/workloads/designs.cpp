#include "workloads/designs.hpp"

#include <string>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace banger::workloads {

using graph::Design;
using graph::Node;
using graph::NodeKind;

namespace {

Node store(std::string name, double bytes) {
  Node n;
  n.kind = NodeKind::Storage;
  n.name = std::move(name);
  n.bytes = bytes;
  return n;
}

Node task(std::string name, double work, std::vector<std::string> in,
          std::vector<std::string> out, std::string pits) {
  Node n;
  n.kind = NodeKind::Task;
  n.name = std::move(name);
  n.work = work;
  n.inputs = std::move(in);
  n.outputs = std::move(out);
  n.pits = std::move(pits);
  return n;
}

}  // namespace

Design montecarlo_design(int workers, int samples) {
  if (workers < 1 || samples < 1) {
    fail(ErrorCode::Graph, "montecarlo needs workers, samples >= 1");
  }
  Design design("montecarlo");
  graph::DataflowGraph& root = design.root_graph();
  root.add_node(store("pi_est", 8));

  std::vector<std::string> hit_vars;
  for (int w = 0; w < workers; ++w) {
    const std::string hv = "h" + std::to_string(w);
    hit_vars.push_back(hv);
    // Each sampler draws from its own task-seeded rand() stream.
    root.add_node(task(
        "sample" + std::to_string(w), samples / 50.0 + 1.0, {}, {hv},
        "hits := 0\n"
        "repeat " + std::to_string(samples) + " times\n"
        "  px := rand()\n"
        "  py := rand()\n"
        "  if px * px + py * py <= 1 then\n"
        "    hits := hits + 1\n"
        "  end\n"
        "end\n" +
        hv + " := hits\n"));
  }

  std::string reduce_src = "total := 0\n";
  for (const std::string& hv : hit_vars) {
    reduce_src += "total := total + " + hv + "\n";
  }
  reduce_src += "pi_est := 4 * total / " +
                std::to_string(static_cast<long long>(workers) * samples) +
                "\n";
  root.add_node(task("reduce", workers / 4.0 + 1.0, hit_vars, {"pi_est"},
                     reduce_src));
  for (int w = 0; w < workers; ++w) {
    root.connect("sample" + std::to_string(w), "reduce", hit_vars[static_cast<std::size_t>(w)], 8);
  }
  root.connect("reduce", "pi_est", "pi_est", 8);
  design.validate();
  return design;
}

Design signal_pipeline_design(int channels, int window) {
  if (channels < 1 || window < 1) {
    fail(ErrorCode::Graph, "signal pipeline needs channels, window >= 1");
  }
  Design design("signal_pipeline");
  graph::DataflowGraph& root = design.root_graph();
  root.add_node(store("signal", 1024));
  root.add_node(store("energy", 8.0 * channels));

  std::vector<std::string> energy_vars;
  for (int c = 0; c < channels; ++c) {
    const std::string ev = "e" + std::to_string(c);
    energy_vars.push_back(ev);

    // Each channel chain is a supernode expanding to filter->rectify->
    // energy — the "hierarchical decomposition" workflow of the paper.
    const graph::GraphId child =
        design.add_graph("chain" + std::to_string(c));
    graph::DataflowGraph& sub = design.graph(child);
    const std::string scale = std::to_string(c + 1);
    sub.add_node(task(
        "bandpass", 8, {"signal"}, {"f"},
        "n := len(signal)\n"
        "f := zeros(n)\n"
        "i := 0\n"
        "while i < n do\n"
        "  acc := 0\n"
        "  j := 0\n"
        "  while j < " + std::to_string(window) + " do\n"
        "    k := i - j\n"
        "    if k >= 0 then\n"
        "      acc := acc + signal[k]\n"
        "    end\n"
        "    j := j + 1\n"
        "  end\n"
        "  f[i] := acc / " + std::to_string(window) + " * " + scale + "\n"
        "  i := i + 1\n"
        "end\n"));
    sub.add_node(task("rectify", 2, {"f"}, {"r"}, "r := abs(f)\n"));
    sub.add_node(task("energy", 3, {"r"}, {ev},
                      ev + " := dot(r, r)\n"));
    sub.connect("bandpass", "rectify", "f", 1024);
    sub.connect("rectify", "energy", "r", 1024);

    Node super;
    super.kind = NodeKind::Super;
    super.name = "chan" + std::to_string(c);
    super.subgraph = child;
    super.inputs = {"signal"};
    super.outputs = {ev};
    root.add_node(std::move(super));
    root.connect("signal", "chan" + std::to_string(c), "signal", 1024);
  }

  std::string gather_src = "energy := zeros(" + std::to_string(channels) + ")\n";
  for (int c = 0; c < channels; ++c) {
    gather_src += "energy[" + std::to_string(c) + "] := " +
                  energy_vars[static_cast<std::size_t>(c)] + "\n";
  }
  root.add_node(task("gather", 1, energy_vars, {"energy"}, gather_src));
  for (int c = 0; c < channels; ++c) {
    root.connect("chan" + std::to_string(c), "gather",
                 energy_vars[static_cast<std::size_t>(c)], 8);
  }
  root.connect("gather", "energy", "energy", 8.0 * channels);
  design.validate();
  return design;
}

Design polyeval_design(int workers) {
  if (workers < 1) fail(ErrorCode::Graph, "polyeval needs workers >= 1");
  Design design("polyeval");
  graph::DataflowGraph& root = design.root_graph();
  root.add_node(store("coeffs", 64));
  root.add_node(store("xs", 1024));
  root.add_node(store("ys", 1024));

  std::vector<std::string> part_vars;
  for (int w = 0; w < workers; ++w) {
    const std::string pv = "y" + std::to_string(w);
    part_vars.push_back(pv);
    const std::string W = std::to_string(workers);
    const std::string I = std::to_string(w);
    root.add_node(task(
        "eval" + std::to_string(w), 8, {"coeffs", "xs"}, {pv},
        "n := len(xs)\n"
        "lo := floor(" + I + " * n / " + W + ")\n"
        "hi := floor((" + I + " + 1) * n / " + W + ")\n"
        "part := zeros(hi - lo)\n"
        "i := lo\n"
        "while i < hi do\n"
        "  acc := 0\n"
        "  j := len(coeffs) - 1\n"
        "  while j >= 0 do\n"
        "    acc := acc * xs[i] + coeffs[j]\n"
        "    j := j - 1\n"
        "  end\n"
        "  part[i - lo] := acc\n"
        "  i := i + 1\n"
        "end\n" +
        pv + " := part\n"));
    root.connect("coeffs", "eval" + std::to_string(w), "coeffs", 64);
    root.connect("xs", "eval" + std::to_string(w), "xs", 1024);
  }

  std::string gather_src = "ys := y0\n";
  for (int w = 1; w < workers; ++w) {
    gather_src += "ys := concat(ys, y" + std::to_string(w) + ")\n";
  }
  root.add_node(task("gather", workers / 2.0 + 1.0, part_vars, {"ys"},
                     gather_src));
  for (int w = 0; w < workers; ++w) {
    root.connect("eval" + std::to_string(w), "gather",
                 part_vars[static_cast<std::size_t>(w)], 1024.0 / workers);
  }
  root.connect("gather", "ys", "ys", 1024);
  design.validate();
  return design;
}

}  // namespace banger::workloads

namespace banger::workloads {

Design heat_design(int segments, int steps, int cells, double alpha) {
  if (segments < 1 || steps < 1 || cells < 2) {
    fail(ErrorCode::Graph, "heat_design needs segments,steps >= 1, cells >= 2");
  }
  if (alpha <= 0 || alpha >= 0.5) {
    fail(ErrorCode::Graph, "heat_design alpha must be in (0, 0.5)");
  }
  Design design("heat1d");
  graph::DataflowGraph& root = design.root_graph();
  const double chunk_bytes = 8.0 * cells;
  root.add_node(store("rod", chunk_bytes * segments));
  root.add_node(store("result", chunk_bytes * segments));

  auto u = [](int t, int s) {
    return "u" + std::to_string(t) + "_" + std::to_string(s);
  };
  auto el = [](int t, int s) {
    return "el" + std::to_string(t) + "_" + std::to_string(s);
  };
  auto er = [](int t, int s) {
    return "er" + std::to_string(t) + "_" + std::to_string(s);
  };

  // t = 0: slice the rod into per-segment chunks.
  for (int s = 0; s < segments; ++s) {
    const std::string lo = std::to_string(s * cells);
    const std::string hi = std::to_string((s + 1) * cells);
    root.add_node(task(
        "init" + std::to_string(s), 1.0, {"rod"},
        {u(0, s), el(0, s), er(0, s)},
        u(0, s) + " := slice(rod, " + lo + ", " + hi + ")\n" +
            el(0, s) + " := " + u(0, s) + "[0]\n" +
            er(0, s) + " := " + u(0, s) + "[" + std::to_string(cells - 1) +
            "]\n"));
    root.connect("rod", "init" + std::to_string(s), "rod",
                 chunk_bytes * segments);
  }

  // t = 1..steps: stencil updates with ghost cells from the neighbours.
  const std::string a = util::format_double(alpha, 12);
  for (int t = 1; t <= steps; ++t) {
    for (int s = 0; s < segments; ++s) {
      const std::string prev = u(t - 1, s);
      std::vector<std::string> in{prev};
      std::string ghost_left = "0";
      std::string ghost_right = "0";
      if (s > 0) {
        in.push_back(er(t - 1, s - 1));
        ghost_left = er(t - 1, s - 1);
      }
      if (s + 1 < segments) {
        in.push_back(el(t - 1, s + 1));
        ghost_right = el(t - 1, s + 1);
      }
      const std::string name =
          "st" + std::to_string(t) + "_" + std::to_string(s);
      root.add_node(task(
          name, static_cast<double>(cells) / 4.0, in,
          {u(t, s), el(t, s), er(t, s)},
          "n := len(" + prev + ")\n"
          "un := zeros(n)\n"
          "i := 0\n"
          "while i < n do\n"
          "  lft := when(i > 0, " + prev + "[i - 1], " + ghost_left + ")\n"
          "  rgt := when(i < n - 1, " + prev + "[i + 1], " + ghost_right +
          ")\n"
          "  un[i] := " + prev + "[i] + " + a + " * (lft - 2 * " + prev +
          "[i] + rgt)\n"
          "  i := i + 1\n"
          "end\n" +
          u(t, s) + " := un\n" + el(t, s) + " := un[0]\n" + er(t, s) +
          " := un[n - 1]\n"));

      const std::string prev_task =
          t == 1 ? "init" + std::to_string(s)
                 : "st" + std::to_string(t - 1) + "_" + std::to_string(s);
      root.connect(prev_task, name, prev, chunk_bytes);
      if (s > 0) {
        const std::string left_task =
            t == 1 ? "init" + std::to_string(s - 1)
                   : "st" + std::to_string(t - 1) + "_" +
                         std::to_string(s - 1);
        root.connect(left_task, name, er(t - 1, s - 1), 8);
      }
      if (s + 1 < segments) {
        const std::string right_task =
            t == 1 ? "init" + std::to_string(s + 1)
                   : "st" + std::to_string(t - 1) + "_" +
                         std::to_string(s + 1);
        root.connect(right_task, name, el(t - 1, s + 1), 8);
      }
    }
  }

  // Gather the final chunks.
  std::vector<std::string> final_chunks;
  std::string gather_src = "result := " + u(steps, 0) + "\n";
  final_chunks.push_back(u(steps, 0));
  for (int s = 1; s < segments; ++s) {
    gather_src += "result := concat(result, " + u(steps, s) + ")\n";
    final_chunks.push_back(u(steps, s));
  }
  root.add_node(task("gather", 1.0, final_chunks, {"result"}, gather_src));
  for (int s = 0; s < segments; ++s) {
    root.connect("st" + std::to_string(steps) + "_" + std::to_string(s),
                 "gather", u(steps, s), chunk_bytes);
  }
  root.connect("gather", "result", "result", chunk_bytes * segments);
  design.validate();
  return design;
}

}  // namespace banger::workloads
