#include "exec/executor.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <ostream>
#include <streambuf>
#include <thread>

#include "analyze/absint.hpp"
#include "obs/trace.hpp"
#include "pits/bytecode.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace banger::exec {

namespace {

using Clock = std::chrono::steady_clock;
using pits::Env;
using pits::Value;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Stable per-task seed so duplicate copies (and re-runs) agree. The
/// seed basis is historical (a truncated FNV offset basis) and must
/// stay verbatim: generated programs embed these values.
std::uint64_t seed_for(const std::string& task_name, std::uint64_t base) {
  return util::fnv1a64(task_name, 1469598103934665603ull ^ base);
}

/// Does this (possibly comma-joined) edge variable list carry `var`?
bool edge_carries(const std::string& edge_var, const std::string& var) {
  for (auto part : util::split(edge_var, ',')) {
    if (util::trim(part) == var) return true;
  }
  return false;
}

// ---- compiled-routine cache -----------------------------------------
//
// Parsing, abstract interpretation, and bytecode compilation used to
// happen once per run; on the trial hot path they dwarfed execution
// itself. The cache is process-wide and keyed by routine source text,
// so repeated runs of a design (or many designs sharing routines) pay
// for the front end exactly once. Parse/compile failures are not
// cached: they re-raise per run, exactly as before.

struct CachedProgram {
  std::string source;
  pits::Program program;
  std::shared_ptr<const pits::bc::Chunk> chunk;  ///< null -> walker only
};

class ProgramCache {
 public:
  CachedProgram get(const std::string& source) {
    const std::uint64_t key = util::fnv1a64(source);
    {
      std::lock_guard lock(mutex_);
      if (auto it = map_.find(key); it != map_.end()) {
        for (const CachedProgram& entry : it->second) {
          if (entry.source == source) return entry;
        }
      }
    }
    // Compile outside the lock; concurrent first-compilers of the same
    // source do redundant work, never wrong work.
    CachedProgram entry;
    entry.source = source;
    entry.program = pits::Program::parse(source);
    // The abstract interpreter supplies proofs that let the compiler
    // elide bounds/binding checks and batch statement ticks.
    analyze::precompile_optimized(entry.program);
    entry.chunk = entry.program.compiled_chunk();
    std::lock_guard lock(mutex_);
    // Double-checked insert: a concurrent first-compiler may have won
    // the race; reuse its entry instead of inserting a duplicate that
    // inflates size_ toward kCap.
    if (auto it = map_.find(key); it != map_.end()) {
      for (const CachedProgram& existing : it->second) {
        if (existing.source == source) return existing;
      }
    }
    if (size_ >= kCap) {  // crude but bounded: drop everything, rebuild
      map_.clear();
      size_ = 0;
    }
    map_[key].push_back(entry);
    ++size_;
    return entry;
  }

 private:
  // Must comfortably hold the largest bundled design (the 32x32 heat
  // workload carries ~1k distinct routines); a design bigger than this
  // recompiles per run instead of growing without bound.
  static constexpr std::size_t kCap = 4096;
  std::mutex mutex_;
  std::map<std::uint64_t, std::vector<CachedProgram>> map_;
  std::size_t size_ = 0;
};

ProgramCache& program_cache() {
  static ProgramCache cache;
  return cache;
}

// ---- design plans ----------------------------------------------------
//
// Everything about a run that does not depend on input values is
// resolved once per run into index-based plans: which predecessor (and
// which of its outputs) feeds each task input, which chunk slot each
// variable lives in, which writer supplies each store. The per-task hot
// path then binds VM registers directly instead of building a
// std::map<std::string, Value> environment per task.

/// Per-trial task outputs, in Task::outputs declaration order.
using TaskOutputs = std::vector<Value>;
using ExternalInputs = std::map<std::string, Value>;

/// How one declared input of a task receives its value. Resolution
/// order mirrors the historical bind_inputs: a labelled in-edge whose
/// producer declares the variable, then any producing predecessor, then
/// an external input store; anything else is an error raised when the
/// task is reached (not at plan time — earlier tasks' runtime errors
/// must still win).
struct InputBinding {
  enum class Kind : std::uint8_t { Producer, External, Nothing };
  Kind kind = Kind::Nothing;
  std::uint32_t var = 0;  ///< index into Task::inputs
  TaskId producer = graph::kNoTask;
  std::uint32_t producer_out = 0;  ///< index into the producer's outputs
  std::int32_t slot = -1;          ///< chunk slot, -1 when not in the chunk
  /// True when this binding is the only reference to the producer's
  /// value (no other consumer, no pass-through re-resolve, no store
  /// writer), so resolving may move it out instead of copying.
  bool take = false;
};

struct OutputPlan {
  std::int32_t slot = -1;        ///< chunk slot, -1 when not in the chunk
  std::int32_t pass_input = -1;  ///< binding index for input pass-through
};

struct TaskPlan {
  pits::Program program;
  std::shared_ptr<const pits::bc::Chunk> chunk;
  bool runnable = false;
  /// False when a variable repeats in Task::outputs: collection then
  /// copies values instead of moving them out of the frame.
  bool unique_outputs = true;
  std::vector<InputBinding> inputs;
  std::vector<OutputPlan> outputs;
};

struct StoreWriter {
  TaskId task = graph::kNoTask;
  std::uint32_t out = 0;  ///< index into the writer's outputs
};

struct DesignPlan {
  std::vector<TaskPlan> tasks;
  /// Per flat.stores entry: writers that actually declare the store's
  /// variable, in writer order (the last one present wins).
  std::vector<std::vector<StoreWriter>> store_writers;
  /// True when the resolved PITS engine is the VM (slot-frame path).
  bool vm_engine = false;
};

std::optional<std::uint32_t> output_index(const graph::Task& task,
                                          const std::string& var) {
  for (std::size_t i = 0; i < task.outputs.size(); ++i) {
    if (task.outputs[i] == var) return static_cast<std::uint32_t>(i);
  }
  return std::nullopt;
}

/// `allow_take` enables the sole-use move optimization below. It is only
/// sound when every task executes exactly once (run_sequential /
/// run_trials): a scheduled run re-binds the same producer value for
/// duplicate copies and fault rescues, and its duplicate cross-check
/// compares fresh outputs against the stored value — a consumer that
/// moved the value out breaks both.
DesignPlan build_plan(const FlattenResult& flat, const RunOptions& options,
                      bool allow_take) {
  const graph::TaskGraph& g = flat.graph;
  DesignPlan plan;
  plan.vm_engine = pits::resolve_engine(options.pits.engine) ==
                   pits::ExecOptions::Engine::Vm;
  plan.tasks.resize(g.num_tasks());
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    const graph::Task& task = g.task(t);
    TaskPlan& tp = plan.tasks[t];
    if (util::trim(task.pits).empty()) {
      if (!task.outputs.empty()) {
        fail(ErrorCode::Runtime,
             "task `" + task.name +
                 "` declares outputs but has no PITS routine");
      }
      // Pure synchronisation node: legal no-op (inputs still bind).
    } else {
      try {
        CachedProgram cached = program_cache().get(task.pits);
        tp.program = std::move(cached.program);
        tp.chunk = std::move(cached.chunk);
        tp.runnable = true;
      } catch (const Error& e) {
        fail(e.code(), "in task `" + task.name + "`: " + e.message(),
             e.pos());
      }
    }
    const pits::bc::Chunk* chunk =
        plan.vm_engine ? tp.chunk.get() : nullptr;
    auto slot_of = [&](const std::string& var) -> std::int32_t {
      if (chunk == nullptr) return -1;
      for (std::size_t s = 0; s < chunk->vars.size(); ++s) {
        if (chunk->names[chunk->vars[s].name] == var) {
          return static_cast<std::int32_t>(s);
        }
      }
      return -1;
    };
    tp.inputs.reserve(task.inputs.size());
    for (std::size_t i = 0; i < task.inputs.size(); ++i) {
      const std::string& var = task.inputs[i];
      InputBinding b;
      b.var = static_cast<std::uint32_t>(i);
      b.slot = slot_of(var);
      bool bound = false;
      // 1. A predecessor whose edge is labelled with this variable and
      // whose task declares it (a task's produced environment is exactly
      // its declared outputs, so the check is static).
      for (graph::EdgeId e : g.in_edges(t)) {
        const graph::Edge& edge = g.edge(e);
        if (!edge_carries(edge.var, var)) continue;
        if (auto out = output_index(g.task(edge.from), var)) {
          b.kind = InputBinding::Kind::Producer;
          b.producer = edge.from;
          b.producer_out = *out;
          bound = true;
          break;
        }
      }
      // 2. Unlabelled precedence edge from a predecessor that declares
      // the variable as an output (synthetic graphs wire values this way).
      if (!bound) {
        for (graph::EdgeId e : g.in_edges(t)) {
          const graph::Edge& edge = g.edge(e);
          if (auto out = output_index(g.task(edge.from), var)) {
            b.kind = InputBinding::Kind::Producer;
            b.producer = edge.from;
            b.producer_out = *out;
            bound = true;
            break;
          }
        }
      }
      // 3. An external input store of that variable.
      if (!bound) {
        if (const graph::FlatStore* store = flat.find_store(var);
            store != nullptr && store->writers.empty()) {
          b.kind = InputBinding::Kind::External;
        }
        // else Kind::Nothing: errors when (and only when) the task runs.
      }
      tp.inputs.push_back(b);
    }
    tp.outputs.reserve(task.outputs.size());
    for (std::size_t i = 0; i < task.outputs.size(); ++i) {
      const std::string& var = task.outputs[i];
      OutputPlan op;
      op.slot = slot_of(var);
      for (std::size_t j = 0; j < task.inputs.size(); ++j) {
        if (task.inputs[j] == var) {
          op.pass_input = static_cast<std::int32_t>(j);
          break;
        }
      }
      if (*output_index(task, var) != i) tp.unique_outputs = false;
      tp.outputs.push_back(op);
    }
  }
  plan.store_writers.resize(flat.stores.size());
  for (std::size_t s = 0; s < flat.stores.size(); ++s) {
    for (TaskId w : flat.stores[s].writers) {
      if (auto out = output_index(g.task(w), flat.stores[s].var)) {
        plan.store_writers[s].push_back({w, *out});
      }
    }
  }
  // Count every read of each produced value — consumer bindings,
  // pass-through re-resolves at collection time, and store writers.
  // A value read exactly once can be moved to its consumer instead of
  // copied, which matters when tasks hand large vectors down a chain.
  if (allow_take) {
    std::vector<std::vector<std::uint32_t>> uses(g.num_tasks());
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      uses[t].assign(g.task(t).outputs.size(), 0);
    }
    auto count_use = [&](const InputBinding& b) {
      if (b.kind == InputBinding::Kind::Producer &&
          b.producer_out < uses[b.producer].size()) {
        ++uses[b.producer][b.producer_out];
      }
    };
    for (const TaskPlan& tp : plan.tasks) {
      for (const InputBinding& b : tp.inputs) count_use(b);
      for (const OutputPlan& op : tp.outputs) {
        if (op.pass_input >= 0) {
          count_use(tp.inputs[static_cast<std::size_t>(op.pass_input)]);
        }
      }
    }
    for (const auto& writers : plan.store_writers) {
      for (const StoreWriter& w : writers) {
        if (w.out < uses[w.task].size()) ++uses[w.task][w.out];
      }
    }
    for (TaskPlan& tp : plan.tasks) {
      for (InputBinding& b : tp.inputs) {
        b.take = b.kind == InputBinding::Kind::Producer &&
                 b.producer_out < uses[b.producer].size() &&
                 uses[b.producer][b.producer_out] == 1;
      }
    }
  }
  return plan;
}

// ---- per-thread execution scratch ------------------------------------

/// Append-only streambuf over a pooled std::string: print() output
/// lands in a reusable buffer instead of a fresh ostringstream per task.
class TranscriptBuf final : public std::streambuf {
 public:
  std::string text;

 protected:
  int_type overflow(int_type ch) override {
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      text.push_back(traits_type::to_char_type(ch));
    }
    return traits_type::not_eof(ch);
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    text.append(s, static_cast<std::size_t>(n));
    return n;
  }
};

/// Reusable per-thread execution state: the VM register frame and the
/// transcript buffer keep their capacity across tasks and trials.
struct TaskScratch {
  pits::bc::Frame frame;
  TranscriptBuf transcript;
  std::ostream transcript_stream{&transcript};
};

/// Resolves one input value. Producer outputs are stable once written
/// (each task's slot is assigned exactly once, before any dependant
/// binds), so reads need no lock beyond the caller's ordering.
Value resolve_binding(const graph::Task& task, const InputBinding& b,
                      const ExternalInputs& external,
                      std::vector<std::optional<TaskOutputs>>& outs) {
  switch (b.kind) {
    case InputBinding::Kind::Producer: {
      auto& produced = outs[b.producer];
      BANGER_ASSERT(produced.has_value(), "predecessor not yet executed");
      Value& v = (*produced)[b.producer_out];
      if (b.take) return std::move(v);
      return v;
    }
    case InputBinding::Kind::External: {
      auto it = external.find(task.inputs[b.var]);
      if (it == external.end()) {
        fail(ErrorCode::Runtime, "no value supplied for input store `" +
                                     task.inputs[b.var] +
                                     "` needed by task `" + task.name + "`");
      }
      return it->second;
    }
    case InputBinding::Kind::Nothing:
      break;
  }
  fail(ErrorCode::Runtime, "input `" + task.inputs[b.var] + "` of task `" +
                               task.name + "` is bound to nothing");
}

/// Resolves task `t`'s inputs. Slot path (VM engine + compiled chunk):
/// binds values straight into scratch.frame. Walker path: fills `env`.
/// Returns true when the slot path is active.
bool bind_task(const FlattenResult& flat, const DesignPlan& plan, TaskId t,
               const ExternalInputs& external,
               std::vector<std::optional<TaskOutputs>>& outs,
               TaskScratch& scratch, Env& env) {
  const graph::Task& task = flat.graph.task(t);
  const TaskPlan& tp = plan.tasks[t];
  const bool slots = plan.vm_engine && tp.chunk != nullptr;
  if (slots) scratch.frame.prepare(*tp.chunk);
  for (const InputBinding& b : tp.inputs) {
    Value v = resolve_binding(task, b, external, outs);
    if (slots) {
      if (b.slot >= 0) {
        scratch.frame.bind(static_cast<std::uint16_t>(b.slot), std::move(v));
      }
      // Inputs the routine never mentions have no slot; pass-through
      // outputs re-resolve them at collection time.
    } else {
      env[task.inputs[b.var]] = std::move(v);
    }
  }
  return slots;
}

/// Executes task `t` after bind_task and collects its declared outputs,
/// in declaration order. `env` is consumed (walker path only).
TaskOutputs execute_task(const FlattenResult& flat, const DesignPlan& plan,
                         TaskId t, bool slots, Env env, TaskScratch& scratch,
                         const RunOptions& options,
                         const ExternalInputs& external,
                         std::vector<std::optional<TaskOutputs>>& outs,
                         std::string* transcript) {
  const graph::Task& task = flat.graph.task(t);
  const TaskPlan& tp = plan.tasks[t];
  TaskOutputs outputs;
  if (!tp.runnable) return outputs;

  const bool capture = transcript != nullptr && options.capture_transcript;
  scratch.transcript.text.clear();
  pits::ExecOptions exec_opts = options.pits;
  exec_opts.seed = seed_for(task.name, options.pits.seed);
  exec_opts.out = capture ? &scratch.transcript_stream : nullptr;
  try {
    if (slots) {
      pits::bc::run_frame(*tp.chunk, scratch.frame, exec_opts);
    } else {
      tp.program.execute(env, exec_opts);
    }
  } catch (const Error& e) {
    fail(e.code(), "in task `" + task.name + "`: " + e.message(), e.pos());
  }
  outputs.reserve(task.outputs.size());
  for (std::size_t i = 0; i < task.outputs.size(); ++i) {
    const OutputPlan& op = tp.outputs[i];
    if (slots) {
      if (op.slot >= 0 &&
          scratch.frame.states[static_cast<std::size_t>(op.slot)] ==
              pits::bc::kSlotBound) {
        if (tp.unique_outputs) {
          outputs.push_back(
              std::move(scratch.frame.regs[static_cast<std::size_t>(op.slot)]));
        } else {
          outputs.push_back(
              scratch.frame.regs[static_cast<std::size_t>(op.slot)]);
        }
        continue;
      }
      if (op.pass_input >= 0) {
        // Declared output the routine never assigns but receives as an
        // input: the walker's environment carries it through verbatim.
        outputs.push_back(resolve_binding(
            task, tp.inputs[static_cast<std::size_t>(op.pass_input)],
            external, outs));
        continue;
      }
    } else {
      if (auto it = env.find(task.outputs[i]); it != env.end()) {
        outputs.push_back(it->second);
        continue;
      }
    }
    fail(ErrorCode::Runtime, "task `" + task.name +
                                 "` never assigned its output `" +
                                 task.outputs[i] + "`");
  }
  if (capture && !scratch.transcript.text.empty()) {
    *transcript += "[" + task.name + "]\n" + scratch.transcript.text;
  }
  return outputs;
}

/// Collects final store values (writer with the latest position wins; in
/// practice designs have a single writer per store).
void collect_stores(const FlattenResult& flat, const DesignPlan& plan,
                    const std::vector<std::optional<TaskOutputs>>& task_outputs,
                    const ExternalInputs& external, RunResult& result) {
  for (std::size_t s = 0; s < flat.stores.size(); ++s) {
    const graph::FlatStore& store = flat.stores[s];
    if (store.writers.empty()) {
      if (auto it = external.find(store.var); it != external.end()) {
        result.stores[store.var] = it->second;
      }
      continue;
    }
    for (const StoreWriter& w : plan.store_writers[s]) {
      const auto& produced = task_outputs[w.task];
      if (!produced) continue;
      result.stores[store.var] = (*produced)[w.out];
    }
    if (store.readers.empty()) {
      if (auto it = result.stores.find(store.var); it != result.stores.end()) {
        result.outputs[store.var] = it->second;
      }
    }
  }
}

}  // namespace

RunResult run_sequential(const FlattenResult& flat,
                         const std::map<std::string, pits::Value>& inputs,
                         const RunOptions& options) {
  const DesignPlan plan = build_plan(flat, options, /*allow_take=*/true);
  const auto t0 = Clock::now();

  RunResult result;
  obs::TraceRecorder* rec = obs::current();
  TaskScratch scratch;
  std::vector<std::optional<TaskOutputs>> task_outputs(flat.graph.num_tasks());
  for (TaskId t : flat.graph.topo_order()) {
    Env env;
    const bool slots =
        bind_task(flat, plan, t, inputs, task_outputs, scratch, env);
    TaskRun run;
    run.task = t;
    run.proc = 0;
    run.wall_start = seconds_since(t0);
    task_outputs[t] =
        execute_task(flat, plan, t, slots, std::move(env), scratch, options,
                     inputs, task_outputs, &result.transcript);
    run.wall_finish = seconds_since(t0);
    if (rec) {
      rec->span(obs::Domain::Wall, obs::kTrackExec, 0, run.wall_start,
                run.wall_finish, flat.graph.task(t).name, "task");
      rec->bump("exec.tasks");
    }
    result.runs.push_back(run);
  }
  collect_stores(flat, plan, task_outputs, inputs, result);
  result.wall_seconds = seconds_since(t0);
  if (rec) {
    rec->bump("exec.runs");
    rec->bump("exec.wall_seconds", result.wall_seconds);
  }
  return result;
}

std::vector<TrialOutcome> run_trials(
    const FlattenResult& flat,
    const std::vector<std::map<std::string, pits::Value>>& inputs,
    const RunOptions& options, int jobs) {
  const DesignPlan plan = build_plan(flat, options, /*allow_take=*/true);
  const std::vector<TaskId> order = flat.graph.topo_order();
  obs::TraceRecorder* rec = obs::current();

  auto one_trial = [&](const ExternalInputs& external,
                       TaskScratch& scratch) -> TrialOutcome {
    TrialOutcome out;
    try {
      const auto t0 = Clock::now();
      RunResult result;
      std::vector<std::optional<TaskOutputs>> task_outputs(
          flat.graph.num_tasks());
      for (TaskId t : order) {
        Env env;
        const bool slots =
            bind_task(flat, plan, t, external, task_outputs, scratch, env);
        TaskRun run;
        run.task = t;
        run.proc = 0;
        run.wall_start = seconds_since(t0);
        task_outputs[t] =
            execute_task(flat, plan, t, slots, std::move(env), scratch,
                         options, external, task_outputs, &result.transcript);
        run.wall_finish = seconds_since(t0);
        result.runs.push_back(run);
      }
      collect_stores(flat, plan, task_outputs, external, result);
      result.wall_seconds = seconds_since(t0);
      out.ok = true;
      out.result = std::move(result);
    } catch (const Error& e) {
      // Exactly what the one-shot run would have thrown for this input;
      // neighbouring trials are unaffected.
      out.error_code = e.code();
      out.error = e.message();
      out.error_pos = e.pos();
    }
    return out;
  };

  std::vector<TrialOutcome> results(inputs.size());
  if (jobs == 1) {
    TaskScratch scratch;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      results[i] = one_trial(inputs[i], scratch);
    }
  } else {
    util::parallel_for(inputs.size(), jobs, [&](std::size_t i) {
      static thread_local TaskScratch scratch;
      results[i] = one_trial(inputs[i], scratch);
    });
  }
  if (rec) {
    rec->bump("exec.trial_batches");
    rec->bump("exec.trials", static_cast<double>(inputs.size()));
  }
  return results;
}

Executor::Executor(const FlattenResult& flat, const Machine& machine)
    : flat_(flat), machine_(machine) {}

RunResult Executor::run(const Schedule& schedule,
                        const std::map<std::string, pits::Value>& inputs,
                        const RunOptions& options) const {
  const graph::TaskGraph& g = flat_.graph;
  if (schedule.num_procs() != machine_.num_procs()) {
    fail(ErrorCode::Schedule, "schedule/machine processor count mismatch");
  }
  // Moves are unsafe here: schedule duplicates and fault rescues bind
  // the same producer output more than once, and the duplicate
  // cross-check below compares against the stored value.
  const DesignPlan design = build_plan(flat_, options, /*allow_take=*/false);

  // Per-processor lanes in schedule order.
  std::vector<std::vector<sched::Placement>> lanes(
      static_cast<std::size_t>(machine_.num_procs()));
  for (ProcId p = 0; p < machine_.num_procs(); ++p) {
    lanes[static_cast<std::size_t>(p)] = schedule.lane(p);
  }
  {
    std::vector<int> seen(g.num_tasks(), 0);
    for (const auto& lane : lanes)
      for (const auto& pl : lane)
        if (!pl.duplicate) ++seen[pl.task];
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      if (seen[t] != 1) {
        fail(ErrorCode::Schedule, "task `" + g.task(t).name +
                                      "` has no unique primary placement");
      }
    }
  }

  const fault::FaultPlan* plan =
      (options.faults != nullptr && !options.faults->empty()) ? options.faults
                                                              : nullptr;
  if (plan != nullptr) plan->validate(machine_.num_procs());

  // Shared state.
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::optional<TaskOutputs>> task_outputs(g.num_tasks());
  std::vector<bool> completed(g.num_tasks(), false);
  // Where and when each task's primary copy completed (for the trace
  // layer's cross-processor flow arrows). Guarded by `mutex`.
  std::vector<ProcId> completed_on(g.num_tasks(), -1);
  std::vector<double> completed_at(g.num_tasks(), 0.0);
  std::size_t completed_count = 0;
  std::vector<sched::Placement> orphans;  // stranded lanes of dead workers
  bool failed = false;
  // Every worker-thread failure, in arrival order. The first one is
  // rethrown after the join with its processor attached; the rest are
  // preserved in the trace layer instead of being dropped.
  struct WorkerFailure {
    ProcId proc = -1;
    ErrorCode code = ErrorCode::Runtime;
    std::string message;
    SourcePos pos;
  };
  std::vector<WorkerFailure> failures;
  obs::TraceRecorder* rec = obs::current();
  RunResult result;
  const auto t0 = Clock::now();
  const auto poll =
      std::chrono::duration<double>(std::max(1e-4, options.rescue_poll_seconds));

  auto preds_done = [&](TaskId t) {
    for (graph::EdgeId e : g.in_edges(t)) {
      if (!completed[g.edge(e).from]) return false;
    }
    return true;
  };

  // Mutex held: claims the first orphan whose inputs are available,
  // discarding orphans of tasks that completed meanwhile.
  auto claim_orphan = [&]() -> std::optional<sched::Placement> {
    for (std::size_t i = 0; i < orphans.size();) {
      if (completed[orphans[i].task]) {
        orphans.erase(orphans.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      if (preds_done(orphans[i].task)) {
        const sched::Placement pl = orphans[i];
        orphans.erase(orphans.begin() + static_cast<std::ptrdiff_t>(i));
        return pl;
      }
      ++i;
    }
    return std::nullopt;
  };

  // Runs one placement on `proc` (predecessors must already be complete)
  // and records the outcome.
  auto execute_placement = [&](const sched::Placement& pl, ProcId proc,
                               bool rescued, TaskScratch& scratch) {
    const TaskId t = pl.task;
    Env env;
    bool slots = false;
    {
      std::lock_guard lock(mutex);
      if (failed) return;
      slots = bind_task(flat_, design, t, inputs, task_outputs, scratch, env);
    }

    TaskRun run;
    run.task = t;
    run.proc = proc;
    run.duplicate = pl.duplicate;
    run.rescued = rescued;
    run.wall_start = seconds_since(t0);
    std::string transcript;
    TaskOutputs outputs =
        execute_task(flat_, design, t, slots, std::move(env), scratch,
                     options, inputs, task_outputs, &transcript);
    run.wall_finish = seconds_since(t0);

    if (rec) {
      std::string args = "\"proc\": " + std::to_string(proc);
      if (pl.duplicate) args += ", \"duplicate\": true";
      if (rescued) args += ", \"rescued\": true";
      rec->span(obs::Domain::Wall, obs::kTrackExec, proc, run.wall_start,
                run.wall_finish, g.task(t).name, "task", args);
      rec->bump("exec.tasks");
      // Cross-processor input flows: one arrow per in-edge whose
      // producer finished on another processor (the executor's moral
      // equivalent of a message send).
      std::lock_guard lock(mutex);
      for (graph::EdgeId e : g.in_edges(t)) {
        const TaskId from = g.edge(e).from;
        if (completed_on[from] < 0 || completed_on[from] == proc) continue;
        const std::string name = "edge" + std::to_string(e);
        rec->flow_point(obs::Domain::Wall, obs::kTrackExec,
                        completed_on[from], completed_at[from], true,
                        static_cast<int>(e), name, "msg");
        rec->flow_point(obs::Domain::Wall, obs::kTrackExec, proc,
                        run.wall_start, false, static_cast<int>(e), name,
                        "msg");
        rec->bump("exec.messages");
      }
    }

    std::lock_guard lock(mutex);
    if (failed) return;
    if (!completed[t]) {
      task_outputs[t] = std::move(outputs);
      completed[t] = true;
      completed_on[t] = proc;
      completed_at[t] = run.wall_finish;
      ++completed_count;
      result.transcript += transcript;
    } else if (task_outputs[t].has_value() && !(*task_outputs[t] == outputs)) {
      // Duplicate copies must agree — PITS is deterministic.
      fail(ErrorCode::Runtime, "duplicate copies of task `" +
                                   g.task(t).name +
                                   "` produced different outputs");
    }
    if (rescued) {
      ++result.tasks_rescued;
      result.recovery_overhead_seconds += run.wall_finish - run.wall_start;
    }
    result.runs.push_back(run);
    cv.notify_all();
  };

  // Structured failure path: record what died where (trace layer +
  // failure list) instead of swallowing the exception anonymously; the
  // first failure is rethrown after the join.
  auto worker_failed = [&](ProcId proc, ErrorCode code, std::string message,
                           SourcePos pos) {
    if (rec) {
      rec->instant(obs::Domain::Wall, obs::kTrackExec, proc,
                   seconds_since(t0), "worker failure", "error",
                   "\"proc\": " + std::to_string(proc) + ", \"message\": \"" +
                       obs::json_escape(message) + "\"");
      rec->bump("exec.worker_failures");
    }
    std::lock_guard lock(mutex);
    failures.push_back({proc, code, std::move(message), pos});
    failed = true;
    cv.notify_all();
  };

  auto worker = [&](ProcId proc) {
    // The ambient recorder is thread-local: adopt the launching
    // thread's recorder so PITS engine counters bumped inside task
    // routines land in the same place they would for a sequential run.
    std::optional<obs::ScopedRecorder> ambient;
    if (rec != nullptr) ambient.emplace(*rec);
    TaskScratch scratch;
    try {
      const auto& lane = lanes[static_cast<std::size_t>(proc)];
      std::optional<double> crash_at;
      if (plan != nullptr) crash_at = plan->crash_time(proc);

      for (std::size_t i = 0; i < lane.size(); ++i) {
        const sched::Placement& pl = lane[i];
        if (crash_at.has_value() && pl.start >= *crash_at - 1e-12) {
          // Fail-stop: this worker dies here; the rest of its lane is
          // stranded for the survivors to adopt.
          std::lock_guard lock(mutex);
          ++result.workers_died;
          orphans.insert(orphans.end(), lane.begin() + static_cast<std::ptrdiff_t>(i),
                         lane.end());
          cv.notify_all();
          return;
        }

        // Wait for predecessors; under a fault plan, rescue stranded
        // work instead of sleeping.
        {
          std::unique_lock lock(mutex);
          if (plan == nullptr) {
            cv.wait(lock, [&] { return failed || preds_done(pl.task); });
            if (failed) return;
          } else {
            for (;;) {
              if (failed) return;
              if (preds_done(pl.task)) break;
              if (auto orphan = claim_orphan()) {
                lock.unlock();
                execute_placement(*orphan, proc, /*rescued=*/true, scratch);
                lock.lock();
                continue;
              }
              cv.wait_for(lock, poll);
            }
          }
        }
        execute_placement(pl, proc, /*rescued=*/false, scratch);
      }

      // Own lane done: survivors drain the orphan queue until the whole
      // program has completed.
      if (plan != nullptr) {
        std::unique_lock lock(mutex);
        for (;;) {
          if (failed || completed_count == g.num_tasks()) return;
          if (auto orphan = claim_orphan()) {
            lock.unlock();
            execute_placement(*orphan, proc, /*rescued=*/true, scratch);
            lock.lock();
            continue;
          }
          cv.wait_for(lock, poll);
        }
      }
    } catch (const Error& e) {
      worker_failed(proc, e.code(), e.message(), e.pos());
    } catch (const std::exception& e) {
      worker_failed(proc, ErrorCode::Runtime, e.what(), {});
    } catch (...) {
      worker_failed(proc, ErrorCode::Runtime,
                    "non-standard exception in worker thread", {});
    }
  };

  {
    std::vector<std::jthread> threads;
    threads.reserve(lanes.size());
    for (ProcId p = 0; p < machine_.num_procs(); ++p) {
      if (!lanes[static_cast<std::size_t>(p)].empty()) {
        threads.emplace_back(worker, p);
      }
    }
  }  // join

  if (failed) {
    BANGER_ASSERT(!failures.empty(), "failed set without a recorded failure");
    const WorkerFailure& first = failures.front();
    std::string message =
        "worker " + std::to_string(first.proc) + ": " + first.message;
    if (failures.size() > 1) {
      message += " (and " + std::to_string(failures.size() - 1) +
                 " more worker failure" + (failures.size() > 2 ? "s" : "") +
                 ")";
    }
    fail(first.code, std::move(message), first.pos);
  }
  if (plan != nullptr && completed_count != g.num_tasks()) {
    fail(ErrorCode::Runtime,
         "all capable workers crashed: " +
             std::to_string(g.num_tasks() - completed_count) +
             " tasks never executed");
  }

  std::sort(result.runs.begin(), result.runs.end(),
            [](const TaskRun& a, const TaskRun& b) {
              return a.wall_start < b.wall_start;
            });
  collect_stores(flat_, design, task_outputs, inputs, result);
  result.wall_seconds = seconds_since(t0);
  if (rec) {
    rec->bump("exec.runs");
    rec->bump("exec.wall_seconds", result.wall_seconds);
    rec->bump("exec.workers_died", static_cast<double>(result.workers_died));
    rec->bump("exec.tasks_rescued",
              static_cast<double>(result.tasks_rescued));
  }
  return result;
}

}  // namespace banger::exec
