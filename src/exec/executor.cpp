#include "exec/executor.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>

#include "exec/plan.hpp"
#include "obs/trace.hpp"
#include "pits/bytecode.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace banger::exec {

namespace {

using Clock = std::chrono::steady_clock;
using pits::Env;
using pits::Value;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

RunResult run_sequential(const FlattenResult& flat,
                         const std::map<std::string, pits::Value>& inputs,
                         const RunOptions& options) {
  const DesignPlan plan = build_plan(flat, options, TakePlan{});
  const auto t0 = Clock::now();

  RunResult result;
  obs::TraceRecorder* rec = obs::current();
  TaskScratch scratch;
  std::vector<std::optional<TaskOutputs>> task_outputs(flat.graph.num_tasks());
  for (TaskId t : flat.graph.topo_order()) {
    Env env;
    const bool slots =
        bind_task(flat, plan, t, inputs, task_outputs, scratch, env);
    TaskRun run;
    run.task = t;
    run.proc = 0;
    run.wall_start = seconds_since(t0);
    task_outputs[t] =
        execute_task(flat, plan, t, slots, std::move(env), scratch, options,
                     inputs, task_outputs, &result.transcript);
    run.wall_finish = seconds_since(t0);
    if (rec) {
      rec->span(obs::Domain::Wall, obs::kTrackExec, 0, run.wall_start,
                run.wall_finish, flat.graph.task(t).name, "task");
      rec->bump("exec.tasks");
    }
    result.runs.push_back(run);
  }
  collect_stores(flat, plan, task_outputs, inputs, result);
  result.wall_seconds = seconds_since(t0);
  if (rec) {
    rec->bump("exec.runs");
    rec->bump("exec.wall_seconds", result.wall_seconds);
  }
  return result;
}

std::vector<TrialOutcome> run_trials(
    const FlattenResult& flat,
    const std::vector<std::map<std::string, pits::Value>>& inputs,
    const RunOptions& options, int jobs) {
  const DesignPlan plan = build_plan(flat, options, TakePlan{});
  const std::vector<TaskId> order = flat.graph.topo_order();
  obs::TraceRecorder* rec = obs::current();

  auto one_trial = [&](const ExternalInputs& external,
                       TaskScratch& scratch) -> TrialOutcome {
    TrialOutcome out;
    try {
      const auto t0 = Clock::now();
      RunResult result;
      std::vector<std::optional<TaskOutputs>> task_outputs(
          flat.graph.num_tasks());
      for (TaskId t : order) {
        Env env;
        const bool slots =
            bind_task(flat, plan, t, external, task_outputs, scratch, env);
        TaskRun run;
        run.task = t;
        run.proc = 0;
        run.wall_start = seconds_since(t0);
        task_outputs[t] =
            execute_task(flat, plan, t, slots, std::move(env), scratch,
                         options, external, task_outputs, &result.transcript);
        run.wall_finish = seconds_since(t0);
        result.runs.push_back(run);
      }
      collect_stores(flat, plan, task_outputs, external, result);
      result.wall_seconds = seconds_since(t0);
      out.ok = true;
      out.result = std::move(result);
    } catch (const Error& e) {
      // Exactly what the one-shot run would have thrown for this input;
      // neighbouring trials are unaffected.
      out.error_code = e.code();
      out.error = e.message();
      out.error_pos = e.pos();
    }
    return out;
  };

  std::vector<TrialOutcome> results(inputs.size());
  if (jobs == 1) {
    TaskScratch scratch;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      results[i] = one_trial(inputs[i], scratch);
    }
  } else {
    util::parallel_for(inputs.size(), jobs, [&](std::size_t i) {
      static thread_local TaskScratch scratch;
      results[i] = one_trial(inputs[i], scratch);
    });
  }
  if (rec) {
    rec->bump("exec.trial_batches");
    rec->bump("exec.trials", static_cast<double>(inputs.size()));
  }
  return results;
}

Executor::Executor(const FlattenResult& flat, const Machine& machine)
    : flat_(flat), machine_(machine) {}

RunResult Executor::run(const Schedule& schedule,
                        const std::map<std::string, pits::Value>& inputs,
                        const RunOptions& options) const {
  const graph::TaskGraph& g = flat_.graph;
  if (schedule.num_procs() != machine_.num_procs()) {
    fail(ErrorCode::Schedule, "schedule/machine processor count mismatch");
  }
  const fault::FaultPlan* plan =
      (options.faults != nullptr && !options.faults->empty()) ? options.faults
                                                              : nullptr;
  if (plan != nullptr) plan->validate(machine_.num_procs());

  // Takes are counted per scheduled run: duplicate copies re-bind the
  // same producer value and the duplicate cross-check below re-reads it,
  // both reflected in the use counts; an active fault plan disables
  // moves entirely (rescue re-binds are unpredictable).
  const DesignPlan design =
      build_plan(flat_, options, TakePlan{true, &schedule, plan != nullptr});

  // Per-processor lanes in schedule order.
  std::vector<std::vector<sched::Placement>> lanes = schedule.lanes();
  {
    std::vector<int> seen(g.num_tasks(), 0);
    for (const auto& lane : lanes)
      for (const auto& pl : lane)
        if (!pl.duplicate) ++seen[pl.task];
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      if (seen[t] != 1) {
        fail(ErrorCode::Schedule, "task `" + g.task(t).name +
                                      "` has no unique primary placement");
      }
    }
  }

  // Shared state.
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::optional<TaskOutputs>> task_outputs(g.num_tasks());
  std::vector<bool> completed(g.num_tasks(), false);
  // Where and when each task's primary copy completed (for the trace
  // layer's cross-processor flow arrows). Guarded by `mutex`.
  std::vector<ProcId> completed_on(g.num_tasks(), -1);
  std::vector<double> completed_at(g.num_tasks(), 0.0);
  std::size_t completed_count = 0;
  std::vector<sched::Placement> orphans;  // stranded lanes of dead workers
  bool failed = false;
  // Bumped (with a broadcast) on every state change a waiting worker
  // could care about — completion, failure, worker death — so idle
  // workers wake immediately instead of discovering progress at the
  // next rescue-poll tick. Guarded by `mutex`.
  std::uint64_t activity = 0;
  // Every worker-thread failure, in arrival order. The first one is
  // rethrown after the join with its processor attached; the rest are
  // preserved in the trace layer instead of being dropped.
  struct WorkerFailure {
    ProcId proc = -1;
    ErrorCode code = ErrorCode::Runtime;
    std::string message;
    SourcePos pos;
  };
  std::vector<WorkerFailure> failures;
  obs::TraceRecorder* rec = obs::current();
  RunResult result;
  const auto t0 = Clock::now();
  // Pure fallback under a fault plan: orphan adoptability can change
  // with time-based crash schedules, so idle rescuers still rescan at
  // this cadence even with no new activity.
  const auto poll =
      std::chrono::duration<double>(std::max(1e-4, options.rescue_poll_seconds));

  auto preds_done = [&](TaskId t) {
    for (graph::EdgeId e : g.in_edges(t)) {
      if (!completed[g.edge(e).from]) return false;
    }
    return true;
  };

  // Mutex held: claims the first orphan whose inputs are available,
  // discarding orphans of tasks that completed meanwhile.
  auto claim_orphan = [&]() -> std::optional<sched::Placement> {
    for (std::size_t i = 0; i < orphans.size();) {
      if (completed[orphans[i].task]) {
        orphans.erase(orphans.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      if (preds_done(orphans[i].task)) {
        const sched::Placement pl = orphans[i];
        orphans.erase(orphans.begin() + static_cast<std::ptrdiff_t>(i));
        return pl;
      }
      ++i;
    }
    return std::nullopt;
  };

  // Runs one placement on `proc` (predecessors must already be complete)
  // and records the outcome.
  auto execute_placement = [&](const sched::Placement& pl, ProcId proc,
                               bool rescued, TaskScratch& scratch) {
    const TaskId t = pl.task;
    Env env;
    bool slots = false;
    {
      std::lock_guard lock(mutex);
      if (failed) return;
      slots = bind_task(flat_, design, t, inputs, task_outputs, scratch, env);
    }

    TaskRun run;
    run.task = t;
    run.proc = proc;
    run.duplicate = pl.duplicate;
    run.rescued = rescued;
    run.wall_start = seconds_since(t0);
    std::string transcript;
    TaskOutputs outputs =
        execute_task(flat_, design, t, slots, std::move(env), scratch,
                     options, inputs, task_outputs, &transcript);
    run.wall_finish = seconds_since(t0);

    if (rec) {
      std::string args = "\"proc\": " + std::to_string(proc);
      if (pl.duplicate) args += ", \"duplicate\": true";
      if (rescued) args += ", \"rescued\": true";
      rec->span(obs::Domain::Wall, obs::kTrackExec, proc, run.wall_start,
                run.wall_finish, g.task(t).name, "task", args);
      rec->bump("exec.tasks");
      // Cross-processor input flows: one arrow per in-edge whose
      // producer finished on another processor (the executor's moral
      // equivalent of a message send).
      std::lock_guard lock(mutex);
      for (graph::EdgeId e : g.in_edges(t)) {
        const TaskId from = g.edge(e).from;
        if (completed_on[from] < 0 || completed_on[from] == proc) continue;
        const std::string name = "edge" + std::to_string(e);
        rec->flow_point(obs::Domain::Wall, obs::kTrackExec,
                        completed_on[from], completed_at[from], true,
                        static_cast<int>(e), name, "msg");
        rec->flow_point(obs::Domain::Wall, obs::kTrackExec, proc,
                        run.wall_start, false, static_cast<int>(e), name,
                        "msg");
        rec->bump("exec.messages");
      }
    }

    std::lock_guard lock(mutex);
    if (failed) return;
    if (!completed[t]) {
      task_outputs[t] = std::move(outputs);
      completed[t] = true;
      completed_on[t] = proc;
      completed_at[t] = run.wall_finish;
      ++completed_count;
      result.transcript += transcript;
    } else if (task_outputs[t].has_value() && !(*task_outputs[t] == outputs)) {
      // Duplicate copies must agree — PITS is deterministic.
      fail(ErrorCode::Runtime, "duplicate copies of task `" +
                                   g.task(t).name +
                                   "` produced different outputs");
    }
    if (rescued) {
      ++result.tasks_rescued;
      result.recovery_overhead_seconds += run.wall_finish - run.wall_start;
    }
    result.runs.push_back(run);
    ++activity;
    cv.notify_all();
  };

  // Structured failure path: record what died where (trace layer +
  // failure list) instead of swallowing the exception anonymously; the
  // first failure is rethrown after the join.
  auto worker_failed = [&](ProcId proc, ErrorCode code, std::string message,
                           SourcePos pos) {
    if (rec) {
      rec->instant(obs::Domain::Wall, obs::kTrackExec, proc,
                   seconds_since(t0), "worker failure", "error",
                   "\"proc\": " + std::to_string(proc) + ", \"message\": \"" +
                       obs::json_escape(message) + "\"");
      rec->bump("exec.worker_failures");
    }
    std::lock_guard lock(mutex);
    failures.push_back({proc, code, std::move(message), pos});
    failed = true;
    ++activity;
    cv.notify_all();
  };

  auto worker = [&](ProcId proc) {
    // The ambient recorder is thread-local: adopt the launching
    // thread's recorder so PITS engine counters bumped inside task
    // routines land in the same place they would for a sequential run.
    std::optional<obs::ScopedRecorder> ambient;
    if (rec != nullptr) ambient.emplace(*rec);
    TaskScratch scratch;
    try {
      const auto& lane = lanes[static_cast<std::size_t>(proc)];
      std::optional<double> crash_at;
      if (plan != nullptr) crash_at = plan->crash_time(proc);

      for (std::size_t i = 0; i < lane.size(); ++i) {
        const sched::Placement& pl = lane[i];
        if (crash_at.has_value() && pl.start >= *crash_at - 1e-12) {
          // Fail-stop: this worker dies here; the rest of its lane is
          // stranded for the survivors to adopt.
          std::lock_guard lock(mutex);
          ++result.workers_died;
          orphans.insert(orphans.end(), lane.begin() + static_cast<std::ptrdiff_t>(i),
                         lane.end());
          ++activity;
          cv.notify_all();
          return;
        }

        // Wait for predecessors; under a fault plan, rescue stranded
        // work instead of sleeping.
        {
          std::unique_lock lock(mutex);
          if (plan == nullptr) {
            cv.wait(lock, [&] { return failed || preds_done(pl.task); });
            if (failed) return;
          } else {
            for (;;) {
              if (failed) return;
              if (preds_done(pl.task)) break;
              if (auto orphan = claim_orphan()) {
                lock.unlock();
                execute_placement(*orphan, proc, /*rescued=*/true, scratch);
                lock.lock();
                continue;
              }
              // Sleep until something happens (a completion may unblock
              // this task or make an orphan adoptable); the timeout is
              // only the fault-plan rescan fallback.
              const std::uint64_t seen = activity;
              cv.wait_for(lock, poll,
                          [&] { return failed || activity != seen; });
            }
          }
        }
        execute_placement(pl, proc, /*rescued=*/false, scratch);
      }

      // Own lane done: survivors drain the orphan queue until the whole
      // program has completed.
      if (plan != nullptr) {
        std::unique_lock lock(mutex);
        for (;;) {
          if (failed || completed_count == g.num_tasks()) return;
          if (auto orphan = claim_orphan()) {
            lock.unlock();
            execute_placement(*orphan, proc, /*rescued=*/true, scratch);
            lock.lock();
            continue;
          }
          const std::uint64_t seen = activity;
          cv.wait_for(lock, poll, [&] { return failed || activity != seen; });
        }
      }
    } catch (const Error& e) {
      worker_failed(proc, e.code(), e.message(), e.pos());
    } catch (const std::exception& e) {
      worker_failed(proc, ErrorCode::Runtime, e.what(), {});
    } catch (...) {
      worker_failed(proc, ErrorCode::Runtime,
                    "non-standard exception in worker thread", {});
    }
  };

  {
    std::vector<std::jthread> threads;
    threads.reserve(lanes.size());
    for (ProcId p = 0; p < machine_.num_procs(); ++p) {
      if (!lanes[static_cast<std::size_t>(p)].empty()) {
        threads.emplace_back(worker, p);
      }
    }
  }  // join

  if (failed) {
    BANGER_ASSERT(!failures.empty(), "failed set without a recorded failure");
    const WorkerFailure& first = failures.front();
    std::string message =
        "worker " + std::to_string(first.proc) + ": " + first.message;
    if (failures.size() > 1) {
      message += " (and " + std::to_string(failures.size() - 1) +
                 " more worker failure" + (failures.size() > 2 ? "s" : "") +
                 ")";
    }
    fail(first.code, std::move(message), first.pos);
  }
  if (plan != nullptr && completed_count != g.num_tasks()) {
    fail(ErrorCode::Runtime,
         "all capable workers crashed: " +
             std::to_string(g.num_tasks() - completed_count) +
             " tasks never executed");
  }

  std::sort(result.runs.begin(), result.runs.end(),
            [](const TaskRun& a, const TaskRun& b) {
              return a.wall_start < b.wall_start;
            });
  collect_stores(flat_, design, task_outputs, inputs, result);
  result.wall_seconds = seconds_since(t0);
  if (rec) {
    rec->bump("exec.runs");
    rec->bump("exec.wall_seconds", result.wall_seconds);
    rec->bump("exec.workers_died", static_cast<double>(result.workers_died));
    rec->bump("exec.tasks_rescued",
              static_cast<double>(result.tasks_rescued));
  }
  return result;
}

}  // namespace banger::exec
