#include "exec/executor.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "analyze/absint.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace banger::exec {

namespace {

using Clock = std::chrono::steady_clock;
using pits::Env;
using pits::Value;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Stable per-task seed so duplicate copies (and re-runs) agree. The
/// seed basis is historical (a truncated FNV offset basis) and must
/// stay verbatim: generated programs embed these values.
std::uint64_t seed_for(const std::string& task_name, std::uint64_t base) {
  return util::fnv1a64(task_name, 1469598103934665603ull ^ base);
}

/// Does this (possibly comma-joined) edge variable list carry `var`?
bool edge_carries(const std::string& edge_var, const std::string& var) {
  for (auto part : util::split(edge_var, ',')) {
    if (util::trim(part) == var) return true;
  }
  return false;
}

struct CompiledTask {
  pits::Program program;
  bool runnable = false;
};

std::vector<CompiledTask> compile_all(const FlattenResult& flat) {
  std::vector<CompiledTask> out(flat.graph.num_tasks());
  for (TaskId t = 0; t < flat.graph.num_tasks(); ++t) {
    const graph::Task& task = flat.graph.task(t);
    if (util::trim(task.pits).empty()) {
      if (!task.outputs.empty()) {
        fail(ErrorCode::Runtime,
             "task `" + task.name +
                 "` declares outputs but has no PITS routine");
      }
      continue;  // pure synchronisation node: legal no-op
    }
    try {
      out[t].program = pits::Program::parse(task.pits);
      // Lower to bytecode up front: worker threads then share the cached
      // chunk instead of racing to compile on first execution. The
      // abstract interpreter supplies proofs that let the compiler
      // elide bounds/binding checks and batch statement ticks.
      analyze::precompile_optimized(out[t].program);
      out[t].runnable = true;
    } catch (const Error& e) {
      fail(e.code(), "in task `" + task.name + "`: " + e.message(), e.pos());
    }
  }
  return out;
}

/// Binds the inputs of task `t` from predecessor outputs / input stores.
Env bind_inputs(const FlattenResult& flat, TaskId t,
                const std::map<std::string, Value>& external,
                const std::vector<std::optional<Env>>& task_outputs) {
  const graph::TaskGraph& g = flat.graph;
  const graph::Task& task = g.task(t);
  Env env;
  for (const std::string& var : task.inputs) {
    bool bound = false;
    // 1. A predecessor whose edge is labelled with this variable.
    for (graph::EdgeId e : g.in_edges(t)) {
      const graph::Edge& edge = g.edge(e);
      if (!edge_carries(edge.var, var)) continue;
      const auto& produced = task_outputs[edge.from];
      BANGER_ASSERT(produced.has_value(), "predecessor not yet executed");
      auto it = produced->find(var);
      if (it != produced->end()) {
        env[var] = it->second;
        bound = true;
        break;
      }
    }
    if (bound) continue;
    // 2. Unlabelled precedence edge from a predecessor that declares the
    // variable as an output (synthetic graphs wire values this way).
    for (graph::EdgeId e : g.in_edges(t)) {
      const graph::Edge& edge = g.edge(e);
      const auto& produced = task_outputs[edge.from];
      BANGER_ASSERT(produced.has_value(), "predecessor not yet executed");
      auto it = produced->find(var);
      if (it != produced->end()) {
        env[var] = it->second;
        bound = true;
        break;
      }
    }
    if (bound) continue;
    // 2. An external input store of that variable.
    if (const graph::FlatStore* store = flat.find_store(var);
        store != nullptr && store->writers.empty()) {
      auto it = external.find(store->var);
      if (it == external.end()) {
        fail(ErrorCode::Runtime, "no value supplied for input store `" +
                                     store->var + "` needed by task `" +
                                     task.name + "`");
      }
      env[var] = it->second;
      continue;
    }
    fail(ErrorCode::Runtime, "input `" + var + "` of task `" + task.name +
                                 "` is bound to nothing");
  }
  return env;
}

/// Runs one task, returning its declared outputs.
Env run_task(const FlattenResult& flat, const CompiledTask& compiled,
             TaskId t, Env env, const RunOptions& options,
             std::string* transcript) {
  const graph::Task& task = flat.graph.task(t);
  Env outputs;
  if (!compiled.runnable) return outputs;

  std::ostringstream local;
  pits::ExecOptions exec_opts = options.pits;
  exec_opts.seed = seed_for(task.name, options.pits.seed);
  exec_opts.out = options.capture_transcript ? &local : nullptr;
  try {
    compiled.program.execute(env, exec_opts);
  } catch (const Error& e) {
    fail(e.code(), "in task `" + task.name + "`: " + e.message(), e.pos());
  }
  for (const std::string& var : task.outputs) {
    auto it = env.find(var);
    if (it == env.end()) {
      fail(ErrorCode::Runtime, "task `" + task.name +
                                   "` never assigned its output `" + var +
                                   "`");
    }
    outputs.emplace(var, it->second);
  }
  if (transcript != nullptr && options.capture_transcript) {
    const std::string text = local.str();
    if (!text.empty()) {
      *transcript += "[" + task.name + "]\n" + text;
    }
  }
  return outputs;
}

/// Collects final store values (writer with the latest position wins; in
/// practice designs have a single writer per store).
void collect_stores(const FlattenResult& flat,
                    const std::vector<std::optional<Env>>& task_outputs,
                    const std::map<std::string, Value>& external,
                    RunResult& result) {
  for (const graph::FlatStore& store : flat.stores) {
    if (store.writers.empty()) {
      if (auto it = external.find(store.var); it != external.end()) {
        result.stores[store.var] = it->second;
      }
      continue;
    }
    for (TaskId w : store.writers) {
      const auto& produced = task_outputs[w];
      if (!produced) continue;
      if (auto it = produced->find(store.var); it != produced->end()) {
        result.stores[store.var] = it->second;
      }
    }
    if (store.readers.empty()) {
      if (auto it = result.stores.find(store.var); it != result.stores.end()) {
        result.outputs[store.var] = it->second;
      }
    }
  }
}

}  // namespace

RunResult run_sequential(const FlattenResult& flat,
                         const std::map<std::string, pits::Value>& inputs,
                         const RunOptions& options) {
  const auto compiled = compile_all(flat);
  const auto t0 = Clock::now();

  RunResult result;
  obs::TraceRecorder* rec = obs::current();
  std::vector<std::optional<Env>> task_outputs(flat.graph.num_tasks());
  for (TaskId t : flat.graph.topo_order()) {
    Env env = bind_inputs(flat, t, inputs, task_outputs);
    TaskRun run;
    run.task = t;
    run.proc = 0;
    run.wall_start = seconds_since(t0);
    task_outputs[t] =
        run_task(flat, compiled[t], t, std::move(env), options,
                 &result.transcript);
    run.wall_finish = seconds_since(t0);
    if (rec) {
      rec->span(obs::Domain::Wall, obs::kTrackExec, 0, run.wall_start,
                run.wall_finish, flat.graph.task(t).name, "task");
      rec->bump("exec.tasks");
    }
    result.runs.push_back(run);
  }
  collect_stores(flat, task_outputs, inputs, result);
  result.wall_seconds = seconds_since(t0);
  if (rec) {
    rec->bump("exec.runs");
    rec->bump("exec.wall_seconds", result.wall_seconds);
  }
  return result;
}

Executor::Executor(const FlattenResult& flat, const Machine& machine)
    : flat_(flat), machine_(machine) {}

RunResult Executor::run(const Schedule& schedule,
                        const std::map<std::string, pits::Value>& inputs,
                        const RunOptions& options) const {
  const graph::TaskGraph& g = flat_.graph;
  if (schedule.num_procs() != machine_.num_procs()) {
    fail(ErrorCode::Schedule, "schedule/machine processor count mismatch");
  }
  const auto compiled = compile_all(flat_);

  // Per-processor lanes in schedule order.
  std::vector<std::vector<sched::Placement>> lanes(
      static_cast<std::size_t>(machine_.num_procs()));
  for (ProcId p = 0; p < machine_.num_procs(); ++p) {
    lanes[static_cast<std::size_t>(p)] = schedule.lane(p);
  }
  {
    std::vector<int> seen(g.num_tasks(), 0);
    for (const auto& lane : lanes)
      for (const auto& pl : lane)
        if (!pl.duplicate) ++seen[pl.task];
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      if (seen[t] != 1) {
        fail(ErrorCode::Schedule, "task `" + g.task(t).name +
                                      "` has no unique primary placement");
      }
    }
  }

  const fault::FaultPlan* plan =
      (options.faults != nullptr && !options.faults->empty()) ? options.faults
                                                              : nullptr;
  if (plan != nullptr) plan->validate(machine_.num_procs());

  // Shared state.
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::optional<Env>> task_outputs(g.num_tasks());
  std::vector<bool> completed(g.num_tasks(), false);
  // Where and when each task's primary copy completed (for the trace
  // layer's cross-processor flow arrows). Guarded by `mutex`.
  std::vector<ProcId> completed_on(g.num_tasks(), -1);
  std::vector<double> completed_at(g.num_tasks(), 0.0);
  std::size_t completed_count = 0;
  std::vector<sched::Placement> orphans;  // stranded lanes of dead workers
  bool failed = false;
  // Every worker-thread failure, in arrival order. The first one is
  // rethrown after the join with its processor attached; the rest are
  // preserved in the trace layer instead of being dropped.
  struct WorkerFailure {
    ProcId proc = -1;
    ErrorCode code = ErrorCode::Runtime;
    std::string message;
    SourcePos pos;
  };
  std::vector<WorkerFailure> failures;
  obs::TraceRecorder* rec = obs::current();
  RunResult result;
  const auto t0 = Clock::now();
  const auto poll =
      std::chrono::duration<double>(std::max(1e-4, options.rescue_poll_seconds));

  auto preds_done = [&](TaskId t) {
    for (graph::EdgeId e : g.in_edges(t)) {
      if (!completed[g.edge(e).from]) return false;
    }
    return true;
  };

  // Mutex held: claims the first orphan whose inputs are available,
  // discarding orphans of tasks that completed meanwhile.
  auto claim_orphan = [&]() -> std::optional<sched::Placement> {
    for (std::size_t i = 0; i < orphans.size();) {
      if (completed[orphans[i].task]) {
        orphans.erase(orphans.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      if (preds_done(orphans[i].task)) {
        const sched::Placement pl = orphans[i];
        orphans.erase(orphans.begin() + static_cast<std::ptrdiff_t>(i));
        return pl;
      }
      ++i;
    }
    return std::nullopt;
  };

  // Runs one placement on `proc` (predecessors must already be complete)
  // and records the outcome.
  auto execute_placement = [&](const sched::Placement& pl, ProcId proc,
                               bool rescued) {
    const TaskId t = pl.task;
    Env env;
    {
      std::lock_guard lock(mutex);
      if (failed) return;
      env = bind_inputs(flat_, t, inputs, task_outputs);
    }

    TaskRun run;
    run.task = t;
    run.proc = proc;
    run.duplicate = pl.duplicate;
    run.rescued = rescued;
    run.wall_start = seconds_since(t0);
    std::string transcript;
    Env outputs =
        run_task(flat_, compiled[t], t, std::move(env), options, &transcript);
    run.wall_finish = seconds_since(t0);

    if (rec) {
      std::string args = "\"proc\": " + std::to_string(proc);
      if (pl.duplicate) args += ", \"duplicate\": true";
      if (rescued) args += ", \"rescued\": true";
      rec->span(obs::Domain::Wall, obs::kTrackExec, proc, run.wall_start,
                run.wall_finish, g.task(t).name, "task", args);
      rec->bump("exec.tasks");
      // Cross-processor input flows: one arrow per in-edge whose
      // producer finished on another processor (the executor's moral
      // equivalent of a message send).
      std::lock_guard lock(mutex);
      for (graph::EdgeId e : g.in_edges(t)) {
        const TaskId from = g.edge(e).from;
        if (completed_on[from] < 0 || completed_on[from] == proc) continue;
        const std::string name = "edge" + std::to_string(e);
        rec->flow_point(obs::Domain::Wall, obs::kTrackExec,
                        completed_on[from], completed_at[from], true,
                        static_cast<int>(e), name, "msg");
        rec->flow_point(obs::Domain::Wall, obs::kTrackExec, proc,
                        run.wall_start, false, static_cast<int>(e), name,
                        "msg");
        rec->bump("exec.messages");
      }
    }

    std::lock_guard lock(mutex);
    if (failed) return;
    if (!completed[t]) {
      task_outputs[t] = std::move(outputs);
      completed[t] = true;
      completed_on[t] = proc;
      completed_at[t] = run.wall_finish;
      ++completed_count;
      result.transcript += transcript;
    } else if (task_outputs[t].has_value() && !(*task_outputs[t] == outputs)) {
      // Duplicate copies must agree — PITS is deterministic.
      fail(ErrorCode::Runtime, "duplicate copies of task `" +
                                   g.task(t).name +
                                   "` produced different outputs");
    }
    if (rescued) {
      ++result.tasks_rescued;
      result.recovery_overhead_seconds += run.wall_finish - run.wall_start;
    }
    result.runs.push_back(run);
    cv.notify_all();
  };

  // Structured failure path: record what died where (trace layer +
  // failure list) instead of swallowing the exception anonymously; the
  // first failure is rethrown after the join.
  auto worker_failed = [&](ProcId proc, ErrorCode code, std::string message,
                           SourcePos pos) {
    if (rec) {
      rec->instant(obs::Domain::Wall, obs::kTrackExec, proc,
                   seconds_since(t0), "worker failure", "error",
                   "\"proc\": " + std::to_string(proc) + ", \"message\": \"" +
                       obs::json_escape(message) + "\"");
      rec->bump("exec.worker_failures");
    }
    std::lock_guard lock(mutex);
    failures.push_back({proc, code, std::move(message), pos});
    failed = true;
    cv.notify_all();
  };

  auto worker = [&](ProcId proc) {
    // The ambient recorder is thread-local: adopt the launching
    // thread's recorder so PITS engine counters bumped inside task
    // routines land in the same place they would for a sequential run.
    std::optional<obs::ScopedRecorder> ambient;
    if (rec != nullptr) ambient.emplace(*rec);
    try {
      const auto& lane = lanes[static_cast<std::size_t>(proc)];
      std::optional<double> crash_at;
      if (plan != nullptr) crash_at = plan->crash_time(proc);

      for (std::size_t i = 0; i < lane.size(); ++i) {
        const sched::Placement& pl = lane[i];
        if (crash_at.has_value() && pl.start >= *crash_at - 1e-12) {
          // Fail-stop: this worker dies here; the rest of its lane is
          // stranded for the survivors to adopt.
          std::lock_guard lock(mutex);
          ++result.workers_died;
          orphans.insert(orphans.end(), lane.begin() + static_cast<std::ptrdiff_t>(i),
                         lane.end());
          cv.notify_all();
          return;
        }

        // Wait for predecessors; under a fault plan, rescue stranded
        // work instead of sleeping.
        {
          std::unique_lock lock(mutex);
          if (plan == nullptr) {
            cv.wait(lock, [&] { return failed || preds_done(pl.task); });
            if (failed) return;
          } else {
            for (;;) {
              if (failed) return;
              if (preds_done(pl.task)) break;
              if (auto orphan = claim_orphan()) {
                lock.unlock();
                execute_placement(*orphan, proc, /*rescued=*/true);
                lock.lock();
                continue;
              }
              cv.wait_for(lock, poll);
            }
          }
        }
        execute_placement(pl, proc, /*rescued=*/false);
      }

      // Own lane done: survivors drain the orphan queue until the whole
      // program has completed.
      if (plan != nullptr) {
        std::unique_lock lock(mutex);
        for (;;) {
          if (failed || completed_count == g.num_tasks()) return;
          if (auto orphan = claim_orphan()) {
            lock.unlock();
            execute_placement(*orphan, proc, /*rescued=*/true);
            lock.lock();
            continue;
          }
          cv.wait_for(lock, poll);
        }
      }
    } catch (const Error& e) {
      worker_failed(proc, e.code(), e.message(), e.pos());
    } catch (const std::exception& e) {
      worker_failed(proc, ErrorCode::Runtime, e.what(), {});
    } catch (...) {
      worker_failed(proc, ErrorCode::Runtime,
                    "non-standard exception in worker thread", {});
    }
  };

  {
    std::vector<std::jthread> threads;
    threads.reserve(lanes.size());
    for (ProcId p = 0; p < machine_.num_procs(); ++p) {
      if (!lanes[static_cast<std::size_t>(p)].empty()) {
        threads.emplace_back(worker, p);
      }
    }
  }  // join

  if (failed) {
    BANGER_ASSERT(!failures.empty(), "failed set without a recorded failure");
    const WorkerFailure& first = failures.front();
    std::string message =
        "worker " + std::to_string(first.proc) + ": " + first.message;
    if (failures.size() > 1) {
      message += " (and " + std::to_string(failures.size() - 1) +
                 " more worker failure" + (failures.size() > 2 ? "s" : "") +
                 ")";
    }
    fail(first.code, std::move(message), first.pos);
  }
  if (plan != nullptr && completed_count != g.num_tasks()) {
    fail(ErrorCode::Runtime,
         "all capable workers crashed: " +
             std::to_string(g.num_tasks() - completed_count) +
             " tasks never executed");
  }

  std::sort(result.runs.begin(), result.runs.end(),
            [](const TaskRun& a, const TaskRun& b) {
              return a.wall_start < b.wall_start;
            });
  collect_stores(flat_, task_outputs, inputs, result);
  result.wall_seconds = seconds_since(t0);
  if (rec) {
    rec->bump("exec.runs");
    rec->bump("exec.wall_seconds", result.wall_seconds);
    rec->bump("exec.workers_died", static_cast<double>(result.workers_died));
    rec->bump("exec.tasks_rescued",
              static_cast<double>(result.tasks_rescued));
  }
  return result;
}

}  // namespace banger::exec
