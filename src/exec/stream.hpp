// banger/exec/stream.hpp
//
// Streaming (pipeline) execution: runs a scheduled PITL graph
// continuously over an unbounded sequence of input batches instead of
// once. Every scheduled placement becomes a persistent pipeline stage;
// the schedule's processor assignment becomes the stage-to-core
// placement; values cross processors through bounded single-producer
// single-consumer queues with backpressure. Compilation, slot interning,
// input-binding resolution, and VM register frames are set up once (the
// shared DesignPlan) and reused for every batch.
//
// Guarantees:
//   - Per-batch outputs (stores, outputs, transcript, errors) are
//     byte-identical to calling Executor::run once per batch with the
//     same schedule and options, for both engines. (Two documented
//     divergences for inherently racy cases: transcripts are stitched in
//     deterministic schedule order rather than completion-race order,
//     and a batch where several tasks fail independently reports the
//     canonical earliest-scheduled failure instead of a racy first
//     arrival. Executor::run is only deterministic in those cases by
//     accident, if at all.)
//   - Outcomes are delivered strictly in push order.
//   - A failing batch does not disturb its neighbours (run_trials
//     semantics): the error that Executor::run would have thrown is
//     captured in that batch's TrialOutcome.
//   - Memory is bounded: queues hold at most `queue_capacity` packets,
//     and at most `window` batches are in flight at once (push blocks).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/executor.hpp"

namespace banger::obs {
class TraceRecorder;
}  // namespace banger::obs

namespace banger::exec {

struct StreamOptions {
  /// Per-batch execution options. Fault plans are rejected: fault
  /// injection is defined against a single scheduled run.
  RunOptions run;
  /// Bounded capacity of every inter-stage queue, in packets (>= 1).
  /// One packet crosses each queue per batch, so capacity is the number
  /// of batches a producer may run ahead of one consumer.
  std::size_t queue_capacity = 8;
  /// Maximum batches admitted but not yet fully executed; push() blocks
  /// at the limit (backpressure). 0 = auto (2x worker threads, min 4).
  std::size_t window = 0;
  /// Worker threads driving the lanes. <= 0 = one per hardware core;
  /// always clamped to the number of non-empty schedule lanes. Outputs
  /// are identical for every value.
  int jobs = 0;
};

/// Per-stage counters for the execution report (cler-style): one row per
/// scheduled placement.
struct BlockStats {
  std::string name;  ///< "task@proc", "+dup" suffixed for duplicates
  TaskId task = graph::kNoTask;
  ProcId proc = -1;
  bool duplicate = false;
  std::uint64_t processed = 0;  ///< batches executed
  std::uint64_t skipped = 0;    ///< batches skipped (upstream failed)
  double busy_seconds = 0.0;    ///< time spent inside the task routine
  double dead_seconds = 0.0;    ///< stream wall time minus busy time
};

/// Per-queue counters: one row per cross-lane producer->consumer edge.
struct QueueStats {
  std::string name;  ///< "producer@p->consumer@q:var"
  std::size_t capacity = 0;
  std::uint64_t pushes = 0;
  std::uint64_t max_occupancy = 0;
  double avg_occupancy = 0.0;   ///< mean occupancy observed at push time
  std::uint64_t full_stalls = 0;   ///< producer found the queue full
  std::uint64_t empty_stalls = 0;  ///< consumer found the queue empty
};

struct StreamReport {
  std::uint64_t batches = 0;  ///< batches fully executed
  double wall_seconds = 0.0;
  std::size_t threads = 0;
  std::vector<BlockStats> blocks;
  std::vector<QueueStats> queues;

  [[nodiscard]] double batches_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(batches) / wall_seconds
                              : 0.0;
  }
  /// Human-readable execution report (block + queue tables).
  [[nodiscard]] std::string render() const;
  /// Publishes every counter as `stream.*` metrics on the recorder.
  void record(obs::TraceRecorder& rec) const;
};

struct StreamResult {
  /// One outcome per input batch, in input order; exactly what
  /// Executor::run would have produced (or thrown) for that batch.
  std::vector<TrialOutcome> outcomes;
  StreamReport report;
};

/// Incremental push/drain streaming API. Typical use:
///
///   StreamExecutor ex(flat, schedule, machine, options);
///   for (auto& batch : feed) {
///     ex.push(std::move(batch));                 // blocks on backpressure
///     while (auto out = ex.try_pop()) consume(*out);
///   }
///   // drain what is still in flight, then stop the workers:
///   while (outstanding) consume(ex.pop());
///   StreamReport report = ex.finish();
///
/// push/try_pop/pop may be called from one driver thread (the class
/// serialises internally, but pop-after-close ordering is the caller's
/// responsibility). `flat`, `schedule`, and `machine` must outlive the
/// executor.
class StreamExecutor {
 public:
  StreamExecutor(const FlattenResult& flat, const Schedule& schedule,
                 const Machine& machine, StreamOptions options = {});
  ~StreamExecutor();

  StreamExecutor(const StreamExecutor&) = delete;
  StreamExecutor& operator=(const StreamExecutor&) = delete;

  /// Admits one input batch. Blocks while `window` batches are already
  /// in flight (bounded-memory backpressure).
  void push(std::map<std::string, pits::Value> inputs);

  /// Next outcome in push order, if its batch has finished.
  [[nodiscard]] std::optional<TrialOutcome> try_pop();

  /// Blocks for the next outcome in push order. At least one pushed
  /// batch must still be undelivered.
  [[nodiscard]] TrialOutcome pop();

  /// Outcomes pushed but not yet popped (delivered).
  [[nodiscard]] std::uint64_t outstanding() const;

  /// Stops the workers (after they finish every admitted batch) and
  /// returns the execution report. Remaining outcomes stay poppable.
  /// Also publishes the report to the ambient obs recorder, if any.
  StreamReport finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot wrapper: streams `batches` through the pipeline and returns
/// every outcome plus the execution report.
StreamResult run_stream(const FlattenResult& flat, const Schedule& schedule,
                        const Machine& machine,
                        const std::vector<std::map<std::string, pits::Value>>& batches,
                        const StreamOptions& options = {});

}  // namespace banger::exec
