#include "exec/plan.hpp"

#include <utility>

#include "analyze/absint.hpp"
#include "util/error.hpp"

namespace banger::exec {

namespace {

using pits::Env;
using pits::Value;

/// Does this (possibly comma-joined) edge variable list carry `var`?
bool edge_carries(const std::string& edge_var, const std::string& var) {
  for (auto part : util::split(edge_var, ',')) {
    if (util::trim(part) == var) return true;
  }
  return false;
}

std::optional<std::uint32_t> output_index(const graph::Task& task,
                                          const std::string& var) {
  for (std::size_t i = 0; i < task.outputs.size(); ++i) {
    if (task.outputs[i] == var) return static_cast<std::uint32_t>(i);
  }
  return std::nullopt;
}

}  // namespace

// ---- compiled-routine cache -----------------------------------------

void ProgramCache::insert_hot_locked(std::uint64_t key,
                                     const CachedProgram& entry) {
  if (hot_size_ >= cap_) {
    // Generation flip: the cold shard holds entries untouched for a
    // whole generation — drop it and demote hot. Anything still in use
    // gets promoted back before the next flip, so the working set
    // survives; only genuinely idle routines recompile.
    stats_.evictions += cold_size_;
    cold_ = std::move(hot_);
    cold_size_ = hot_size_;
    hot_.clear();
    hot_size_ = 0;
  }
  hot_[key].push_back(entry);
  ++hot_size_;
}

CachedProgram ProgramCache::get(const std::string& source) {
  const std::uint64_t key = util::fnv1a64(source);
  {
    std::lock_guard lock(mutex_);
    if (auto it = hot_.find(key); it != hot_.end()) {
      for (const CachedProgram& entry : it->second) {
        if (entry.source == source) {
          ++stats_.hits;
          return entry;
        }
      }
    }
    if (auto it = cold_.find(key); it != cold_.end()) {
      std::vector<CachedProgram>& chain = it->second;
      for (std::size_t i = 0; i < chain.size(); ++i) {
        if (chain[i].source == source) {
          ++stats_.hits;
          CachedProgram entry = std::move(chain[i]);
          chain.erase(chain.begin() + static_cast<std::ptrdiff_t>(i));
          if (chain.empty()) cold_.erase(it);
          --cold_size_;
          insert_hot_locked(key, entry);
          return entry;
        }
      }
    }
  }
  // Compile outside the lock; concurrent first-compilers of the same
  // source do redundant work, never wrong work.
  CachedProgram entry;
  entry.source = source;
  entry.program = pits::Program::parse(source);
  // The abstract interpreter supplies proofs that let the compiler
  // elide bounds/binding checks and batch statement ticks.
  analyze::precompile_optimized(entry.program);
  entry.chunk = entry.program.compiled_chunk();
  std::lock_guard lock(mutex_);
  ++stats_.misses;  // a compile happened, even if the race below loses
  // Double-checked insert: a concurrent first-compiler may have won the
  // race; reuse its entry instead of inserting a duplicate that inflates
  // hot_size_ toward the cap. Both inserts and promotions target `hot`,
  // so checking hot alone suffices.
  if (auto it = hot_.find(key); it != hot_.end()) {
    for (const CachedProgram& existing : it->second) {
      if (existing.source == source) return existing;
    }
  }
  insert_hot_locked(key, entry);
  return entry;
}

ProgramCache::Stats ProgramCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

ProgramCache& program_cache() {
  static ProgramCache cache;
  return cache;
}

// ---- design plans ----------------------------------------------------

DesignPlan build_plan(const FlattenResult& flat, const RunOptions& options,
                      const TakePlan& takes) {
  const graph::TaskGraph& g = flat.graph;
  DesignPlan plan;
  plan.vm_engine = pits::resolve_engine(options.pits.engine) ==
                   pits::ExecOptions::Engine::Vm;
  plan.tasks.resize(g.num_tasks());
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    const graph::Task& task = g.task(t);
    TaskPlan& tp = plan.tasks[t];
    if (util::trim(task.pits).empty()) {
      if (!task.outputs.empty()) {
        fail(ErrorCode::Runtime,
             "task `" + task.name +
                 "` declares outputs but has no PITS routine");
      }
      // Pure synchronisation node: legal no-op (inputs still bind).
    } else {
      try {
        CachedProgram cached = program_cache().get(task.pits);
        tp.program = std::move(cached.program);
        tp.chunk = std::move(cached.chunk);
        tp.runnable = true;
      } catch (const Error& e) {
        fail(e.code(), "in task `" + task.name + "`: " + e.message(),
             e.pos());
      }
    }
    const pits::bc::Chunk* chunk =
        plan.vm_engine ? tp.chunk.get() : nullptr;
    auto slot_of = [&](const std::string& var) -> std::int32_t {
      if (chunk == nullptr) return -1;
      for (std::size_t s = 0; s < chunk->vars.size(); ++s) {
        if (chunk->names[chunk->vars[s].name] == var) {
          return static_cast<std::int32_t>(s);
        }
      }
      return -1;
    };
    tp.inputs.reserve(task.inputs.size());
    for (std::size_t i = 0; i < task.inputs.size(); ++i) {
      const std::string& var = task.inputs[i];
      InputBinding b;
      b.var = static_cast<std::uint32_t>(i);
      b.slot = slot_of(var);
      bool bound = false;
      // 1. A predecessor whose edge is labelled with this variable and
      // whose task declares it (a task's produced environment is exactly
      // its declared outputs, so the check is static).
      for (graph::EdgeId e : g.in_edges(t)) {
        const graph::Edge& edge = g.edge(e);
        if (!edge_carries(edge.var, var)) continue;
        if (auto out = output_index(g.task(edge.from), var)) {
          b.kind = InputBinding::Kind::Producer;
          b.producer = edge.from;
          b.producer_out = *out;
          bound = true;
          break;
        }
      }
      // 2. Unlabelled precedence edge from a predecessor that declares
      // the variable as an output (synthetic graphs wire values this way).
      if (!bound) {
        for (graph::EdgeId e : g.in_edges(t)) {
          const graph::Edge& edge = g.edge(e);
          if (auto out = output_index(g.task(edge.from), var)) {
            b.kind = InputBinding::Kind::Producer;
            b.producer = edge.from;
            b.producer_out = *out;
            bound = true;
            break;
          }
        }
      }
      // 3. An external input store of that variable.
      if (!bound) {
        if (const graph::FlatStore* store = flat.find_store(var);
            store != nullptr && store->writers.empty()) {
          b.kind = InputBinding::Kind::External;
        }
        // else Kind::Nothing: errors when (and only when) the task runs.
      }
      tp.inputs.push_back(b);
    }
    tp.outputs.reserve(task.outputs.size());
    for (std::size_t i = 0; i < task.outputs.size(); ++i) {
      const std::string& var = task.outputs[i];
      OutputPlan op;
      op.slot = slot_of(var);
      for (std::size_t j = 0; j < task.inputs.size(); ++j) {
        if (task.inputs[j] == var) {
          op.pass_input = static_cast<std::int32_t>(j);
          break;
        }
      }
      if (*output_index(task, var) != i) tp.unique_outputs = false;
      tp.outputs.push_back(op);
    }
  }
  plan.store_writers.resize(flat.stores.size());
  for (std::size_t s = 0; s < flat.stores.size(); ++s) {
    for (TaskId w : flat.stores[s].writers) {
      if (auto out = output_index(g.task(w), flat.stores[s].var)) {
        plan.store_writers[s].push_back({w, *out});
      }
    }
  }
  // Count every read of each produced value over the whole run —
  // consumer bindings (weighted by how many scheduled copies of the
  // consumer execute), pass-through re-resolves at collection time, and
  // store writers. A value read exactly once can be moved to its
  // consumer instead of copied, which matters when tasks hand large
  // vectors down a chain.
  if (takes.allow) {
    // How many times each task executes: once without a schedule, once
    // per placement (duplicates included) with one.
    std::vector<std::uint32_t> mult(g.num_tasks(), 1);
    if (takes.schedule != nullptr) {
      for (TaskId t = 0; t < g.num_tasks(); ++t) {
        const std::size_t copies = takes.schedule->copies_of(t).size();
        mult[t] = copies == 0 ? 1u : static_cast<std::uint32_t>(copies);
      }
    }
    // An active fault plan allows rescue re-runs, which re-bind every
    // consumed value once more; doubling each consumer's weight pushes
    // every producer-bound value to >= 2 uses, disabling all takes.
    const std::uint32_t fault_factor = takes.faults ? 2u : 1u;
    std::vector<std::vector<std::uint32_t>> uses(g.num_tasks());
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      uses[t].assign(g.task(t).outputs.size(), 0);
    }
    auto count_use = [&](const InputBinding& b, std::uint32_t weight) {
      if (b.kind == InputBinding::Kind::Producer &&
          b.producer_out < uses[b.producer].size()) {
        uses[b.producer][b.producer_out] += weight;
      }
    };
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      const TaskPlan& tp = plan.tasks[t];
      const std::uint32_t weight = mult[t] * fault_factor;
      for (const InputBinding& b : tp.inputs) count_use(b, weight);
      for (const OutputPlan& op : tp.outputs) {
        if (op.pass_input >= 0) {
          count_use(tp.inputs[static_cast<std::size_t>(op.pass_input)],
                    weight);
        }
      }
    }
    // collect_stores reads each writer's stored output once at the end.
    for (const auto& writers : plan.store_writers) {
      for (const StoreWriter& w : writers) {
        if (w.out < uses[w.task].size()) ++uses[w.task][w.out];
      }
    }
    // The executor's duplicate cross-check compares fresh outputs of a
    // duplicated task against the stored value — one extra read of every
    // output of any task with more than one placement.
    if (takes.schedule != nullptr) {
      for (TaskId t = 0; t < g.num_tasks(); ++t) {
        if (mult[t] > 1) {
          for (std::uint32_t& u : uses[t]) ++u;
        }
      }
    }
    for (TaskPlan& tp : plan.tasks) {
      for (InputBinding& b : tp.inputs) {
        b.take = b.kind == InputBinding::Kind::Producer &&
                 b.producer_out < uses[b.producer].size() &&
                 uses[b.producer][b.producer_out] == 1;
      }
    }
  }
  return plan;
}

// ---- binding / execution ---------------------------------------------

void fail_missing_external(const graph::Task& task, std::uint32_t var) {
  fail(ErrorCode::Runtime, "no value supplied for input store `" +
                               task.inputs[var] + "` needed by task `" +
                               task.name + "`");
}

void fail_bound_to_nothing(const graph::Task& task, std::uint32_t var) {
  fail(ErrorCode::Runtime, "input `" + task.inputs[var] + "` of task `" +
                               task.name + "` is bound to nothing");
}

Value resolve_binding(const graph::Task& task, const InputBinding& b,
                      const ExternalInputs& external,
                      std::vector<std::optional<TaskOutputs>>& outs) {
  switch (b.kind) {
    case InputBinding::Kind::Producer: {
      auto& produced = outs[b.producer];
      BANGER_ASSERT(produced.has_value(), "predecessor not yet executed");
      Value& v = (*produced)[b.producer_out];
      if (b.take) return std::move(v);
      return v;
    }
    case InputBinding::Kind::External: {
      auto it = external.find(task.inputs[b.var]);
      if (it == external.end()) fail_missing_external(task, b.var);
      return it->second;
    }
    case InputBinding::Kind::Nothing:
      break;
  }
  fail_bound_to_nothing(task, b.var);
}

bool bind_task(const FlattenResult& flat, const DesignPlan& plan,
               graph::TaskId t, const ExternalInputs& external,
               std::vector<std::optional<TaskOutputs>>& outs,
               TaskScratch& scratch, Env& env) {
  const graph::Task& task = flat.graph.task(t);
  const TaskPlan& tp = plan.tasks[t];
  const bool slots = plan.vm_engine && tp.chunk != nullptr;
  if (slots) scratch.frame.prepare(*tp.chunk);
  for (const InputBinding& b : tp.inputs) {
    Value v = resolve_binding(task, b, external, outs);
    if (slots) {
      if (b.slot >= 0) {
        scratch.frame.bind(static_cast<std::uint16_t>(b.slot), std::move(v));
      }
      // Inputs the routine never mentions have no slot; pass-through
      // outputs re-resolve them at collection time.
    } else {
      env[task.inputs[b.var]] = std::move(v);
    }
  }
  return slots;
}

TaskOutputs execute_task(const FlattenResult& flat, const DesignPlan& plan,
                         graph::TaskId t, bool slots, Env env,
                         TaskScratch& scratch, const RunOptions& options,
                         const ExternalInputs& external,
                         std::vector<std::optional<TaskOutputs>>& outs,
                         std::string* transcript) {
  const graph::Task& task = flat.graph.task(t);
  return execute_task_with(
      flat, plan, t, slots, std::move(env), scratch, options,
      [&](const InputBinding& b) {
        return resolve_binding(task, b, external, outs);
      },
      transcript);
}

void collect_stores(const FlattenResult& flat, const DesignPlan& plan,
                    const std::vector<std::optional<TaskOutputs>>& task_outputs,
                    const ExternalInputs& external, RunResult& result) {
  for (std::size_t s = 0; s < flat.stores.size(); ++s) {
    const graph::FlatStore& store = flat.stores[s];
    if (store.writers.empty()) {
      if (auto it = external.find(store.var); it != external.end()) {
        result.stores[store.var] = it->second;
      }
      continue;
    }
    for (const StoreWriter& w : plan.store_writers[s]) {
      const auto& produced = task_outputs[w.task];
      if (!produced) continue;
      result.stores[store.var] = (*produced)[w.out];
    }
    if (store.readers.empty()) {
      if (auto it = result.stores.find(store.var); it != result.stores.end()) {
        result.outputs[store.var] = it->second;
      }
    }
  }
}

}  // namespace banger::exec
