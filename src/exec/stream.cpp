// Streaming executor: persistent pipeline stages over bounded SPSC
// queues. See stream.hpp for the contract.
//
// Topology. Each scheduled placement (primary and duplicate copies
// alike) becomes a persistent *stage*; the placements on one processor,
// in deterministic schedule order, form a *lane*. Worker threads own
// lanes round-robin and drive them with a cooperative, non-blocking
// state machine (gather -> execute -> push -> complete), so fewer
// threads than processors still make progress and can never deadlock on
// their own queues.
//
// Value flow. For every producer-bound input of a stage, one source
// copy of the producer is chosen with the schedule validator's own
// arrival criterion (copy.finish + comm_time <= consumer.start): a
// same-lane earlier copy becomes a direct local read, any other becomes
// a dedicated bounded SPSC queue. Because sources respect the in-batch
// schedule order, the pipeline is deadlock-free for any queue capacity
// >= 1: order blocked stages by (batch, schedule time) — the least one
// waits on a producer that is already runnable, or on a queue slot its
// consumer is guaranteed to free, by induction on that order.
//
// Invariant. Every stage delivers exactly one packet per out-queue per
// batch and always reaches completion — on success, on task error
// (packets carry ok=false), and on skip (an upstream stage of the batch
// failed). Queues therefore never misalign across batches and
// downstream stages always unblock.
//
// Wakeups use an eventcount: a generation counter bumped (with a
// broadcast) after any round of progress; a worker snapshots the
// counter before scanning its lanes and sleeps only if the scan made no
// progress and the counter is unchanged — no lost wakeups, no polling.
#include "exec/stream.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <tuple>
#include <utility>

#include "exec/plan.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace banger::exec {

namespace {

using Clock = std::chrono::steady_clock;
using pits::Env;
using pits::Value;

// Matches sched::Schedule::validate, so any schedule that validates
// wires up without arrival errors.
constexpr double kArrivalTolerance = 1e-9;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One value crossing a queue. ok=false marks an absent value (its
/// producer failed or skipped); consumers of an absent value skip.
struct Packet {
  Value value;
  bool ok = false;
};

/// Bounded single-producer single-consumer ring. Each queue links
/// exactly one producer stage to one consumer stage, and each lane is
/// driven by exactly one thread, so both ends are single-threaded by
/// construction. The stats fields are split by owner: the producer
/// thread writes pushes/occupancy/full_stalls, the consumer thread
/// writes empty_stalls; they are read only after the workers join.
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) : ring_(capacity ? capacity : 1) {}

  bool try_push(Packet&& p) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= ring_.size()) return false;
    ring_[tail % ring_.size()] = std::move(p);
    tail_.store(tail + 1, std::memory_order_release);
    ++pushes;
    const std::uint64_t occ = tail + 1 - head;  // producer's (lagging) view
    occupancy_sum += static_cast<double>(occ);
    if (occ > max_occupancy) max_occupancy = occ;
    return true;
  }

  bool try_pop(Packet& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = std::move(ring_[head % ring_.size()]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  // Producer-side stats.
  std::uint64_t pushes = 0;
  std::uint64_t max_occupancy = 0;
  double occupancy_sum = 0.0;
  std::uint64_t full_stalls = 0;
  // Consumer-side stat.
  std::uint64_t empty_stalls = 0;

 private:
  std::vector<Packet> ring_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
};

/// Where one producer-bound input of a stage comes from. Kind::None
/// marks bindings the shared plan resolves without a producer
/// (external stores / nothing) — those are handled at bind time.
struct StageSource {
  enum class Kind : std::uint8_t { None, Local, Queue };
  Kind kind = Kind::None;
  int queue = -1;        ///< Kind::Queue: index into Impl::queues_
  int local_stage = -1;  ///< Kind::Local: producer position in this lane
  std::uint32_t producer_out = 0;
};

struct StagePush {
  int queue = -1;
  std::uint32_t producer_out = 0;
};

struct Stage {
  sched::Placement pl;
  std::size_t order = 0;  ///< canonical (start, proc, duplicate) rank
  bool primary = false;
  bool local_needed = false;  ///< some later same-lane stage reads me
  std::vector<StageSource> sources;   // parallel to the plan's inputs
  std::vector<bool> keep_after_bind;  // value re-read by a pass-through
  std::vector<StagePush> pushes;
  // Stats, owned by the lane's worker thread.
  std::uint64_t processed = 0;
  std::uint64_t skipped = 0;
  double busy_seconds = 0.0;
};

/// A lane and its cooperative state machine. Everything below `stages`
/// is owned by the single worker thread driving the lane.
struct Lane {
  ProcId proc = -1;
  std::vector<Stage> stages;

  std::uint64_t batch = 0;  ///< global index of the batch being worked
  std::size_t stage_idx = 0;
  bool batch_open = false;
  std::shared_ptr<const ExternalInputs> inputs;
  std::vector<std::optional<TaskOutputs>> local;  // per stage position
  // Current-stage scratch: partial gather, execution result, partial
  // push. Preserved across no-progress attempts.
  std::vector<std::optional<Packet>> gathered;
  std::vector<bool> stall_counted;
  bool gather_ready = false;
  bool executed = false;
  bool exec_ok = false;
  TaskOutputs outputs;
  std::string transcript;
  TaskRun run;
  bool has_error = false;
  ErrorCode error_code = ErrorCode::Runtime;
  std::string error;
  SourcePos error_pos;
  std::vector<Packet> pending;
  std::size_t pending_pos = 0;
  bool push_stall_counted = false;
};

/// All mutable per-batch bookkeeping, guarded by Impl::mu.
struct BatchState {
  std::shared_ptr<const ExternalInputs> inputs;
  std::vector<std::optional<TaskOutputs>> task_outputs;  // store writers only
  std::vector<std::string> transcripts;  // indexed by stage order
  std::vector<TaskRun> runs;             // indexed by stage order
  std::size_t remaining = 0;
  bool has_error = false;
  ErrorCode error_code = ErrorCode::Runtime;
  std::string error;
  SourcePos error_pos;
  double error_start = 0.0;
  ProcId error_proc = -1;
  bool error_dup = false;
  double started = 0.0;  ///< seconds since stream start at admission
  bool done = false;
  TrialOutcome outcome;
};

}  // namespace

struct StreamExecutor::Impl {
  const FlattenResult& flat;
  const Machine& machine;
  StreamOptions opt;
  DesignPlan plan;
  std::vector<bool> writes_store;  // per task: appears in store_writers
  std::vector<Lane> lanes;
  std::vector<std::unique_ptr<SpscQueue>> queues;
  std::vector<std::string> queue_names;
  std::size_t stage_count = 0;
  std::size_t threads_n = 1;
  std::size_t window_cap = 4;

  mutable std::mutex mu;
  std::condition_variable cv;
  std::uint64_t gen = 0;
  std::uint64_t pushed = 0;
  std::uint64_t completed = 0;
  std::uint64_t delivered = 0;
  std::uint64_t window_base = 0;
  std::deque<BatchState> batches;
  bool closing = false;
  bool fatal = false;
  std::string fatal_msg;
  Clock::time_point t0;
  obs::TraceRecorder* rec = nullptr;
  std::vector<std::jthread> workers;
  bool finished = false;
  StreamReport report;
  // resolve_binding scratch for External/Nothing kinds (never touched).
  std::vector<std::optional<TaskOutputs>> no_outs;

  Impl(const FlattenResult& f, const Schedule& schedule, const Machine& m,
       StreamOptions options);

  void wire(const Schedule& schedule);
  void bump_gen() {
    {
      std::lock_guard lock(mu);
      ++gen;
    }
    cv.notify_all();
  }
  bool try_advance(Lane& ln, TaskScratch& scratch);
  void execute_stage(Lane& ln, Stage& st, TaskScratch& scratch);
  void complete_stage(Lane& ln, Stage& st);
  void finalize_batch(BatchState& bs);  // mu held
  void worker_main(std::size_t worker_idx);
  StreamReport build_report();
};

StreamExecutor::Impl::Impl(const FlattenResult& f, const Schedule& schedule,
                           const Machine& m, StreamOptions options)
    : flat(f), machine(m), opt(std::move(options)) {
  if (schedule.num_procs() != machine.num_procs()) {
    fail(ErrorCode::Schedule, "schedule/machine processor count mismatch");
  }
  if (opt.run.faults != nullptr && !opt.run.faults->empty()) {
    fail(ErrorCode::Runtime,
         "fault plans are not supported in streaming mode");
  }
  // The stream manages value lifetimes itself (each consumer owns the
  // packet it popped), so the plan's sole-use move machinery stays off.
  plan = build_plan(flat, opt.run, TakePlan{/*allow=*/false});
  writes_store.assign(flat.graph.num_tasks(), false);
  for (const auto& writers : plan.store_writers) {
    for (const StoreWriter& w : writers) writes_store[w.task] = true;
  }
  wire(schedule);

  const std::size_t usable_lanes = std::max<std::size_t>(lanes.size(), 1);
  threads_n = std::min<std::size_t>(
      static_cast<std::size_t>(util::resolve_jobs(opt.jobs)), usable_lanes);
  if (threads_n == 0) threads_n = 1;
  window_cap = opt.window != 0 ? opt.window
                               : std::max<std::size_t>(2 * threads_n, 4);
  rec = obs::current();
  t0 = Clock::now();
  workers.reserve(lanes.empty() ? 0 : threads_n);
  if (!lanes.empty()) {
    for (std::size_t w = 0; w < threads_n; ++w) {
      workers.emplace_back([this, w] { worker_main(w); });
    }
  }
}

void StreamExecutor::Impl::wire(const Schedule& schedule) {
  const graph::TaskGraph& g = flat.graph;
  std::vector<std::vector<sched::Placement>> all = schedule.lanes();
  for (ProcId p = 0; p < machine.num_procs(); ++p) {
    const auto& src = all[static_cast<std::size_t>(p)];
    if (src.empty()) continue;
    Lane ln;
    ln.proc = p;
    ln.stages.reserve(src.size());
    for (const sched::Placement& pl : src) {
      Stage st;
      st.pl = pl;
      st.primary = !pl.duplicate;
      ln.stages.push_back(std::move(st));
    }
    lanes.push_back(std::move(ln));
  }
  // Same validation Executor::run applies.
  {
    std::vector<int> seen(g.num_tasks(), 0);
    for (const Lane& ln : lanes)
      for (const Stage& st : ln.stages)
        if (st.primary) ++seen[st.pl.task];
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      if (seen[t] != 1) {
        fail(ErrorCode::Schedule, "task `" + g.task(t).name +
                                      "` has no unique primary placement");
      }
    }
  }
  // Canonical stage order (error canonicalisation, transcript/run
  // assembly) and the copy lookup used by source selection.
  std::vector<std::vector<std::pair<int, int>>> stages_of(g.num_tasks());
  {
    struct Key {
      double start;
      ProcId proc;
      bool dup;
      int lane;
      int pos;
    };
    std::vector<Key> keys;
    for (std::size_t li = 0; li < lanes.size(); ++li) {
      for (std::size_t si = 0; si < lanes[li].stages.size(); ++si) {
        const Stage& st = lanes[li].stages[si];
        keys.push_back({st.pl.start, st.pl.proc, st.pl.duplicate,
                        static_cast<int>(li), static_cast<int>(si)});
        stages_of[st.pl.task].push_back(
            {static_cast<int>(li), static_cast<int>(si)});
        ++stage_count;
      }
    }
    std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
      return std::tie(a.start, a.proc, a.dup, a.lane, a.pos) <
             std::tie(b.start, b.proc, b.dup, b.lane, b.pos);
    });
    for (std::size_t i = 0; i < keys.size(); ++i) {
      lanes[static_cast<std::size_t>(keys[i].lane)]
          .stages[static_cast<std::size_t>(keys[i].pos)]
          .order = i;
    }
  }
  // Source selection per stage per producer-bound input. The chosen copy
  // must satisfy the validator's arrival criterion against *this* stage,
  // which is what makes the pipeline deadlock-free.
  for (std::size_t li = 0; li < lanes.size(); ++li) {
    Lane& ln = lanes[li];
    for (std::size_t si = 0; si < ln.stages.size(); ++si) {
      Stage& st = ln.stages[si];
      const graph::Task& task = g.task(st.pl.task);
      const TaskPlan& tp = plan.tasks[st.pl.task];
      st.sources.assign(tp.inputs.size(), StageSource{});
      st.keep_after_bind.assign(tp.inputs.size(), false);
      for (const OutputPlan& op : tp.outputs) {
        if (op.pass_input >= 0) {
          st.keep_after_bind[static_cast<std::size_t>(op.pass_input)] = true;
        }
      }
      for (std::size_t bi = 0; bi < tp.inputs.size(); ++bi) {
        const InputBinding& b = tp.inputs[bi];
        if (b.kind != InputBinding::Kind::Producer) continue;
        double bytes = 0.0;
        for (graph::EdgeId e : g.in_edges(st.pl.task)) {
          if (g.edge(e).from == b.producer) {
            bytes = g.edge(e).bytes;
            break;
          }
        }
        // Prefer a same-lane earlier copy: a direct local read, no
        // queue, no copy across threads.
        int best_pos = -1;
        for (const auto& [plg, pos] : stages_of[b.producer]) {
          if (static_cast<std::size_t>(plg) != li) continue;
          if (static_cast<std::size_t>(pos) >= si) continue;
          const sched::Placement& pp =
              lanes[static_cast<std::size_t>(plg)]
                  .stages[static_cast<std::size_t>(pos)]
                  .pl;
          if (pp.finish > st.pl.start + kArrivalTolerance) continue;
          if (best_pos < 0 ||
              pp.finish < ln.stages[static_cast<std::size_t>(best_pos)]
                              .pl.finish) {
            best_pos = pos;
          }
        }
        StageSource src;
        src.producer_out = b.producer_out;
        if (best_pos >= 0) {
          src.kind = StageSource::Kind::Local;
          src.local_stage = best_pos;
          ln.stages[static_cast<std::size_t>(best_pos)].local_needed = true;
        } else {
          // Any copy whose data arrives in time under the comm model.
          int q_lane = -1;
          int q_pos = -1;
          for (const auto& [plg, pos] : stages_of[b.producer]) {
            // Same-lane later copies cannot feed us (lane order).
            if (static_cast<std::size_t>(plg) == li) continue;
            const sched::Placement& pp =
                lanes[static_cast<std::size_t>(plg)]
                    .stages[static_cast<std::size_t>(pos)]
                    .pl;
            if (pp.finish + machine.comm_time(bytes, pp.proc, st.pl.proc) >
                st.pl.start + kArrivalTolerance) {
              continue;
            }
            if (q_lane < 0) {
              q_lane = plg;
              q_pos = pos;
              continue;
            }
            const sched::Placement& cur =
                lanes[static_cast<std::size_t>(q_lane)]
                    .stages[static_cast<std::size_t>(q_pos)]
                    .pl;
            if (std::tie(pp.finish, pp.proc, pp.duplicate) <
                std::tie(cur.finish, cur.proc, cur.duplicate)) {
              q_lane = plg;
              q_pos = pos;
            }
          }
          if (q_lane < 0) {
            fail(ErrorCode::Schedule,
                 "no scheduled copy of task `" + g.task(b.producer).name +
                     "` delivers `" + task.inputs[b.var] + "` to task `" +
                     task.name + "` by its start time");
          }
          src.kind = StageSource::Kind::Queue;
          src.queue = static_cast<int>(queues.size());
          queues.push_back(
              std::make_unique<SpscQueue>(opt.queue_capacity));
          Stage& prod = lanes[static_cast<std::size_t>(q_lane)]
                            .stages[static_cast<std::size_t>(q_pos)];
          prod.pushes.push_back({src.queue, b.producer_out});
          queue_names.push_back(
              g.task(b.producer).name + "@" + std::to_string(prod.pl.proc) +
              "->" + task.name + "@" + std::to_string(st.pl.proc) + ":" +
              task.inputs[b.var]);
        }
        st.sources[bi] = src;
      }
    }
  }
}

void StreamExecutor::Impl::execute_stage(Lane& ln, Stage& st,
                                         TaskScratch& scratch) {
  const graph::TaskGraph& g = flat.graph;
  const graph::Task& task = g.task(st.pl.task);
  const TaskPlan& tp = plan.tasks[st.pl.task];

  ln.outputs.clear();
  ln.transcript.clear();
  ln.has_error = false;
  ln.run = TaskRun{};
  ln.run.task = st.pl.task;
  ln.run.proc = ln.proc;
  ln.run.duplicate = st.pl.duplicate;

  bool skip = false;
  for (std::size_t i = 0; i < st.sources.size(); ++i) {
    if (st.sources[i].kind != StageSource::Kind::None &&
        !ln.gathered[i]->ok) {
      skip = true;
      break;
    }
  }
  if (skip) {
    // An upstream stage of this batch failed; propagate absence. The
    // batch already carries (or will carry) the canonical error.
    ln.exec_ok = false;
    ++st.skipped;
    ln.executed = true;
  } else {
    const auto begin = Clock::now();
    ln.run.wall_start = seconds_since(t0);
    try {
      Env env;
      const bool slots = plan.vm_engine && tp.chunk != nullptr;
      if (slots) scratch.frame.prepare(*tp.chunk);
      for (std::size_t i = 0; i < tp.inputs.size(); ++i) {
        const InputBinding& b = tp.inputs[i];
        Value v;
        if (st.sources[i].kind == StageSource::Kind::None) {
          // External store or nothing: the shared resolver raises the
          // exact historical diagnostics.
          v = resolve_binding(task, b, *ln.inputs, no_outs);
        } else {
          Packet& pk = *ln.gathered[i];
          v = st.keep_after_bind[i] ? pk.value : std::move(pk.value);
        }
        if (slots) {
          if (b.slot >= 0) {
            scratch.frame.bind(static_cast<std::uint16_t>(b.slot),
                               std::move(v));
          }
        } else {
          env[task.inputs[b.var]] = std::move(v);
        }
      }
      ln.outputs = execute_task_with(
          flat, plan, st.pl.task, slots, std::move(env), scratch, opt.run,
          [&](const InputBinding& b) -> Value {
            if (st.sources[b.var].kind == StageSource::Kind::None) {
              return resolve_binding(task, b, *ln.inputs, no_outs);
            }
            return ln.gathered[b.var]->value;  // kept by keep_after_bind
          },
          st.primary ? &ln.transcript : nullptr);
      ln.exec_ok = true;
      ++st.processed;
    } catch (const Error& e) {
      ln.exec_ok = false;
      ln.has_error = true;
      ln.error_code = e.code();
      ln.error = e.message();
      ln.error_pos = e.pos();
    }
    ln.run.wall_finish = seconds_since(t0);
    st.busy_seconds += std::chrono::duration<double>(Clock::now() - begin)
                           .count();
    ln.executed = true;
  }

  // Exactly one packet per out-queue per batch, present or absent.
  ln.pending.clear();
  ln.pending_pos = 0;
  ln.push_stall_counted = false;
  ln.pending.reserve(st.pushes.size());
  for (const StagePush& sp : st.pushes) {
    Packet p;
    p.ok = ln.exec_ok;
    if (ln.exec_ok) p.value = ln.outputs[sp.producer_out];
    ln.pending.push_back(std::move(p));
  }
}

void StreamExecutor::Impl::complete_stage(Lane& ln, Stage& st) {
  {
    std::lock_guard lock(mu);
    BatchState& bs = batches[static_cast<std::size_t>(ln.batch - window_base)];
    if (ln.exec_ok) {
      if (st.primary) {
        if (writes_store[st.pl.task]) {
          bs.task_outputs[st.pl.task] = ln.outputs;  // copy; local may read
        }
        bs.transcripts[st.order] = std::move(ln.transcript);
      }
      bs.runs[st.order] = ln.run;
    } else if (ln.has_error) {
      if (!bs.has_error ||
          std::tie(st.pl.start, st.pl.proc, st.pl.duplicate) <
              std::tie(bs.error_start, bs.error_proc, bs.error_dup)) {
        bs.has_error = true;
        bs.error_code = ln.error_code;
        bs.error = ln.error;
        bs.error_pos = ln.error_pos;
        bs.error_start = st.pl.start;
        bs.error_proc = st.pl.proc;
        bs.error_dup = st.pl.duplicate;
      }
    }
    --bs.remaining;
    if (bs.remaining == 0) finalize_batch(bs);
    ++gen;
  }
  cv.notify_all();
  // Lane-local storage for later same-lane consumers (outside the lock:
  // lane state is single-threaded).
  if (st.local_needed && ln.exec_ok) {
    ln.local[ln.stage_idx] = std::move(ln.outputs);
  }
  ln.outputs.clear();
}

void StreamExecutor::Impl::finalize_batch(BatchState& bs) {
  bs.done = true;
  TrialOutcome& out = bs.outcome;
  if (bs.has_error) {
    out.ok = false;
    out.error_code = bs.error_code;
    // The exact wrapper Executor::run applies when rethrowing a worker
    // failure (single-failure case).
    out.error = "worker " + std::to_string(bs.error_proc) + ": " + bs.error;
    out.error_pos = bs.error_pos;
  } else {
    out.ok = true;
    RunResult r;
    r.runs.reserve(bs.runs.size());
    for (std::size_t i = 0; i < bs.runs.size(); ++i) {
      r.transcript += bs.transcripts[i];
      r.runs.push_back(bs.runs[i]);
    }
    collect_stores(flat, plan, bs.task_outputs, *bs.inputs, r);
    r.wall_seconds = seconds_since(t0) - bs.started;
    out.result = std::move(r);
  }
  ++completed;
  // Free per-batch bookkeeping early; only the outcome must survive
  // until delivery.
  bs.task_outputs.clear();
  bs.transcripts.clear();
  bs.runs.clear();
  bs.inputs.reset();
}

bool StreamExecutor::Impl::try_advance(Lane& ln, TaskScratch& scratch) {
  if (ln.stages.empty()) return false;
  bool progress = false;
  for (;;) {
    if (!ln.batch_open) {
      std::lock_guard lock(mu);
      if (ln.batch >= pushed) return progress;  // nothing admitted yet
      BatchState& bs =
          batches[static_cast<std::size_t>(ln.batch - window_base)];
      ln.inputs = bs.inputs;
      ln.batch_open = true;
      ln.stage_idx = 0;
      ln.local.assign(ln.stages.size(), std::nullopt);
      progress = true;
    }
    Stage& st = ln.stages[ln.stage_idx];
    if (!ln.executed) {
      if (!ln.gather_ready) {
        ln.gathered.assign(st.sources.size(), std::nullopt);
        ln.stall_counted.assign(st.sources.size(), false);
        ln.gather_ready = true;
      }
      bool all = true;
      for (std::size_t i = 0; i < st.sources.size(); ++i) {
        if (ln.gathered[i].has_value()) continue;
        const StageSource& src = st.sources[i];
        if (src.kind == StageSource::Kind::None) {
          ln.gathered[i] = Packet{Value{}, true};
          continue;
        }
        if (src.kind == StageSource::Kind::Local) {
          const auto& lo =
              ln.local[static_cast<std::size_t>(src.local_stage)];
          Packet p;
          if (lo.has_value()) {
            p.ok = true;
            p.value = (*lo)[src.producer_out];
          }
          ln.gathered[i] = std::move(p);
          progress = true;
          continue;
        }
        Packet p;
        if (queues[static_cast<std::size_t>(src.queue)]->try_pop(p)) {
          ln.gathered[i] = std::move(p);
          progress = true;
        } else {
          if (!ln.stall_counted[i]) {
            ++queues[static_cast<std::size_t>(src.queue)]->empty_stalls;
            ln.stall_counted[i] = true;
          }
          all = false;
        }
      }
      if (!all) return progress;
      execute_stage(ln, st, scratch);
      progress = true;
    }
    while (ln.pending_pos < ln.pending.size()) {
      const StagePush& sp = st.pushes[ln.pending_pos];
      if (queues[static_cast<std::size_t>(sp.queue)]->try_push(
              std::move(ln.pending[ln.pending_pos]))) {
        ++ln.pending_pos;
        ln.push_stall_counted = false;
        progress = true;
      } else {
        if (!ln.push_stall_counted) {
          ++queues[static_cast<std::size_t>(sp.queue)]->full_stalls;
          ln.push_stall_counted = true;
        }
        return progress;
      }
    }
    complete_stage(ln, st);
    progress = true;
    ln.executed = false;
    ln.gather_ready = false;
    ln.gathered.clear();
    ln.pending.clear();
    ln.pending_pos = 0;
    ++ln.stage_idx;
    if (ln.stage_idx == ln.stages.size()) {
      ++ln.batch;
      ln.batch_open = false;
      ln.inputs.reset();
      // Loop: try to open the next batch immediately.
    }
  }
}

void StreamExecutor::Impl::worker_main(std::size_t worker_idx) {
  // Adopt the launching thread's ambient recorder so PITS engine
  // counters bumped inside task routines aggregate as usual.
  std::optional<obs::ScopedRecorder> ambient;
  if (rec != nullptr) ambient.emplace(*rec);
  TaskScratch scratch;
  std::vector<std::size_t> owned;
  for (std::size_t li = worker_idx; li < lanes.size(); li += threads_n) {
    owned.push_back(li);
  }
  try {
    for (;;) {
      std::uint64_t seen = 0;
      {
        std::lock_guard lock(mu);
        seen = gen;  // snapshot BEFORE scanning: no lost wakeups
      }
      bool progress = false;
      for (std::size_t li : owned) {
        progress = try_advance(lanes[li], scratch) || progress;
      }
      if (progress) {
        bump_gen();  // someone downstream may be sleeping on our pushes
        continue;
      }
      std::unique_lock lock(mu);
      if (fatal) return;
      if (closing) {
        bool idle = true;
        for (std::size_t li : owned) {
          if (lanes[li].batch_open || lanes[li].batch < pushed) {
            idle = false;
            break;
          }
        }
        if (idle) return;
      }
      cv.wait(lock, [&] { return gen != seen || fatal; });
    }
  } catch (const std::exception& e) {
    std::lock_guard lock(mu);
    fatal = true;
    fatal_msg = std::string("internal error in stream worker: ") + e.what();
    ++gen;
    cv.notify_all();
  } catch (...) {
    std::lock_guard lock(mu);
    fatal = true;
    fatal_msg = "internal error in stream worker";
    ++gen;
    cv.notify_all();
  }
}

StreamReport StreamExecutor::Impl::build_report() {
  StreamReport rep;
  rep.batches = completed;
  rep.wall_seconds = seconds_since(t0);
  rep.threads = lanes.empty() ? 0 : threads_n;
  // Blocks in canonical stage order.
  std::vector<const Stage*> ordered(stage_count, nullptr);
  for (const Lane& ln : lanes) {
    for (const Stage& st : ln.stages) ordered[st.order] = &st;
  }
  for (const Stage* st : ordered) {
    if (st == nullptr) continue;
    BlockStats b;
    b.name = flat.graph.task(st->pl.task).name + "@" +
             std::to_string(st->pl.proc);
    if (st->pl.duplicate) b.name += "+dup";
    b.task = st->pl.task;
    b.proc = st->pl.proc;
    b.duplicate = st->pl.duplicate;
    b.processed = st->processed;
    b.skipped = st->skipped;
    b.busy_seconds = st->busy_seconds;
    b.dead_seconds = std::max(0.0, rep.wall_seconds - st->busy_seconds);
    rep.blocks.push_back(std::move(b));
  }
  for (std::size_t q = 0; q < queues.size(); ++q) {
    const SpscQueue& sq = *queues[q];
    QueueStats s;
    s.name = queue_names[q];
    s.capacity = sq.capacity();
    s.pushes = sq.pushes;
    s.max_occupancy = sq.max_occupancy;
    s.avg_occupancy =
        sq.pushes > 0 ? sq.occupancy_sum / static_cast<double>(sq.pushes)
                      : 0.0;
    s.full_stalls = sq.full_stalls;
    s.empty_stalls = sq.empty_stalls;
    rep.queues.push_back(std::move(s));
  }
  return rep;
}

// ---- StreamReport ----------------------------------------------------

std::string StreamReport::render() const {
  std::string out = "streaming execution report: " +
                    std::to_string(batches) + " batch" +
                    (batches == 1 ? "" : "es") + ", " +
                    std::to_string(threads) + " thread" +
                    (threads == 1 ? "" : "s") + ", " +
                    util::format_double(wall_seconds, 4) + "s wall, " +
                    util::format_double(batches_per_second(), 6) +
                    " batches/s\n";
  if (!blocks.empty()) {
    util::Table table;
    table.set_header({"block", "proc", "processed", "skipped", "busy s",
                      "dead s", "dead %"});
    for (const BlockStats& b : blocks) {
      const double dead_pct =
          wall_seconds > 0.0 ? 100.0 * b.dead_seconds / wall_seconds : 0.0;
      table.add_row({b.name, std::to_string(b.proc),
                     std::to_string(b.processed), std::to_string(b.skipped),
                     util::format_double(b.busy_seconds, 4),
                     util::format_double(b.dead_seconds, 4),
                     util::format_double(dead_pct, 4)});
    }
    out += table.to_string(2);
  }
  if (!queues.empty()) {
    util::Table table;
    table.set_header({"queue", "cap", "pushes", "max occ", "avg occ",
                      "full stalls", "empty stalls"});
    for (const QueueStats& q : queues) {
      table.add_row({q.name, std::to_string(q.capacity),
                     std::to_string(q.pushes),
                     std::to_string(q.max_occupancy),
                     util::format_double(q.avg_occupancy, 4),
                     std::to_string(q.full_stalls),
                     std::to_string(q.empty_stalls)});
    }
    out += table.to_string(2);
  }
  return out;
}

void StreamReport::record(obs::TraceRecorder& rec) const {
  rec.bump("exec.stream_batches", static_cast<double>(batches));
  rec.set_metric("stream.batches", static_cast<double>(batches));
  rec.set_metric("stream.wall_seconds", wall_seconds);
  rec.set_metric("stream.batches_per_second", batches_per_second());
  rec.set_metric("stream.threads", static_cast<double>(threads));
  for (const BlockStats& b : blocks) {
    const std::string prefix = "stream.block." + b.name;
    rec.set_metric(prefix + ".processed", static_cast<double>(b.processed));
    rec.set_metric(prefix + ".skipped", static_cast<double>(b.skipped));
    rec.set_metric(prefix + ".busy_seconds", b.busy_seconds);
    rec.set_metric(prefix + ".dead_seconds", b.dead_seconds);
    rec.set_metric(prefix + ".throughput",
                   wall_seconds > 0.0
                       ? static_cast<double>(b.processed) / wall_seconds
                       : 0.0);
  }
  for (const QueueStats& q : queues) {
    const std::string prefix = "stream.queue." + q.name;
    rec.set_metric(prefix + ".pushes", static_cast<double>(q.pushes));
    rec.set_metric(prefix + ".max_occupancy",
                   static_cast<double>(q.max_occupancy));
    rec.set_metric(prefix + ".avg_occupancy", q.avg_occupancy);
    rec.set_metric(prefix + ".full_stalls",
                   static_cast<double>(q.full_stalls));
    rec.set_metric(prefix + ".empty_stalls",
                   static_cast<double>(q.empty_stalls));
  }
}

// ---- StreamExecutor --------------------------------------------------

StreamExecutor::StreamExecutor(const FlattenResult& flat,
                               const Schedule& schedule,
                               const Machine& machine, StreamOptions options)
    : impl_(std::make_unique<Impl>(flat, schedule, machine,
                                   std::move(options))) {}

StreamExecutor::~StreamExecutor() {
  if (impl_ != nullptr && !impl_->finished) {
    {
      std::lock_guard lock(impl_->mu);
      impl_->closing = true;
      ++impl_->gen;
    }
    impl_->cv.notify_all();
    impl_->workers.clear();  // join
  }
}

void StreamExecutor::push(std::map<std::string, pits::Value> inputs) {
  Impl& im = *impl_;
  std::unique_lock lock(im.mu);
  if (im.closing) fail(ErrorCode::Runtime, "push on a finished stream");
  im.cv.wait(lock, [&] {
    return im.fatal || im.pushed - im.completed < im.window_cap;
  });
  if (im.fatal) fail(ErrorCode::Runtime, im.fatal_msg);
  BatchState bs;
  bs.inputs = std::make_shared<const ExternalInputs>(std::move(inputs));
  bs.remaining = im.stage_count;
  bs.task_outputs.resize(im.flat.graph.num_tasks());
  bs.transcripts.resize(im.stage_count);
  bs.runs.resize(im.stage_count);
  bs.started = seconds_since(im.t0);
  im.batches.push_back(std::move(bs));
  ++im.pushed;
  if (im.batches.back().remaining == 0) {
    // Degenerate pipeline (no stages): the batch is already complete.
    im.finalize_batch(im.batches.back());
  }
  ++im.gen;
  lock.unlock();
  im.cv.notify_all();
}

std::optional<TrialOutcome> StreamExecutor::try_pop() {
  Impl& im = *impl_;
  std::lock_guard lock(im.mu);
  if (im.fatal) fail(ErrorCode::Runtime, im.fatal_msg);
  if (im.batches.empty() || !im.batches.front().done) return std::nullopt;
  TrialOutcome out = std::move(im.batches.front().outcome);
  im.batches.pop_front();
  ++im.window_base;
  ++im.delivered;
  return out;
}

TrialOutcome StreamExecutor::pop() {
  Impl& im = *impl_;
  std::unique_lock lock(im.mu);
  if (im.pushed == im.delivered) {
    fail(ErrorCode::Runtime, "pop with no outstanding batch");
  }
  im.cv.wait(lock, [&] {
    return im.fatal || (!im.batches.empty() && im.batches.front().done);
  });
  if (im.fatal) fail(ErrorCode::Runtime, im.fatal_msg);
  TrialOutcome out = std::move(im.batches.front().outcome);
  im.batches.pop_front();
  ++im.window_base;
  ++im.delivered;
  return out;
}

std::uint64_t StreamExecutor::outstanding() const {
  const Impl& im = *impl_;
  std::lock_guard lock(im.mu);
  return im.pushed - im.delivered;
}

StreamReport StreamExecutor::finish() {
  Impl& im = *impl_;
  {
    std::lock_guard lock(im.mu);
    if (im.finished) return im.report;
    im.closing = true;
    ++im.gen;
  }
  im.cv.notify_all();
  im.workers.clear();  // join; workers drain every admitted batch first
  if (im.fatal) fail(ErrorCode::Runtime, im.fatal_msg);
  im.report = im.build_report();
  im.finished = true;
  if (im.rec != nullptr) im.report.record(*im.rec);
  return im.report;
}

StreamResult run_stream(const FlattenResult& flat, const Schedule& schedule,
                        const Machine& machine,
                        const std::vector<std::map<std::string, pits::Value>>& batches,
                        const StreamOptions& options) {
  StreamExecutor ex(flat, schedule, machine, options);
  StreamResult out;
  out.outcomes.reserve(batches.size());
  for (const auto& batch : batches) {
    ex.push(batch);  // blocks on backpressure; drained below keeps it short
    while (auto ready = ex.try_pop()) {
      out.outcomes.push_back(std::move(*ready));
    }
  }
  while (ex.outstanding() > 0) {
    out.outcomes.push_back(ex.pop());
  }
  out.report = ex.finish();
  return out;
}

}  // namespace banger::exec
