// banger/exec/executor.hpp
//
// Actually *runs* a flattened PITL/PITS program. Two modes:
//
//   run_sequential  — one thread, topological order: the environment's
//                     "trial run of an entire program" feedback feature.
//   Executor::run   — one host thread per machine processor, tasks
//                     executed in schedule lane order, values flowing
//                     through thread-safe mailboxes: the stand-in for the
//                     code generators the paper left as future work.
//
// Task semantics: a task's PITS routine sees its declared input variables
// bound (from predecessor outputs or from the design's input stores) and
// must assign every declared output. Duplicate copies re-execute the
// routine; the executor cross-checks that copies produce identical
// outputs (they must: PITS is deterministic, rand() is seeded per task).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "graph/design.hpp"
#include "pits/interp.hpp"
#include "sched/schedule.hpp"
#include "util/error.hpp"

namespace banger::exec {

using graph::FlattenResult;
using graph::TaskId;
using machine::Machine;
using machine::ProcId;
using sched::Schedule;

struct RunOptions {
  pits::ExecOptions pits;  ///< step limit / seed base for task routines
  /// Capture print() output (per task, stitched in completion order).
  /// Turning this off only drops the transcript text; `runs` and all
  /// other result fields are still populated.
  bool capture_transcript = true;
  /// Optional fault plan: a worker whose processor has a registered
  /// crash fail-stops at the first lane placement whose *scheduled*
  /// start is at or past the crash time (so injection is deterministic
  /// regardless of wall-clock jitter). Surviving workers adopt the dead
  /// worker's stranded tasks. Not owned; must outlive run().
  const fault::FaultPlan* faults = nullptr;
  /// Fault-plan rescan fallback only: completion and failure always
  /// notify waiting workers immediately, so this bounds how long an
  /// idle rescuer can sleep before re-scanning the orphan queue even
  /// when nothing new has happened.
  double rescue_poll_seconds = 0.01;
};

struct TaskRun {
  TaskId task = graph::kNoTask;
  ProcId proc = -1;
  bool duplicate = false;
  bool rescued = false;      ///< re-run by a survivor after a worker died
  double wall_start = 0.0;   ///< seconds since run start
  double wall_finish = 0.0;
};

struct RunResult {
  /// Final value of every store (inputs echoed, outputs computed).
  std::map<std::string, pits::Value> stores;
  /// Output-store values only (the program's results).
  std::map<std::string, pits::Value> outputs;
  double wall_seconds = 0.0;
  std::vector<TaskRun> runs;
  std::string transcript;
  // ---- Fault recovery accounting (non-zero only with RunOptions::faults).
  int workers_died = 0;
  std::size_t tasks_rescued = 0;
  /// Wall seconds survivors spent re-running stranded work.
  double recovery_overhead_seconds = 0.0;
};

/// One-thread reference execution in topological order. Throws the first
/// task error (Error{Runtime}/Error{Type}/...) with the task name in the
/// message.
RunResult run_sequential(const FlattenResult& flat,
                         const std::map<std::string, pits::Value>& inputs,
                         const RunOptions& options = {});

/// Outcome of one trial in a batched run: either a full RunResult or
/// exactly the error the equivalent one-shot run_sequential would have
/// thrown for that input (code, message, position). Erroring inputs
/// mid-batch do not disturb their neighbours.
struct TrialOutcome {
  bool ok = false;
  RunResult result;
  ErrorCode error_code = ErrorCode::Runtime;
  std::string error;
  SourcePos error_pos;
};

/// Batched trial runs: executes the design once per input map, in input
/// order, amortising parse/analysis/compilation and reusing VM register
/// frames and transcript buffers across the whole batch. Per-trial
/// stores/outputs/transcript are byte-identical to run_sequential on the
/// same input. `jobs` fans trials across the shared thread pool with a
/// deterministic order-preserving merge (1 = inline on the caller,
/// < 1 = util::default_jobs()); results are identical for any value.
std::vector<TrialOutcome> run_trials(
    const FlattenResult& flat,
    const std::vector<std::map<std::string, pits::Value>>& inputs,
    const RunOptions& options = {}, int jobs = 1);

/// Parallel execution honouring a schedule's placement and lane order.
class Executor {
 public:
  Executor(const FlattenResult& flat, const Machine& machine);

  /// Runs on real threads (one per processor the schedule uses). Throws
  /// the first task error after all workers have stopped. The result's
  /// outputs are bitwise identical to run_sequential's — including under
  /// an injected worker crash, as long as at least one worker survives
  /// (all workers dead is Error{Runtime}).
  [[nodiscard]] RunResult run(
      const Schedule& schedule,
      const std::map<std::string, pits::Value>& inputs,
      const RunOptions& options = {}) const;

 private:
  const FlattenResult& flat_;
  const Machine& machine_;
};

}  // namespace banger::exec
