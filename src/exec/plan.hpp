// banger/exec/plan.hpp
//
// Internal machinery shared by the batch executor (executor.cpp) and the
// streaming executor (stream.cpp): the process-wide compiled-routine
// cache and the per-design execution plan — which predecessor (and which
// of its outputs) feeds each task input, which chunk slot each variable
// lives in, which writer supplies each store — resolved once so the
// per-task hot path binds VM registers directly instead of building a
// std::map environment per task.
//
// Not part of the public exec API (include exec/executor.hpp or
// exec/stream.hpp instead), but a real header so the two execution modes
// and the white-box tests share one implementation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "exec/executor.hpp"
#include "pits/bytecode.hpp"
#include "sched/schedule.hpp"
#include "util/strings.hpp"

namespace banger::exec {

/// Per-trial task outputs, in Task::outputs declaration order.
using TaskOutputs = std::vector<pits::Value>;
using ExternalInputs = std::map<std::string, pits::Value>;

/// Stable per-task seed so duplicate copies (and re-runs) agree. The
/// seed basis is historical (a truncated FNV offset basis) and must
/// stay verbatim: generated programs embed these values.
inline std::uint64_t seed_for(const std::string& task_name,
                              std::uint64_t base) {
  return util::fnv1a64(task_name, 1469598103934665603ull ^ base);
}

// ---- compiled-routine cache -----------------------------------------
//
// Parsing, abstract interpretation, and bytecode compilation used to
// happen once per run; on the trial hot path they dwarfed execution
// itself. The cache is process-wide and keyed by routine source text,
// so repeated runs of a design (or many designs sharing routines) pay
// for the front end exactly once. Parse/compile failures are not
// cached: they re-raise per run, exactly as before.

struct CachedProgram {
  std::string source;
  pits::Program program;
  std::shared_ptr<const pits::bc::Chunk> chunk;  ///< null -> walker only
};

/// Segmented (two-generation) LRU: entries live in a `hot` shard; when
/// it fills, the previous generation (`cold`) is dropped and hot becomes
/// cold. Anything touched at least once per generation is promoted back
/// to hot and survives indefinitely, so a long-lived serve/stream
/// process under cap pressure evicts only routines it stopped using —
/// it never recompiles its whole working set at once the way the old
/// clear-everything policy did.
class ProgramCache {
 public:
  /// `cap` is per generation; worst-case residency is 2*cap entries.
  /// The default comfortably holds the largest bundled design (the
  /// 32x32 heat workload carries ~1k distinct routines).
  explicit ProgramCache(std::size_t cap = 4096) : cap_(cap ? cap : 1) {}

  CachedProgram get(const std::string& source);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;       ///< compiles (first sight of a source)
    std::uint64_t evictions = 0;    ///< entries dropped at generation flips
  };
  [[nodiscard]] Stats stats() const;

 private:
  // FNV key -> entries (collision chain compares full source text).
  using Shard = std::map<std::uint64_t, std::vector<CachedProgram>>;

  /// Mutex held. Inserts into `hot`, flipping generations when full.
  void insert_hot_locked(std::uint64_t key, const CachedProgram& entry);

  std::size_t cap_;
  mutable std::mutex mutex_;
  Shard hot_;
  Shard cold_;
  std::size_t hot_size_ = 0;
  std::size_t cold_size_ = 0;
  Stats stats_;
};

/// The process-wide instance every execution mode shares.
ProgramCache& program_cache();

// ---- design plans ----------------------------------------------------

/// How one declared input of a task receives its value. Resolution
/// order mirrors the historical bind_inputs: a labelled in-edge whose
/// producer declares the variable, then any producing predecessor, then
/// an external input store; anything else is an error raised when the
/// task is reached (not at plan time — earlier tasks' runtime errors
/// must still win).
struct InputBinding {
  enum class Kind : std::uint8_t { Producer, External, Nothing };
  Kind kind = Kind::Nothing;
  std::uint32_t var = 0;  ///< index into Task::inputs
  graph::TaskId producer = graph::kNoTask;
  std::uint32_t producer_out = 0;  ///< index into the producer's outputs
  std::int32_t slot = -1;          ///< chunk slot, -1 when not in the chunk
  /// True when this binding is the only read of the producer's value
  /// across the whole run (no other consumer binding — scheduled
  /// duplicates included — no pass-through re-resolve, no store writer,
  /// no duplicate cross-check), so resolving may move it out instead of
  /// copying.
  bool take = false;
};

struct OutputPlan {
  std::int32_t slot = -1;        ///< chunk slot, -1 when not in the chunk
  std::int32_t pass_input = -1;  ///< binding index for input pass-through
};

struct TaskPlan {
  pits::Program program;
  std::shared_ptr<const pits::bc::Chunk> chunk;
  bool runnable = false;
  /// False when a variable repeats in Task::outputs: collection then
  /// copies values instead of moving them out of the frame.
  bool unique_outputs = true;
  std::vector<InputBinding> inputs;
  std::vector<OutputPlan> outputs;
};

struct StoreWriter {
  graph::TaskId task = graph::kNoTask;
  std::uint32_t out = 0;  ///< index into the writer's outputs
};

struct DesignPlan {
  std::vector<TaskPlan> tasks;
  /// Per flat.stores entry: writers that actually declare the store's
  /// variable, in writer order (the last one present wins).
  std::vector<std::vector<StoreWriter>> store_writers;
  /// True when the resolved PITS engine is the VM (slot-frame path).
  bool vm_engine = false;
};

/// Controls the sole-use move optimization. Moving a produced value to
/// its consumer (instead of copying) is sound only when that value is
/// read exactly once over the whole run, so the counting must reflect
/// how often each task actually executes:
///   - schedule == nullptr: every task runs exactly once
///     (run_sequential / run_trials).
///   - schedule != nullptr: each consumer binding is counted once per
///     scheduled placement of the consumer (duplicate copies re-bind the
///     same producer value), and every output of a task with duplicate
///     placements gains one extra use for the executor's duplicate
///     cross-check, which compares fresh outputs against the stored
///     value.
///   - faults: a fault plan makes rescue re-binds possible, so every
///     consumer binding is counted twice — which disables all takes.
struct TakePlan {
  bool allow = true;
  const sched::Schedule* schedule = nullptr;
  bool faults = false;
};

DesignPlan build_plan(const FlattenResult& flat, const RunOptions& options,
                      const TakePlan& takes);

// ---- per-thread execution scratch ------------------------------------

/// Append-only streambuf over a pooled std::string: print() output
/// lands in a reusable buffer instead of a fresh ostringstream per task.
class TranscriptBuf final : public std::streambuf {
 public:
  std::string text;

 protected:
  int_type overflow(int_type ch) override {
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      text.push_back(traits_type::to_char_type(ch));
    }
    return traits_type::not_eof(ch);
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    text.append(s, static_cast<std::size_t>(n));
    return n;
  }
};

/// Reusable per-thread execution state: the VM register frame and the
/// transcript buffer keep their capacity across tasks and trials.
struct TaskScratch {
  pits::bc::Frame frame;
  TranscriptBuf transcript;
  std::ostream transcript_stream{&transcript};
};

/// The exact diagnostics the historical bind path raised, factored out
/// so the streaming executor reports byte-identical bind errors.
[[noreturn]] void fail_missing_external(const graph::Task& task,
                                        std::uint32_t var);
[[noreturn]] void fail_bound_to_nothing(const graph::Task& task,
                                        std::uint32_t var);

/// Resolves one input value. Producer outputs are stable once written
/// (each task's slot is assigned exactly once, before any dependant
/// binds), so reads need no lock beyond the caller's ordering.
pits::Value resolve_binding(const graph::Task& task, const InputBinding& b,
                            const ExternalInputs& external,
                            std::vector<std::optional<TaskOutputs>>& outs);

/// Resolves task `t`'s inputs. Slot path (VM engine + compiled chunk):
/// binds values straight into scratch.frame. Walker path: fills `env`.
/// Returns true when the slot path is active.
bool bind_task(const FlattenResult& flat, const DesignPlan& plan,
               graph::TaskId t, const ExternalInputs& external,
               std::vector<std::optional<TaskOutputs>>& outs,
               TaskScratch& scratch, pits::Env& env);

/// Executes task `t` after binding and collects its declared outputs in
/// declaration order. `env` is consumed (walker path only). Declared
/// outputs the routine never assigns but receives as inputs are
/// re-resolved through `pass` (a callable taking the InputBinding and
/// returning the value) — the batch executor re-reads the producer's
/// stored outputs, the streaming executor its gathered packets.
template <class PassThrough>
TaskOutputs execute_task_with(const FlattenResult& flat,
                              const DesignPlan& plan, graph::TaskId t,
                              bool slots, pits::Env env, TaskScratch& scratch,
                              const RunOptions& options, PassThrough&& pass,
                              std::string* transcript) {
  const graph::Task& task = flat.graph.task(t);
  const TaskPlan& tp = plan.tasks[t];
  TaskOutputs outputs;
  if (!tp.runnable) return outputs;

  const bool capture = transcript != nullptr && options.capture_transcript;
  scratch.transcript.text.clear();
  pits::ExecOptions exec_opts = options.pits;
  exec_opts.seed = seed_for(task.name, options.pits.seed);
  exec_opts.out = capture ? &scratch.transcript_stream : nullptr;
  try {
    if (slots) {
      pits::bc::run_frame(*tp.chunk, scratch.frame, exec_opts);
    } else {
      tp.program.execute(env, exec_opts);
    }
  } catch (const Error& e) {
    fail(e.code(), "in task `" + task.name + "`: " + e.message(), e.pos());
  }
  outputs.reserve(task.outputs.size());
  for (std::size_t i = 0; i < task.outputs.size(); ++i) {
    const OutputPlan& op = tp.outputs[i];
    if (slots) {
      if (op.slot >= 0 &&
          scratch.frame.states[static_cast<std::size_t>(op.slot)] ==
              pits::bc::kSlotBound) {
        if (tp.unique_outputs) {
          outputs.push_back(std::move(
              scratch.frame.regs[static_cast<std::size_t>(op.slot)]));
        } else {
          outputs.push_back(
              scratch.frame.regs[static_cast<std::size_t>(op.slot)]);
        }
        continue;
      }
      if (op.pass_input >= 0) {
        outputs.push_back(
            pass(tp.inputs[static_cast<std::size_t>(op.pass_input)]));
        continue;
      }
    } else {
      if (auto it = env.find(task.outputs[i]); it != env.end()) {
        outputs.push_back(it->second);
        continue;
      }
    }
    fail(ErrorCode::Runtime, "task `" + task.name +
                                 "` never assigned its output `" +
                                 task.outputs[i] + "`");
  }
  if (capture && !scratch.transcript.text.empty()) {
    *transcript += "[" + task.name + "]\n" + scratch.transcript.text;
  }
  return outputs;
}

/// execute_task_with specialised to the batch executors' pass-through:
/// re-resolve from the producer's stored outputs.
TaskOutputs execute_task(const FlattenResult& flat, const DesignPlan& plan,
                         graph::TaskId t, bool slots, pits::Env env,
                         TaskScratch& scratch, const RunOptions& options,
                         const ExternalInputs& external,
                         std::vector<std::optional<TaskOutputs>>& outs,
                         std::string* transcript);

/// Collects final store values (writer with the latest position wins; in
/// practice designs have a single writer per store).
void collect_stores(const FlattenResult& flat, const DesignPlan& plan,
                    const std::vector<std::optional<TaskOutputs>>& task_outputs,
                    const ExternalInputs& external, RunResult& result);

}  // namespace banger::exec
