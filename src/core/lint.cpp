#include "core/lint.hpp"

#include <algorithm>

#include "analyze/analyze.hpp"

namespace banger {

// lint_design is now a compatibility projection of the analysis engine's
// interface layer (src/analyze): same rules, same message text, but the
// engine owns rule logic, ordering, and deduplication. The projection
// drops positions and hints; callers who want those (or the PITS
// dataflow / determinacy layers) use analyze::analyze_design directly.

std::string LintIssue::to_string() const {
  return std::string(severity == LintSeverity::Error ? "error" : "warning") +
         ": " + subject_kind + " `" + subject + "`: " + message;
}

std::vector<LintIssue> lint_design(const graph::Design& design,
                                   const LintOptions& options) {
  analyze::AnalyzeOptions opts;
  opts.interface_rules = true;
  opts.pits_rules = false;
  opts.determinacy_rules = false;
  opts.require_pits = options.require_pits;
  opts.work_estimate_factor = options.work_estimate_factor;

  auto diagnostics = analyze::analyze_design(design, opts);
  std::vector<LintIssue> issues;
  issues.reserve(diagnostics.size());
  for (auto& d : diagnostics) {
    issues.push_back({d.severity == analyze::Severity::Error
                          ? LintSeverity::Error
                          : LintSeverity::Warning,
                      std::move(d.subject_kind), std::move(d.subject),
                      std::move(d.message)});
  }
  return issues;
}

bool has_errors(const std::vector<LintIssue>& issues) {
  return std::any_of(issues.begin(), issues.end(), [](const LintIssue& i) {
    return i.severity == LintSeverity::Error;
  });
}

}  // namespace banger
