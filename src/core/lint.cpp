#include "core/lint.hpp"

#include <algorithm>
#include <set>

#include "pits/interp.hpp"
#include "util/strings.hpp"

namespace banger {

namespace {

using graph::FlatStore;
using graph::FlattenResult;
using graph::TaskId;

void check_task_interfaces(const FlattenResult& flat,
                           const LintOptions& options,
                           std::vector<LintIssue>& issues) {
  for (TaskId t = 0; t < flat.graph.num_tasks(); ++t) {
    const graph::Task& task = flat.graph.task(t);
    const bool empty_body = util::trim(task.pits).empty();

    if (empty_body) {
      if (!task.outputs.empty()) {
        issues.push_back({LintSeverity::Error, "task", task.name,
                          "declares outputs but has no PITS routine"});
      } else if (options.require_pits) {
        issues.push_back({LintSeverity::Warning, "task", task.name,
                          "has no PITS routine (skeleton node)"});
      }
      continue;
    }

    pits::Program program;
    try {
      program = pits::Program::parse(task.pits);
    } catch (const Error& e) {
      issues.push_back({LintSeverity::Error, "task", task.name,
                        std::string("PITS does not parse: ") + e.what()});
      continue;
    }

    // Reads the routine performs but the node does not declare.
    const auto reads = program.inputs();
    for (const std::string& var : reads) {
      if (std::find(task.inputs.begin(), task.inputs.end(), var) ==
          task.inputs.end()) {
        issues.push_back({LintSeverity::Error, "task", task.name,
                          "routine reads `" + var +
                              "` which is not a declared input"});
      }
    }
    // Declared inputs the routine never touches.
    for (const std::string& var : task.inputs) {
      if (std::find(reads.begin(), reads.end(), var) == reads.end()) {
        issues.push_back({LintSeverity::Warning, "task", task.name,
                          "declared input `" + var + "` is never read"});
      }
    }
    // Declared outputs the routine never assigns.
    const auto writes = program.outputs();
    for (const std::string& var : task.outputs) {
      if (std::find(writes.begin(), writes.end(), var) == writes.end()) {
        issues.push_back({LintSeverity::Error, "task", task.name,
                          "declared output `" + var +
                              "` is never assigned"});
      }
    }

    if (options.work_estimate_factor > 0) {
      // Crude but useful: statement count as a work proxy.
      const auto statements = static_cast<double>(
          std::count(task.pits.begin(), task.pits.end(), '\n'));
      if (statements > 0 && task.work > 0) {
        const double ratio = task.work / statements;
        if (ratio > options.work_estimate_factor ||
            ratio < 1.0 / options.work_estimate_factor) {
          issues.push_back(
              {LintSeverity::Warning, "task", task.name,
               "work estimate " + util::format_double(task.work) +
                   " looks far from routine size (" +
                   util::format_double(statements) + " lines)"});
        }
      }
    }
  }
}

void check_stores(const FlattenResult& flat, std::vector<LintIssue>& issues) {
  for (const FlatStore& store : flat.stores) {
    if (store.writers.empty() && store.readers.empty()) {
      issues.push_back({LintSeverity::Warning, "store", store.name,
                        "is never read or written (dead store)"});
    }
  }
  // Input variables a task needs but nothing supplies: flatten already
  // guarantees producer edges or input stores for store-mediated
  // variables; check the leftover case of a declared input with neither.
  for (TaskId t = 0; t < flat.graph.num_tasks(); ++t) {
    const graph::Task& task = flat.graph.task(t);
    for (const std::string& var : task.inputs) {
      bool supplied = false;
      for (graph::EdgeId e : flat.graph.in_edges(t)) {
        const auto& outputs = flat.graph.task(flat.graph.edge(e).from).outputs;
        if (std::find(outputs.begin(), outputs.end(), var) != outputs.end()) {
          supplied = true;
          break;
        }
      }
      if (!supplied) {
        const FlatStore* store = flat.find_store(var);
        supplied = store != nullptr && store->writers.empty();
      }
      if (!supplied) {
        issues.push_back({LintSeverity::Error, "task", task.name,
                          "input `" + var + "` is bound to nothing"});
      }
    }
  }
}

void check_graph_shape(const FlattenResult& flat,
                       std::vector<LintIssue>& issues) {
  // Tasks disconnected from every output store do work nobody observes.
  std::set<TaskId> useful;
  std::vector<TaskId> frontier;
  for (const FlatStore& store : flat.stores) {
    if (store.readers.empty()) {
      for (TaskId w : store.writers) frontier.push_back(w);
    }
  }
  // Tasks feeding sinks with declared outputs also count as observable.
  for (TaskId t = 0; t < flat.graph.num_tasks(); ++t) {
    if (flat.graph.out_edges(t).empty() &&
        !flat.graph.task(t).outputs.empty()) {
      frontier.push_back(t);
    }
  }
  while (!frontier.empty()) {
    const TaskId t = frontier.back();
    frontier.pop_back();
    if (!useful.insert(t).second) continue;
    for (TaskId p : flat.graph.preds(t)) frontier.push_back(p);
  }
  if (!useful.empty()) {
    for (TaskId t = 0; t < flat.graph.num_tasks(); ++t) {
      if (!useful.contains(t)) {
        issues.push_back({LintSeverity::Warning, "task",
                          flat.graph.task(t).name,
                          "contributes to no output store"});
      }
    }
  }
}

}  // namespace

std::string LintIssue::to_string() const {
  return std::string(severity == LintSeverity::Error ? "error" : "warning") +
         ": " + subject_kind + " `" + subject + "`: " + message;
}

std::vector<LintIssue> lint_design(const graph::Design& design,
                                   const LintOptions& options) {
  const auto flat = design.flatten();
  std::vector<LintIssue> issues;
  check_task_interfaces(flat, options, issues);
  check_stores(flat, issues);
  check_graph_shape(flat, issues);
  std::stable_sort(issues.begin(), issues.end(),
                   [](const LintIssue& a, const LintIssue& b) {
                     if (a.severity != b.severity)
                       return a.severity == LintSeverity::Error;
                     return a.subject < b.subject;
                   });
  return issues;
}

bool has_errors(const std::vector<LintIssue>& issues) {
  return std::any_of(issues.begin(), issues.end(), [](const LintIssue& i) {
    return i.severity == LintSeverity::Error;
  });
}

}  // namespace banger
