// banger/core/project.hpp
//
// The environment facade: one object per Banger "project" that walks the
// paper's four-step workflow —
//   1. draw the hierarchical dataflow graph      (graph::Design)
//   2. define the target machine                 (machine::Machine)
//   3. program each node with the calculator     (calc / pits)
//   4. generate: schedule, predict, simulate,
//      trial-run, emit code                      (sched/sim/exec/codegen)
// — with instant-feedback accessors that recompute lazily and cache.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "codegen/codegen.hpp"
#include "exec/executor.hpp"
#include "exec/stream.hpp"
#include "graph/design.hpp"
#include "machine/machine.hpp"
#include "sched/scheduler.hpp"
#include "sched/speedup.hpp"
#include "sim/simulator.hpp"

namespace banger {

class Project {
 public:
  /// Takes the finished design (validated here). The design is immutable
  /// afterwards: editing means building a new Project, exactly like
  /// re-entering the editor.
  explicit Project(graph::Design design);

  /// Loads a `.pitl` file.
  static Project load(const std::string& path);

  [[nodiscard]] const graph::Design& design() const noexcept { return design_; }
  [[nodiscard]] const graph::FlattenResult& flattened() const noexcept {
    return flat_;
  }

  /// Step 2: pick the target machine. Clears cached schedules.
  void set_machine(machine::Machine machine);
  [[nodiscard]] bool has_machine() const noexcept {
    return machine_.has_value();
  }
  /// Throws Error{Machine} if no machine was defined yet.
  [[nodiscard]] const machine::Machine& machine() const;

  /// Step 4a: schedule with a named heuristic (default: the MH production
  /// scheduler). Validated and cached per heuristic name.
  const sched::Schedule& schedule(const std::string& heuristic = "mh") const;
  [[nodiscard]] sched::ScheduleMetrics metrics(
      const std::string& heuristic = "mh") const;

  /// Step 4b: speedup prediction over machines of the same family as the
  /// current machine (same parameters, topology resized). `sizes` are
  /// processor counts; hypercubes round up to the next power of two.
  /// `jobs` > 1 schedules the sizes concurrently (<= 0 means
  /// util::default_jobs()); the curve is identical for every value.
  [[nodiscard]] sched::SpeedupCurve speedup(
      const std::vector<int>& sizes, const std::string& heuristic = "mh",
      int jobs = 1) const;

  /// Step 4c: discrete-event replay of a schedule.
  [[nodiscard]] sim::SimResult simulate(
      const std::string& heuristic = "mh",
      const sim::SimOptions& options = {}) const;

  /// Trial run of the whole program, sequentially (no machine needed).
  [[nodiscard]] exec::RunResult trial_run(
      const std::map<std::string, pits::Value>& inputs,
      const exec::RunOptions& options = {}) const;

  /// Batched trial runs: one sequential run per input map, in order,
  /// amortising parse/analysis/compilation and reusing execution frames
  /// across the batch (see exec::run_trials). Each outcome is
  /// byte-identical to the matching one-shot trial_run, including
  /// errors; `jobs` fans trials across threads deterministically.
  [[nodiscard]] std::vector<exec::TrialOutcome> trial_runs(
      const std::vector<std::map<std::string, pits::Value>>& inputs,
      const exec::RunOptions& options = {}, int jobs = 1) const;

  /// Real parallel execution on host threads following a schedule.
  [[nodiscard]] exec::RunResult run(
      const std::map<std::string, pits::Value>& inputs,
      const std::string& heuristic = "mh",
      const exec::RunOptions& options = {}) const;

  /// Streaming (pipeline) execution: runs the scheduled graph
  /// continuously over a sequence of input batches through persistent
  /// stages on bounded queues (see exec::run_stream). Each outcome is
  /// byte-identical to the matching one-shot run(); the report carries
  /// per-block and per-queue statistics.
  [[nodiscard]] exec::StreamResult run_stream(
      const std::vector<std::map<std::string, pits::Value>>& batches,
      const std::string& heuristic = "mh",
      const exec::StreamOptions& options = {}) const;

  /// Step 4d: emit the standalone C++ program.
  [[nodiscard]] std::string generate_code(
      const std::map<std::string, pits::Value>& inputs,
      const std::string& heuristic = "mh",
      const codegen::CodegenOptions& options = {}) const;

  /// Quick design diagnostics shown by the environment: leaf tasks,
  /// hierarchy depth, critical path, average parallelism.
  struct DesignSummary {
    std::size_t leaf_tasks = 0;
    std::size_t edges = 0;
    std::size_t stores = 0;
    int depth = 0;
    double total_work = 0.0;
    double critical_path_work = 0.0;
    double average_parallelism = 0.0;
  };
  [[nodiscard]] DesignSummary summary() const;

 private:
  /// Builds a machine of the current family with ~`procs` processors.
  [[nodiscard]] machine::Machine resized_machine(int procs) const;

  graph::Design design_;
  graph::FlattenResult flat_;
  std::optional<machine::Machine> machine_;
  mutable std::map<std::string, sched::Schedule> schedule_cache_;
};

}  // namespace banger
