#include "core/project.hpp"

#include "graph/analysis.hpp"
#include "graph/serialize.hpp"
#include "util/error.hpp"

namespace banger {

Project::Project(graph::Design design) : design_(std::move(design)) {
  design_.validate();
  flat_ = design_.flatten();
}

Project Project::load(const std::string& path) {
  return Project(graph::load_design(path));
}

void Project::set_machine(machine::Machine machine) {
  machine_ = std::move(machine);
  schedule_cache_.clear();
}

const machine::Machine& Project::machine() const {
  if (!machine_) {
    fail(ErrorCode::Machine,
         "no target machine defined yet (workflow step 2)");
  }
  return *machine_;
}

const sched::Schedule& Project::schedule(const std::string& heuristic) const {
  auto it = schedule_cache_.find(heuristic);
  if (it != schedule_cache_.end()) return it->second;
  const auto scheduler = sched::make_scheduler(heuristic);
  sched::Schedule schedule = scheduler->run(flat_.graph, machine());
  schedule.validate(flat_.graph, machine());
  return schedule_cache_.emplace(heuristic, std::move(schedule)).first->second;
}

sched::ScheduleMetrics Project::metrics(const std::string& heuristic) const {
  return sched::compute_metrics(schedule(heuristic), flat_.graph, machine());
}

machine::Machine Project::resized_machine(int procs) const {
  const machine::Machine& base = machine();
  const machine::MachineParams params = base.params();
  using machine::Topology;
  using machine::TopologyKind;
  switch (base.topology().kind()) {
    case TopologyKind::Hypercube: {
      int dim = 0;
      while ((1 << dim) < procs) ++dim;
      return machine::Machine(Topology::hypercube(dim), params);
    }
    case TopologyKind::FullyConnected:
      return machine::Machine(Topology::fully_connected(procs), params);
    case TopologyKind::Star:
      return machine::Machine(Topology::star(procs), params);
    case TopologyKind::Ring:
      return machine::Machine(Topology::ring(std::max(procs, 3)), params);
    case TopologyKind::Chain:
      return machine::Machine(Topology::chain(procs), params);
    case TopologyKind::Mesh:
    case TopologyKind::Torus: {
      // Nearest rows x cols factorisation.
      int rows = 1;
      for (int r = 1; r * r <= procs; ++r)
        if (procs % r == 0) rows = r;
      const int cols = procs / rows;
      return machine::Machine(base.topology().kind() == TopologyKind::Mesh
                                  ? Topology::mesh(rows, cols)
                                  : Topology::torus(rows, cols),
                              params);
    }
    case TopologyKind::Tree:
      return machine::Machine(Topology::tree(2, procs), params);
    case TopologyKind::Custom:
      fail(ErrorCode::Machine,
           "cannot resize a custom topology for speedup prediction");
  }
  fail(ErrorCode::Machine, "unknown topology kind");
}

sched::SpeedupCurve Project::speedup(const std::vector<int>& sizes,
                                     const std::string& heuristic,
                                     int jobs) const {
  const auto scheduler = sched::make_scheduler(heuristic);
  return sched::predict_speedup(
      flat_.graph, *scheduler,
      [this](int procs) { return resized_machine(procs); }, sizes, jobs);
}

sim::SimResult Project::simulate(const std::string& heuristic,
                                 const sim::SimOptions& options) const {
  return sim::simulate(flat_.graph, machine(), schedule(heuristic), options);
}

exec::RunResult Project::trial_run(
    const std::map<std::string, pits::Value>& inputs,
    const exec::RunOptions& options) const {
  return exec::run_sequential(flat_, inputs, options);
}

std::vector<exec::TrialOutcome> Project::trial_runs(
    const std::vector<std::map<std::string, pits::Value>>& inputs,
    const exec::RunOptions& options, int jobs) const {
  return exec::run_trials(flat_, inputs, options, jobs);
}

exec::RunResult Project::run(const std::map<std::string, pits::Value>& inputs,
                             const std::string& heuristic,
                             const exec::RunOptions& options) const {
  exec::Executor executor(flat_, machine());
  return executor.run(schedule(heuristic), inputs, options);
}

exec::StreamResult Project::run_stream(
    const std::vector<std::map<std::string, pits::Value>>& batches,
    const std::string& heuristic, const exec::StreamOptions& options) const {
  return exec::run_stream(flat_, schedule(heuristic), machine(), batches,
                          options);
}

std::string Project::generate_code(
    const std::map<std::string, pits::Value>& inputs,
    const std::string& heuristic,
    const codegen::CodegenOptions& options) const {
  return codegen::generate_cpp(flat_, schedule(heuristic), inputs, options);
}

Project::DesignSummary Project::summary() const {
  DesignSummary s;
  s.leaf_tasks = flat_.graph.num_tasks();
  s.edges = flat_.graph.num_edges();
  s.stores = flat_.stores.size();
  s.depth = design_.depth();
  s.total_work = flat_.graph.total_work();
  const auto cost = graph::CostModel::from_work(flat_.graph);
  s.critical_path_work = graph::critical_path_length(flat_.graph, cost);
  s.average_parallelism = graph::average_parallelism(flat_.graph);
  return s;
}

}  // namespace banger
