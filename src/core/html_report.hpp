// banger/core/html_report.hpp
//
// Single-file HTML report: the closest headless stand-in for Banger's
// GUI windows. Embeds the SVG Gantt chart (hover a task box for its
// interval), the design summary and lint results, an SVG speedup curve,
// and the heuristic comparison table — everything the environment would
// show on screen, openable in any browser with no dependencies.
#pragma once

#include <string>
#include <vector>

#include "core/project.hpp"

namespace banger {

struct HtmlReportOptions {
  std::string scheduler = "mh";
  std::vector<int> speedup_sizes{1, 2, 4, 8};
};

/// Renders the full report. The project must have a machine set; throws
/// Error{Machine} otherwise.
std::string render_html_report(const Project& project,
                               const HtmlReportOptions& options = {});

}  // namespace banger
