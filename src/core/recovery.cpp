#include "core/recovery.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace banger::core {

std::string FaultRunReport::summary() const {
  std::ostringstream out;
  auto line = [&](std::string_view label, const std::string& value) {
    out << "  " << util::pad_right(label, 22) << value << '\n';
  };
  out << "fault recovery report\n";
  line("baseline makespan", util::format_double(baseline_makespan));
  line("degraded makespan", util::format_double(degraded_makespan));
  std::string overhead = util::format_double(recovery_overhead);
  if (baseline_makespan > 0) {
    overhead += " (" +
                util::format_double(100.0 * recovery_overhead /
                                    baseline_makespan, 3) +
                "%)";
  }
  line("recovery overhead", overhead);
  if (crashed) {
    line("repair", std::to_string(repair.new_placements.size()) +
                       " placements on survivors, " +
                       std::to_string(repair.reexecuted.size()) +
                       " finished tasks re-executed");
  } else {
    line("repair", "not needed (no work stranded)");
  }
  line("work lost", util::format_double(lost_seconds) + " s");
  line("work re-executed", util::format_double(reexec_seconds) + " s");
  return out.str();
}

FaultRunReport run_with_faults(const graph::TaskGraph& graph,
                               const machine::Machine& machine,
                               const sched::Schedule& schedule,
                               const fault::FaultPlan& plan,
                               const FaultRunOptions& options) {
  plan.validate(machine.num_procs());

  FaultRunReport report;
  sim::SimOptions base_opts = options.sim;
  base_opts.faults = nullptr;
  report.baseline = sim::simulate(graph, machine, schedule, base_opts);
  report.baseline_makespan = report.baseline.makespan;

  sim::SimOptions faulty_opts = options.sim;
  faulty_opts.faults = &plan;
  report.faulty = sim::simulate(graph, machine, schedule, faulty_opts);

  for (const sim::SimResult::Killed& k : report.faulty.killed) {
    report.lost_seconds += k.at - k.start;
  }
  report.events = report.faulty.events;

  obs::TraceRecorder* rec = obs::current();
  if (rec) rec->bump("recovery.runs");

  if (report.faulty.complete) {
    // Slowdowns / message faults may stretch the run, but nothing was
    // stranded, so no repair pass is needed.
    report.degraded_makespan = report.faulty.makespan;
    report.recovery_overhead =
        report.degraded_makespan - report.baseline_makespan;
    if (rec) {
      rec->bump("recovery.overhead_seconds", report.recovery_overhead);
    }
    return report;
  }

  // ---- Detect: the repair epoch starts at the last crash the replay
  // observed; processors crashing later than that are treated as still
  // alive for this epoch.
  report.crashed = true;
  double now = 0.0;
  const auto latest =
      plan.latest_crash_before(report.faulty.makespan + 1e-12);
  if (latest.has_value()) {
    now = *latest;
  } else {
    // Corner case: the crash stranded work that had not started yet, so
    // no activity reached the crash time. Detection still happens at the
    // crash itself.
    for (const fault::CrashFault& c : plan.crashes()) {
      now = std::max(now, c.at);
    }
  }
  std::vector<machine::ProcId> dead;
  for (machine::ProcId p : plan.crashed_procs()) {
    if (*plan.crash_time(p) <= now + 1e-12) dead.push_back(p);
  }

  // ---- Repair: reschedule the unfinished frontier on the survivors.
  sched::RepairRequest request;
  request.completed = report.faulty.finished_copies;
  request.dead = std::move(dead);
  request.now = now;
  request.insertion = options.insertion;
  request.label = schedule.scheduler_name().empty()
                      ? std::string("repair")
                      : schedule.scheduler_name() + "+repair";
  report.repair = sched::repair_schedule(graph, machine, request);

  // ---- Resume: the merged timeline is the faulty history plus the
  // repaired frontier (we do not re-simulate — the repair schedule's
  // analytic times are the resumed plan).
  report.degraded_makespan =
      std::max(report.faulty.makespan, report.repair.makespan);
  report.recovery_overhead =
      report.degraded_makespan - report.baseline_makespan;
  report.lost_seconds += report.repair.lost_seconds;
  report.reexec_seconds = report.repair.reexec_seconds;

  std::vector<char> ran_before(graph.num_tasks(), 0);
  for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
    if (!report.faulty.task_finished.empty() &&
        report.faulty.task_finished[t] != 0) {
      ran_before[t] = 1;
    }
  }
  for (const sim::SimResult::Killed& k : report.faulty.killed) {
    ran_before[k.task] = 1;
  }
  for (const sched::Placement& p : report.repair.new_placements) {
    const auto kind = ran_before[p.task] ? sim::EventKind::TaskReexec
                                         : sim::EventKind::TaskStart;
    report.events.push_back({p.start, kind, p.task, 0, p.proc});
    report.events.push_back(
        {p.finish, sim::EventKind::TaskFinish, p.task, 0, p.proc});
  }
  std::stable_sort(report.events.begin(), report.events.end(),
                   [](const sim::SimEvent& a, const sim::SimEvent& b) {
                     return a.time < b.time;
                   });

  if (rec) {
    // The recovery pipeline on its own track, in model time: detection
    // runs until the crash epoch `now`, then repair and resume overlay
    // the rebuilt frontier. tids separate the phases so they stack.
    using obs::Domain;
    rec->span(Domain::Virtual, obs::kTrackRecovery, 0, 0.0, now, "detect",
              "recovery",
              "\"dead_procs\": " + std::to_string(request.dead.size()));
    rec->span(Domain::Virtual, obs::kTrackRecovery, 1, now,
              report.repair.makespan, "repair", "recovery",
              "\"new_placements\": " +
                  std::to_string(report.repair.new_placements.size()) +
                  ", \"reexecuted\": " +
                  std::to_string(report.repair.reexecuted.size()));
    rec->span(Domain::Virtual, obs::kTrackRecovery, 2, now,
              report.degraded_makespan, "resume", "recovery");
    for (const fault::CrashFault& c : plan.crashes()) {
      if (c.at <= now + 1e-12) {
        rec->instant(Domain::Virtual, obs::kTrackRecovery, 0, c.at,
                     "crash proc " + std::to_string(c.proc), "fault",
                     "\"proc\": " + std::to_string(c.proc));
      }
    }
    rec->bump("recovery.crashed_runs");
    rec->bump("recovery.overhead_seconds", report.recovery_overhead);
    rec->bump("recovery.lost_seconds", report.lost_seconds);
    rec->bump("recovery.reexec_seconds", report.reexec_seconds);
    rec->bump("recovery.new_placements",
              static_cast<double>(report.repair.new_placements.size()));
  }
  return report;
}

std::string FaultMonteCarloStats::summary() const {
  std::ostringstream out;
  auto line = [&](std::string_view label, const std::string& value) {
    out << "  " << util::pad_right(label, 22) << value << '\n';
  };
  out << "fault monte carlo (" << trials << " trials)\n";
  line("baseline makespan", util::format_double(baseline_makespan));
  line("crashed runs", std::to_string(crashed_runs) + "/" +
                           std::to_string(trials));
  line("degraded mean", util::format_double(mean_degraded));
  line("degraded p50", util::format_double(p50_degraded));
  line("degraded p95", util::format_double(p95_degraded));
  line("degraded worst", util::format_double(worst_degraded));
  std::string overhead = util::format_double(mean_overhead);
  if (baseline_makespan > 0) {
    overhead += " (" +
                util::format_double(100.0 * mean_overhead / baseline_makespan,
                                    3) +
                "%)";
  }
  line("overhead mean", overhead);
  line("overhead worst", util::format_double(worst_overhead));
  return out.str();
}

FaultMonteCarloStats fault_monte_carlo(const graph::TaskGraph& graph,
                                       const machine::Machine& machine,
                                       const sched::Schedule& schedule,
                                       const fault::FaultPlan& plan,
                                       const FaultMonteCarloOptions& options) {
  struct Trial {
    double degraded = 0.0;
    double overhead = 0.0;
    bool crashed = false;
    double baseline = 0.0;
  };

  const int trials = std::max(1, options.trials);
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(trials));
  std::iota(seeds.begin(), seeds.end(), plan.seed());

  // Trials only differ in the plan seed; run_with_faults is pure, so
  // they parallelise freely and parallel_map keeps trial order.
  const std::vector<Trial> results = util::parallel_map(
      seeds, options.jobs, [&](std::uint64_t seed) {
        fault::FaultPlan trial_plan = plan;
        trial_plan.set_seed(seed);
        const FaultRunReport report =
            run_with_faults(graph, machine, schedule, trial_plan, options.run);
        return Trial{report.degraded_makespan, report.recovery_overhead,
                     report.crashed, report.baseline_makespan};
      });

  FaultMonteCarloStats stats;
  stats.trials = trials;
  stats.baseline_makespan = results.front().baseline;
  std::vector<double> degraded;
  degraded.reserve(results.size());
  for (const Trial& t : results) {
    degraded.push_back(t.degraded);
    stats.mean_degraded += t.degraded;
    stats.mean_overhead += t.overhead;
    stats.worst_degraded = std::max(stats.worst_degraded, t.degraded);
    stats.worst_overhead = std::max(stats.worst_overhead, t.overhead);
    if (t.crashed) ++stats.crashed_runs;
  }
  stats.mean_degraded /= trials;
  stats.mean_overhead /= trials;

  // Nearest-rank percentiles over the sorted degraded makespans.
  std::sort(degraded.begin(), degraded.end());
  auto rank = [&](double q) {
    const auto n = degraded.size();
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(n));
    return degraded[std::min(n - 1, idx)];
  };
  stats.p50_degraded = rank(0.50);
  stats.p95_degraded = rank(0.95);
  return stats;
}

}  // namespace banger::core
