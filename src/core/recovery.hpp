// banger/core/recovery.hpp
//
// Detect → repair → resume orchestration for faulted runs. The pipeline
// replays a schedule through the discrete-event simulator under a
// FaultPlan; if the crash strands part of the frontier, the repair
// scheduler rebuilds the remainder on the surviving processors and the
// report merges both halves into one timeline with recovery metrics:
//
//   degraded makespan  — when the program actually finishes,
//   recovery overhead  — degraded minus fault-free makespan,
//   lost seconds       — finished work invalidated by the crash plus
//                        work killed in flight,
//   re-executed seconds — everything the repair pass schedules.
//
// Everything is deterministic: same plan + same schedule => identical
// report, event log included.
#pragma once

#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "sched/repair.hpp"
#include "sim/simulator.hpp"

namespace banger::core {

struct FaultRunOptions {
  /// Simulator options for both the baseline and the faulty replay (the
  /// `faults` member is overwritten by run_with_faults).
  sim::SimOptions sim;
  /// Insertion-based gap search during repair.
  bool insertion = true;
};

struct FaultRunReport {
  /// Fault-free replay of the same schedule (the yardstick).
  sim::SimResult baseline;
  /// Replay under the plan; `faulty.complete == false` iff repair ran.
  sim::SimResult faulty;
  /// True when a crash stranded work and a repair schedule was built.
  bool crashed = false;
  /// The repair output (meaningful only when `crashed`).
  sched::RepairResult repair;

  double baseline_makespan = 0.0;
  double degraded_makespan = 0.0;
  double recovery_overhead = 0.0;  ///< degraded - baseline
  double lost_seconds = 0.0;       ///< work thrown away by the crash
  double reexec_seconds = 0.0;     ///< work the repair pass re-schedules

  /// Faulty-run events merged with synthetic TaskReexec/TaskStart/
  /// TaskFinish events for the repaired placements, time-ordered.
  std::vector<sim::SimEvent> events;

  /// Human-readable recovery summary block.
  [[nodiscard]] std::string summary() const;
};

/// Runs the full detect→repair→resume pipeline. The plan must validate
/// against the machine; an empty plan yields a report with
/// crashed=false and zero overhead.
FaultRunReport run_with_faults(const graph::TaskGraph& graph,
                               const machine::Machine& machine,
                               const sched::Schedule& schedule,
                               const fault::FaultPlan& plan,
                               const FaultRunOptions& options = {});

struct FaultMonteCarloOptions {
  /// Number of independent trials; trial k re-runs the plan with seed
  /// base_seed + k, resampling every stochastic message fate (loss
  /// retries and delay jitter). Crash and slowdown entries are part of
  /// the scenario and stay fixed.
  int trials = 32;
  /// Worker threads (<= 0 means util::default_jobs()). Statistics are
  /// bit-identical for every worker count.
  int jobs = 1;
  /// Options forwarded to each trial's run_with_faults.
  FaultRunOptions run;
};

/// Distribution summary over the trials' degraded makespans.
struct FaultMonteCarloStats {
  int trials = 0;
  int crashed_runs = 0;  ///< trials that needed a repair pass
  double baseline_makespan = 0.0;
  double mean_degraded = 0.0;
  double p50_degraded = 0.0;
  double p95_degraded = 0.0;
  double worst_degraded = 0.0;
  double mean_overhead = 0.0;
  double worst_overhead = 0.0;

  /// Human-readable block matching FaultRunReport::summary's style.
  [[nodiscard]] std::string summary() const;
};

/// Monte Carlo over the plan's stochastic outcomes: runs `trials`
/// seed-varied copies of the plan through run_with_faults (concurrently
/// when jobs > 1) and aggregates degraded-makespan statistics.
/// Deterministic: same inputs => identical stats, any jobs value.
FaultMonteCarloStats fault_monte_carlo(
    const graph::TaskGraph& graph, const machine::Machine& machine,
    const sched::Schedule& schedule, const fault::FaultPlan& plan,
    const FaultMonteCarloOptions& options = {});

}  // namespace banger::core
