// banger/core/lint.hpp
//
// Whole-design linting: the environment-level half of the paper's
// "instant feedback ... major contributor to early defect removal".
// The calculator panel lints one routine; this checks the *drawing*:
// interface mismatches between a task's declared variables and what its
// PITS routine actually reads/writes, dead stores, skeleton tasks,
// unreachable work, suspicious estimates.
#pragma once

#include <string>
#include <vector>

#include "graph/design.hpp"

namespace banger {

enum class LintSeverity : std::uint8_t {
  Warning,  ///< probably a mistake, the design still runs
  Error,    ///< will fail at trial-run/generate time
};

struct LintIssue {
  LintSeverity severity = LintSeverity::Warning;
  /// "task", "store", "graph" — what the issue is attached to.
  std::string subject_kind;
  /// Qualified name of the subject.
  std::string subject;
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

struct LintOptions {
  /// Complain about tasks whose PITS body is empty (skeleton designs
  /// are legal while sketching, so this is optional).
  bool require_pits = true;
  /// Warn when a task's work estimate deviates from the statement count
  /// of its routine by more than this factor (0 disables).
  double work_estimate_factor = 0.0;
};

/// Runs the interface-layer checks (BAN001-BAN010 in the analysis
/// engine) over a validated design. Returns issues in a fully
/// deterministic order — severity (errors first), subject kind, subject,
/// source position, rule code, message — with exact duplicates removed.
/// This is a compatibility wrapper over analyze::analyze_design; new
/// callers should use the engine directly for positions, hints, and the
/// dataflow/determinacy layers.
std::vector<LintIssue> lint_design(const graph::Design& design,
                                   const LintOptions& options = {});

/// True if any issue is an Error.
bool has_errors(const std::vector<LintIssue>& issues);

}  // namespace banger
