#include "core/html_report.hpp"

#include <cmath>
#include <sstream>

#include "core/lint.hpp"
#include "util/strings.hpp"
#include "viz/charts.hpp"
#include "viz/gantt.hpp"

namespace banger {

namespace {

std::string html_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      default: out += c;
    }
  }
  return out;
}

/// A small inline SVG line chart for the speedup curve (measured vs
/// ideal), sized to sit beside the Gantt.
std::string speedup_svg(const sched::SpeedupCurve& curve) {
  const int width = 420;
  const int height = 260;
  const int ml = 46;
  const int mb = 34;
  const int plot_w = width - ml - 16;
  const int plot_h = height - mb - 20;
  if (curve.points.empty()) return "";
  const double max_procs = curve.points.back().procs;
  double max_y = 1.0;
  for (const auto& p : curve.points) max_y = std::max(max_y, p.speedup);
  max_y = std::ceil(std::min(max_y * 1.15, max_procs));

  auto x_of = [&](double procs) {
    return ml + (procs - 1) / std::max(1.0, max_procs - 1) * plot_w;
  };
  auto y_of = [&](double speedup) {
    return 20 + (1.0 - speedup / max_y) * plot_h;
  };

  std::ostringstream svg;
  svg << "<svg width=\"" << width << "\" height=\"" << height
      << "\" xmlns=\"http://www.w3.org/2000/svg\" font-family=\"monospace\""
         " font-size=\"11\">\n";
  // Axes.
  svg << "<line x1=\"" << ml << "\" y1=\"20\" x2=\"" << ml << "\" y2=\""
      << 20 + plot_h << "\" stroke=\"#444\"/>\n";
  svg << "<line x1=\"" << ml << "\" y1=\"" << 20 + plot_h << "\" x2=\""
      << ml + plot_w << "\" y2=\"" << 20 + plot_h << "\" stroke=\"#444\"/>\n";
  svg << "<text x=\"8\" y=\"26\">" << util::format_double(max_y, 3)
      << "</text>\n<text x=\"8\" y=\"" << 20 + plot_h << "\">0</text>\n";
  // Ideal line.
  svg << "<line x1=\"" << x_of(1) << "\" y1=\"" << y_of(1) << "\" x2=\""
      << x_of(std::min(max_procs, max_y)) << "\" y2=\""
      << y_of(std::min(max_procs, max_y))
      << "\" stroke=\"#bbb\" stroke-dasharray=\"4,3\"/>\n";
  // Measured polyline + points.
  svg << "<polyline fill=\"none\" stroke=\"#4477aa\" stroke-width=\"2\" "
         "points=\"";
  for (const auto& p : curve.points) {
    svg << x_of(p.procs) << "," << y_of(p.speedup) << " ";
  }
  svg << "\"/>\n";
  for (const auto& p : curve.points) {
    svg << "<circle cx=\"" << x_of(p.procs) << "\" cy=\"" << y_of(p.speedup)
        << "\" r=\"3.5\" fill=\"#4477aa\"><title>" << p.procs
        << " procs: speedup " << util::format_double(p.speedup, 4)
        << "</title></circle>\n";
    svg << "<text x=\"" << x_of(p.procs) - 4 << "\" y=\"" << height - 14
        << "\">" << p.procs << "</text>\n";
  }
  svg << "<text x=\"" << ml + plot_w / 2 - 30 << "\" y=\"" << height - 2
      << "\">processors</text>\n";
  svg << "</svg>\n";
  return svg.str();
}

}  // namespace

std::string render_html_report(const Project& project,
                               const HtmlReportOptions& options) {
  const auto& schedule = project.schedule(options.scheduler);
  const auto metrics = project.metrics(options.scheduler);
  const auto summary = project.summary();
  const auto issues = lint_design(project.design());
  const auto curve = project.speedup(options.speedup_sizes, options.scheduler);

  std::ostringstream html;
  html << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
       << "<title>banger report: " << html_escape(project.design().name())
       << "</title>\n<style>\n"
       << "body{font-family:system-ui,sans-serif;margin:2em;max-width:70em}\n"
       << "h1,h2{font-weight:600} table{border-collapse:collapse}\n"
       << "td,th{border:1px solid #ccc;padding:4px 10px;text-align:right}\n"
       << "th{background:#f2f2f2} td:first-child,th:first-child"
       << "{text-align:left}\n"
       << ".warn{color:#9a6700} .err{color:#c00}\n"
       << "section{margin-bottom:2em}\n</style></head><body>\n";

  html << "<h1>banger report: " << html_escape(project.design().name())
       << "</h1>\n";

  html << "<section><h2>Design</h2><table>\n"
       << "<tr><th>leaf tasks</th><th>dependences</th><th>stores</th>"
       << "<th>depth</th><th>total work</th><th>critical path</th>"
       << "<th>avg parallelism</th></tr>\n"
       << "<tr><td>" << summary.leaf_tasks << "</td><td>" << summary.edges
       << "</td><td>" << summary.stores << "</td><td>" << summary.depth
       << "</td><td>" << util::format_double(summary.total_work)
       << "</td><td>" << util::format_double(summary.critical_path_work)
       << "</td><td>" << util::format_double(summary.average_parallelism, 4)
       << "</td></tr></table></section>\n";

  html << "<section><h2>Lint</h2>\n";
  if (issues.empty()) {
    html << "<p>clean — no issues found</p>\n";
  } else {
    html << "<ul>\n";
    for (const auto& issue : issues) {
      html << "<li class=\""
           << (issue.severity == LintSeverity::Error ? "err" : "warn")
           << "\">" << html_escape(issue.to_string()) << "</li>\n";
    }
    html << "</ul>\n";
  }
  html << "</section>\n";

  html << "<section><h2>Schedule (" << html_escape(options.scheduler)
       << " on " << html_escape(project.machine().name()) << ")</h2>\n"
       << "<p>makespan " << util::format_double(metrics.makespan, 6)
       << " &middot; speedup " << util::format_double(metrics.speedup, 4)
       << " &middot; efficiency "
       << util::format_double(metrics.efficiency, 4) << " &middot; "
       << metrics.procs_used << "/" << metrics.procs
       << " processors used &middot; " << metrics.duplicates
       << " duplicates</p>\n"
       << viz::render_gantt_svg(schedule, project.flattened().graph)
       << "</section>\n";

  html << "<section><h2>Speedup prediction</h2>\n" << speedup_svg(curve)
       << "</section>\n";

  html << "<section><h2>Heuristic comparison</h2><table>\n"
       << "<tr><th>scheduler</th><th>makespan</th><th>speedup</th>"
       << "<th>efficiency</th><th>procs used</th><th>duplicates</th></tr>\n";
  for (const std::string& name : sched::scheduler_names()) {
    const auto m = project.metrics(name);
    html << "<tr><td>" << name << "</td><td>"
         << util::format_double(m.makespan, 6) << "</td><td>"
         << util::format_double(m.speedup, 4) << "</td><td>"
         << util::format_double(m.efficiency, 4) << "</td><td>"
         << m.procs_used << "</td><td>" << m.duplicates << "</td></tr>\n";
  }
  html << "</table></section>\n";

  html << "<footer><small>generated by the banger environment "
       << "(reproduction of Lewis, ICPP 1994)</small></footer>\n"
       << "</body></html>\n";
  return html.str();
}

}  // namespace banger
