// banger/fault/fault.hpp
//
// Deterministic fault models for the Banger environment. The paper's
// machine is assumed reliable; production targets are not. A FaultPlan
// is a seeded, serialisable description of everything that goes wrong
// during one run:
//
//   - fail-stop processor crashes at a given time,
//   - transient processor slowdown windows (thermal throttling, noisy
//     neighbours),
//   - message loss with bounded retry/backoff (the retransmission of a
//     dropped packet costs a full re-send plus a backoff pause; the
//     final permitted attempt always succeeds, so delivery is delayed
//     but never infinite),
//   - message delay jitter (a deterministic pseudo-random fraction of
//     the base latency added per message).
//
// Every query is a pure function of the plan text plus its seed, so the
// simulator's event log and the repair scheduler's output are
// bit-reproducible: same seed + same plan => identical runs.
//
// `.fault` text serialisation:
//
//   faultplan demo seed=7
//   crash proc=2 at=3.5
//   slow proc=0 from=1 to=4 factor=2
//   msgloss prob=0.2 retries=3 backoff=0.1
//   msgdelay jitter=0.25
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"
#include "machine/machine.hpp"

namespace banger::sched {
class Schedule;
}

namespace banger::fault {

using machine::ProcId;

/// Fail-stop: processor `proc` dies at time `at` and never recovers.
/// Work in flight at `at` is lost; data resident on the processor
/// becomes unreachable.
struct CrashFault {
  ProcId proc = -1;
  double at = 0.0;
};

/// Transient slowdown: during [from, to) tasks on `proc` run `factor`
/// times slower than nominal. Overlapping windows take the max factor.
struct SlowdownFault {
  ProcId proc = -1;
  double from = 0.0;
  double to = 0.0;
  double factor = 1.0;
};

/// Per-message loss model: each transmission attempt is dropped with
/// probability `prob`; after a drop the sender waits `backoff` seconds
/// and retransmits. At most `retries` drops are possible — the attempt
/// after the last permitted drop always succeeds (bounded retry), so
/// faulty links delay messages instead of wedging the program.
struct MsgLossModel {
  double prob = 0.0;
  int retries = 3;
  double backoff = 0.0;
};

/// Per-message jitter: a deterministic pseudo-random extra delay in
/// [0, jitter) * base latency is added to every remote message.
struct MsgDelayModel {
  double jitter = 0.0;
};

/// Deterministic outcome for one message (one edge delivery between two
/// processors): how many transmission attempts it takes and the jitter
/// draw in [0, 1).
struct MsgFate {
  int attempts = 1;
  double jitter_fraction = 0.0;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::string name, std::uint64_t seed = 1)
      : name_(std::move(name)), seed_(seed) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  void set_seed(std::uint64_t seed) noexcept { seed_ = seed; }

  /// True when the plan injects nothing at all.
  [[nodiscard]] bool empty() const noexcept;

  /// Registers faults. Throws Error{Machine} on malformed entries
  /// (negative times, factor < 1, duplicate crash for one processor).
  void add_crash(ProcId proc, double at);
  void add_slowdown(ProcId proc, double from, double to, double factor);
  void set_msg_loss(MsgLossModel model);
  void set_msg_delay(MsgDelayModel model);

  [[nodiscard]] const std::vector<CrashFault>& crashes() const noexcept {
    return crashes_;
  }
  [[nodiscard]] const std::vector<SlowdownFault>& slowdowns() const noexcept {
    return slowdowns_;
  }
  [[nodiscard]] const MsgLossModel& msg_loss() const noexcept {
    return msg_loss_;
  }
  [[nodiscard]] const MsgDelayModel& msg_delay() const noexcept {
    return msg_delay_;
  }

  /// Throws Error{Machine} if any fault names a processor outside
  /// [0, num_procs).
  void validate(int num_procs) const;

  /// Crash time of a processor, if it crashes at all.
  [[nodiscard]] std::optional<double> crash_time(ProcId proc) const;
  /// All processors with a registered crash, ascending.
  [[nodiscard]] std::vector<ProcId> crashed_procs() const;
  /// Latest crash time <= horizon; nullopt when no crash occurred yet.
  [[nodiscard]] std::optional<double> latest_crash_before(
      double horizon) const;

  /// Slowdown multiplier (>= 1) in force on `proc` at time `t`.
  [[nodiscard]] double slowdown_factor(ProcId proc, double t) const;

  /// Finish time of a task of `nominal` fault-free duration started at
  /// `start` on `proc`, integrating the slowdown windows piecewise.
  [[nodiscard]] double task_finish(ProcId proc, double start,
                                   double nominal) const;

  /// True when the loss or jitter model perturbs remote messages.
  [[nodiscard]] bool perturbs_messages() const noexcept;

  /// Deterministic fate of the message for graph edge `e` travelling
  /// from processor `from` to processor `to`: a hash of (seed, e, from,
  /// to) seeds a private RNG, so the answer is independent of event
  /// ordering inside the simulator.
  [[nodiscard]] MsgFate msg_fate(graph::EdgeId e, ProcId from,
                                 ProcId to) const;

  /// `.fault` text round trip.
  [[nodiscard]] std::string to_text() const;
  static FaultPlan parse(std::string_view text);

  /// File helpers; throw Error{Io}.
  void save(const std::string& path) const;
  static FaultPlan load(const std::string& path);

 private:
  std::string name_ = "unnamed";
  std::uint64_t seed_ = 1;
  std::vector<CrashFault> crashes_;
  std::vector<SlowdownFault> slowdowns_;
  MsgLossModel msg_loss_;
  MsgDelayModel msg_delay_;
};

/// Scenario helper: a plan whose single crash kills `proc` at time `at`.
FaultPlan plan_crash(ProcId proc, double at, std::uint64_t seed = 1);

/// Scenario helper: crashes the processor carrying the most primary
/// work in `schedule` at `fraction` of the makespan — the most damaging
/// single fail-stop fault for that schedule. Used by the fault-tolerance
/// ablation and the demos.
FaultPlan plan_crash_busiest(const sched::Schedule& schedule, double fraction,
                             std::uint64_t seed = 1);

}  // namespace banger::fault
