#include "fault/fault.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <limits>
#include <sstream>

#include "sched/schedule.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace banger::fault {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double parse_num(std::string_view s, int line) {
  double value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    fail(ErrorCode::Parse, "bad number `" + std::string(s) + "`", {line, 1});
  }
  return value;
}

/// key=value field lookup over whitespace tokens; throws on unknown keys.
struct Fields {
  explicit Fields(const std::vector<std::string_view>& tokens, int line)
      : line_(line) {
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const auto eq = tokens[i].find('=');
      if (eq == std::string_view::npos) {
        fail(ErrorCode::Parse,
             "expected key=value, got `" + std::string(tokens[i]) + "`",
             {line, 1});
      }
      keys_.push_back(tokens[i].substr(0, eq));
      values_.push_back(tokens[i].substr(eq + 1));
    }
  }

  double get(std::string_view key, double fallback = kInf) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == key) return parse_num(values_[i], line_);
    }
    if (fallback == kInf) {
      fail(ErrorCode::Parse, "missing field `" + std::string(key) + "`",
           {line_, 1});
    }
    return fallback;
  }

  void check_known(std::initializer_list<std::string_view> known) const {
    for (const auto& key : keys_) {
      if (std::find(known.begin(), known.end(), key) == known.end()) {
        fail(ErrorCode::Parse, "unknown field `" + std::string(key) + "`",
             {line_, 1});
      }
    }
  }

 private:
  int line_;
  std::vector<std::string_view> keys_;
  std::vector<std::string_view> values_;
};

}  // namespace

bool FaultPlan::empty() const noexcept {
  return crashes_.empty() && slowdowns_.empty() && msg_loss_.prob <= 0.0 &&
         msg_delay_.jitter <= 0.0;
}

void FaultPlan::add_crash(ProcId proc, double at) {
  if (proc < 0) fail(ErrorCode::Machine, "crash on negative processor id");
  if (!(at >= 0)) fail(ErrorCode::Machine, "crash time must be >= 0");
  if (crash_time(proc).has_value()) {
    fail(ErrorCode::Machine, "processor " + std::to_string(proc) +
                                 " already crashes once (fail-stop)");
  }
  crashes_.push_back({proc, at});
}

void FaultPlan::add_slowdown(ProcId proc, double from, double to,
                             double factor) {
  if (proc < 0) fail(ErrorCode::Machine, "slowdown on negative processor id");
  if (!(from >= 0) || !(to > from)) {
    fail(ErrorCode::Machine, "slowdown window must satisfy 0 <= from < to");
  }
  if (!(factor >= 1.0)) {
    fail(ErrorCode::Machine, "slowdown factor must be >= 1");
  }
  slowdowns_.push_back({proc, from, to, factor});
}

void FaultPlan::set_msg_loss(MsgLossModel model) {
  if (!(model.prob >= 0.0) || model.prob >= 1.0) {
    fail(ErrorCode::Machine, "message loss probability must be in [0, 1)");
  }
  if (model.retries < 0) {
    fail(ErrorCode::Machine, "message retries must be >= 0");
  }
  if (!(model.backoff >= 0.0)) {
    fail(ErrorCode::Machine, "message backoff must be >= 0");
  }
  msg_loss_ = model;
}

void FaultPlan::set_msg_delay(MsgDelayModel model) {
  if (!(model.jitter >= 0.0)) {
    fail(ErrorCode::Machine, "message jitter must be >= 0");
  }
  msg_delay_ = model;
}

void FaultPlan::validate(int num_procs) const {
  for (const CrashFault& c : crashes_) {
    if (c.proc >= num_procs) {
      fail(ErrorCode::Machine, "fault plan crashes processor " +
                                   std::to_string(c.proc) + " of " +
                                   std::to_string(num_procs));
    }
  }
  for (const SlowdownFault& s : slowdowns_) {
    if (s.proc >= num_procs) {
      fail(ErrorCode::Machine, "fault plan slows processor " +
                                   std::to_string(s.proc) + " of " +
                                   std::to_string(num_procs));
    }
  }
}

std::optional<double> FaultPlan::crash_time(ProcId proc) const {
  for (const CrashFault& c : crashes_) {
    if (c.proc == proc) return c.at;
  }
  return std::nullopt;
}

std::vector<ProcId> FaultPlan::crashed_procs() const {
  std::vector<ProcId> procs;
  for (const CrashFault& c : crashes_) procs.push_back(c.proc);
  std::sort(procs.begin(), procs.end());
  return procs;
}

std::optional<double> FaultPlan::latest_crash_before(double horizon) const {
  std::optional<double> latest;
  for (const CrashFault& c : crashes_) {
    if (c.at <= horizon && (!latest || c.at > *latest)) latest = c.at;
  }
  return latest;
}

double FaultPlan::slowdown_factor(ProcId proc, double t) const {
  double factor = 1.0;
  for (const SlowdownFault& s : slowdowns_) {
    if (s.proc == proc && s.from <= t && t < s.to) {
      factor = std::max(factor, s.factor);
    }
  }
  return factor;
}

double FaultPlan::task_finish(ProcId proc, double start,
                              double nominal) const {
  if (nominal <= 0) return start;
  double t = start;
  double remaining = nominal;  // fault-free seconds of work left
  for (;;) {
    const double factor = slowdown_factor(proc, t);
    // Next window boundary strictly after t on this processor.
    double boundary = kInf;
    for (const SlowdownFault& s : slowdowns_) {
      if (s.proc != proc) continue;
      if (s.from > t) boundary = std::min(boundary, s.from);
      if (s.to > t) boundary = std::min(boundary, s.to);
    }
    if (boundary == kInf || (boundary - t) / factor >= remaining) {
      return t + remaining * factor;
    }
    remaining -= (boundary - t) / factor;
    t = boundary;
  }
}

bool FaultPlan::perturbs_messages() const noexcept {
  return msg_loss_.prob > 0.0 || msg_delay_.jitter > 0.0;
}

MsgFate FaultPlan::msg_fate(graph::EdgeId e, ProcId from, ProcId to) const {
  // Keyed on (seed, edge, from, to) so the answer does not depend on the
  // order the simulator processes deliveries in.
  std::uint64_t key = seed_;
  key = key * 0x100000001B3ull + static_cast<std::uint64_t>(e) + 1;
  key = key * 0x100000001B3ull +
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) + 1;
  key = key * 0x100000001B3ull +
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(to)) + 1;
  util::Rng rng(key);
  MsgFate fate;
  while (fate.attempts <= msg_loss_.retries && rng.chance(msg_loss_.prob)) {
    ++fate.attempts;
  }
  fate.jitter_fraction = rng.next_double();
  return fate;
}

std::string FaultPlan::to_text() const {
  std::ostringstream out;
  out << "faultplan " << (name_.empty() ? "unnamed" : name_)
      << " seed=" << seed_ << "\n";
  for (const CrashFault& c : crashes_) {
    out << "crash proc=" << c.proc << " at=" << util::format_double(c.at, 17)
        << "\n";
  }
  for (const SlowdownFault& s : slowdowns_) {
    out << "slow proc=" << s.proc << " from=" << util::format_double(s.from, 17)
        << " to=" << util::format_double(s.to, 17)
        << " factor=" << util::format_double(s.factor, 17) << "\n";
  }
  if (msg_loss_.prob > 0.0) {
    out << "msgloss prob=" << util::format_double(msg_loss_.prob, 17)
        << " retries=" << msg_loss_.retries
        << " backoff=" << util::format_double(msg_loss_.backoff, 17) << "\n";
  }
  if (msg_delay_.jitter > 0.0) {
    out << "msgdelay jitter=" << util::format_double(msg_delay_.jitter, 17)
        << "\n";
  }
  return out.str();
}

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  bool have_header = false;
  int lineno = 0;
  for (auto raw : util::split(text, '\n')) {
    ++lineno;
    auto hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    const auto line = util::trim(raw);
    if (line.empty()) continue;
    auto tokens = util::split_ws(line);

    if (tokens[0] == "faultplan") {
      if (have_header) {
        fail(ErrorCode::Parse, "duplicate faultplan header", {lineno, 1});
      }
      if (tokens.size() < 2) {
        fail(ErrorCode::Parse, "expected `faultplan <name> [seed=N]`",
             {lineno, 1});
      }
      plan.name_ = std::string(tokens[1]);
      std::vector<std::string_view> rest(tokens.begin() + 1, tokens.end());
      Fields fields(rest, lineno);
      fields.check_known({"seed"});
      plan.seed_ = static_cast<std::uint64_t>(fields.get("seed", 1.0));
      have_header = true;
      continue;
    }
    if (!have_header) {
      fail(ErrorCode::Parse, "fault directive before faultplan header",
           {lineno, 1});
    }
    Fields fields(tokens, lineno);
    if (tokens[0] == "crash") {
      fields.check_known({"proc", "at"});
      plan.add_crash(static_cast<ProcId>(fields.get("proc")),
                     fields.get("at"));
    } else if (tokens[0] == "slow") {
      fields.check_known({"proc", "from", "to", "factor"});
      plan.add_slowdown(static_cast<ProcId>(fields.get("proc")),
                        fields.get("from"), fields.get("to"),
                        fields.get("factor"));
    } else if (tokens[0] == "msgloss") {
      fields.check_known({"prob", "retries", "backoff"});
      MsgLossModel model;
      model.prob = fields.get("prob");
      model.retries = static_cast<int>(fields.get("retries", 3.0));
      model.backoff = fields.get("backoff", 0.0);
      plan.set_msg_loss(model);
    } else if (tokens[0] == "msgdelay") {
      fields.check_known({"jitter"});
      plan.set_msg_delay({fields.get("jitter")});
    } else {
      fail(ErrorCode::Parse,
           "unknown directive `" + std::string(tokens[0]) + "`", {lineno, 1});
    }
  }
  if (!have_header) {
    fail(ErrorCode::Parse, "missing faultplan header");
  }
  return plan;
}

void FaultPlan::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) fail(ErrorCode::Io, "cannot open `" + path + "` for writing");
  out << to_text();
  if (!out) fail(ErrorCode::Io, "error writing `" + path + "`");
}

FaultPlan FaultPlan::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(ErrorCode::Io, "cannot open `" + path + "` for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

FaultPlan plan_crash(ProcId proc, double at, std::uint64_t seed) {
  FaultPlan plan("crash_p" + std::to_string(proc), seed);
  plan.add_crash(proc, at);
  return plan;
}

FaultPlan plan_crash_busiest(const sched::Schedule& schedule, double fraction,
                             std::uint64_t seed) {
  if (!(fraction >= 0.0)) {
    fail(ErrorCode::Machine, "crash fraction must be >= 0");
  }
  std::vector<double> primary_busy(
      static_cast<std::size_t>(schedule.num_procs()), 0.0);
  for (const sched::Placement& p : schedule.placements()) {
    if (!p.duplicate) {
      primary_busy[static_cast<std::size_t>(p.proc)] += p.length();
    }
  }
  ProcId busiest = 0;
  for (ProcId p = 1; p < schedule.num_procs(); ++p) {
    if (primary_busy[static_cast<std::size_t>(p)] >
        primary_busy[static_cast<std::size_t>(busiest)]) {
      busiest = p;
    }
  }
  return plan_crash(busiest, fraction * schedule.makespan(), seed);
}

}  // namespace banger::fault
