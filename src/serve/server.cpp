#include "serve/server.hpp"

#include <cstdio>
#include <initializer_list>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include "exec/executor.hpp"
#include "exec/stream.hpp"
#include "graph/serialize.hpp"
#include "machine/serialize.hpp"
#include "pits/interp.hpp"
#include "serve/render.hpp"
#include "util/net.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace banger::serve {

namespace {

/// A parsed, validated, flattened design — the unit every design-taking
/// op shares through the cache.
struct DesignArtifact {
  graph::Design design;
  graph::FlattenResult flat;
};

// Unit separator: cannot appear in JSON string payloads' semantics, so
// joined cache keys never collide across field boundaries.
constexpr char kSep = '\x1f';

std::string join_key(std::initializer_list<std::string_view> parts) {
  std::string key;
  for (const auto part : parts) {
    key += part;
    key += kSep;
  }
  return key;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::shared_ptr<const DesignArtifact> design_artifact(
    ArtifactCache& cache, const std::string& text) {
  const CacheKey key{"design", util::fnv1a64(text)};
  return cache.get_or_build<DesignArtifact>(key, [&] {
    graph::Design design = graph::parse_design(text);
    design.validate();
    graph::FlattenResult flat = design.flatten();
    return std::make_shared<const DesignArtifact>(
        DesignArtifact{std::move(design), std::move(flat)});
  });
}

std::shared_ptr<const machine::Machine> machine_artifact(
    ArtifactCache& cache, const std::string& text) {
  const CacheKey key{"machine", util::fnv1a64(text)};
  return cache.get_or_build<machine::Machine>(key, [&] {
    return std::make_shared<const machine::Machine>(
        machine::parse_machine(text));
  });
}

std::shared_ptr<const sched::Schedule> schedule_artifact(
    ArtifactCache& cache, const std::string& design_text,
    const std::string& machine_text, const std::string& heuristic,
    const DesignArtifact& design, const machine::Machine& machine) {
  const CacheKey key{
      "schedule",
      util::fnv1a64(join_key({design_text, machine_text, heuristic}))};
  return cache.get_or_build<sched::Schedule>(key, [&] {
    const auto scheduler = sched::make_scheduler(heuristic);
    sched::Schedule schedule = scheduler->run(design.flat.graph, machine);
    schedule.validate(design.flat.graph, machine);
    return std::make_shared<const sched::Schedule>(std::move(schedule));
  });
}

}  // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)), cache_(options_.cache_capacity) {
  if (options_.max_inflight < 1) options_.max_inflight = 1;
  if (options_.recorder != nullptr) {
    rec_ = options_.recorder;
  } else {
    own_rec_.emplace();
    rec_ = &*own_rec_;
  }
  clock_ = options_.clock ? options_.clock
                          : std::function<double()>(
                                [this] { return rec_->wall_now(); });
}

bool Server::try_acquire_slot() {
  int current = inflight_.load();
  while (current < options_.max_inflight) {
    if (inflight_.compare_exchange_weak(current, current + 1)) return true;
  }
  return false;
}

void Server::release_slot() { inflight_.fetch_sub(1); }

std::string Server::resolve(const Request& req, bool want_machine) const {
  if (want_machine) {
    if (!req.machine.empty()) return req.machine;
    if (!req.machine_ref.empty()) {
      return sessions_.get(req.machine_ref, "machine").text;
    }
    fail(ErrorCode::Usage,
         "op `" + req.op + "` needs `machine` text or a `machine_ref`");
  }
  if (!req.design.empty()) return req.design;
  if (!req.design_ref.empty()) {
    return sessions_.get(req.design_ref, "design").text;
  }
  fail(ErrorCode::Usage,
       "op `" + req.op + "` needs `design` text or a `design_ref`");
}

Server::Rendered Server::respond(const Request& req) {
  if (req.op == "schedule") {
    const std::string design_text = resolve(req, false);
    const std::string machine_text = resolve(req, true);
    const std::string format = req.format.empty() ? "gantt" : req.format;
    if (format != "gantt" && format != "table" && format != "svg" &&
        format != "trace") {
      fail(ErrorCode::Usage, "unknown schedule format `" + format + "`");
    }
    const CacheKey key{
        "response", util::fnv1a64(join_key({"schedule", design_text,
                                            machine_text, req.scheduler,
                                            format}))};
    const auto rendered = cache_.get_or_build<Rendered>(key, [&] {
      const auto design = design_artifact(cache_, design_text);
      const auto machine = machine_artifact(cache_, machine_text);
      const auto schedule =
          schedule_artifact(cache_, design_text, machine_text, req.scheduler,
                            *design, *machine);
      const ScheduleRender r =
          render_schedule(*schedule, design->flat.graph, *machine, format);
      return std::make_shared<const Rendered>(
          Rendered{r.artifact + r.trailer, 0});
    });
    return *rendered;
  }

  if (req.op == "trial") {
    if (!req.machine.empty() || !req.machine_ref.empty()) {
      fail(ErrorCode::Usage,
           "op `trial` runs sequentially; it does not take a machine");
    }
    const std::string design_text = resolve(req, false);
    const auto engine_of = [&req] {
      exec::RunOptions run_opts;
      if (req.engine == "vm") {
        run_opts.pits.engine = pits::ExecOptions::Engine::Vm;
      } else if (req.engine == "walk") {
        run_opts.pits.engine = pits::ExecOptions::Engine::Walk;
      }
      return run_opts;
    };
    if (req.has_inputs_batch) {
      // Batch envelope: the whole batch is one request — one admission
      // slot, one cache entry keyed over every trial's inputs in order.
      std::string inputs_key;
      for (const auto& trial : req.inputs_batch) {
        for (const auto& [var, expr] : trial) {
          inputs_key += var;
          inputs_key += '=';
          inputs_key += expr;
          inputs_key += kSep;
        }
        inputs_key += kSep;  // trial boundary
      }
      const CacheKey key{
          "response",
          util::fnv1a64(join_key({"trial_batch", design_text, req.engine}) +
                        inputs_key)};
      const auto rendered = cache_.get_or_build<Rendered>(key, [&] {
        const auto design = design_artifact(cache_, design_text);
        std::vector<std::map<std::string, pits::Value>> inputs;
        inputs.reserve(req.inputs_batch.size());
        for (const auto& trial : req.inputs_batch) {
          auto& values = inputs.emplace_back();
          for (const auto& [var, expr] : trial) {
            values[var] = pits::eval_expression(expr, {});
          }
        }
        // jobs=1: concurrency belongs to the request loop, not inside a
        // single cached build (which would multiply threads per slot).
        const auto outcomes =
            exec::run_trials(design->flat, inputs, engine_of(), /*jobs=*/1);
        const TrialBatchRender r = render_trial_batch(outcomes);
        return std::make_shared<const Rendered>(
            Rendered{r.text, r.exit_code});
      });
      return *rendered;
    }
    std::string inputs_key;
    for (const auto& [var, expr] : req.inputs) {
      inputs_key += var;
      inputs_key += '=';
      inputs_key += expr;
      inputs_key += kSep;
    }
    const CacheKey key{
        "response",
        util::fnv1a64(join_key({"trial", design_text, req.engine}) +
                      inputs_key)};
    const auto rendered = cache_.get_or_build<Rendered>(key, [&] {
      const auto design = design_artifact(cache_, design_text);
      std::map<std::string, pits::Value> inputs;
      for (const auto& [var, expr] : req.inputs) {
        inputs[var] = pits::eval_expression(expr, {});
      }
      const auto result =
          exec::run_sequential(design->flat, inputs, engine_of());
      return std::make_shared<const Rendered>(
          Rendered{render_run_result(result, /*include_wall=*/false), 0});
    });
    return *rendered;
  }

  if (req.op == "stream") {
    if (!req.has_inputs_stream) {
      fail(ErrorCode::Usage,
           "op `stream` needs an `inputs_stream` array of batches");
    }
    const std::string design_text = resolve(req, false);
    const std::string machine_text = resolve(req, true);
    std::string inputs_key;
    for (const auto& batch : req.inputs_stream) {
      for (const auto& [var, expr] : batch) {
        inputs_key += var;
        inputs_key += '=';
        inputs_key += expr;
        inputs_key += kSep;
      }
      inputs_key += kSep;  // batch boundary
    }
    const CacheKey key{
        "response",
        util::fnv1a64(join_key({"stream", design_text, machine_text,
                                req.scheduler, req.engine}) +
                      inputs_key)};
    const auto rendered = cache_.get_or_build<Rendered>(key, [&] {
      const auto design = design_artifact(cache_, design_text);
      const auto machine = machine_artifact(cache_, machine_text);
      const auto schedule =
          schedule_artifact(cache_, design_text, machine_text, req.scheduler,
                            *design, *machine);
      std::vector<std::map<std::string, pits::Value>> batches;
      batches.reserve(req.inputs_stream.size());
      for (const auto& batch : req.inputs_stream) {
        auto& values = batches.emplace_back();
        for (const auto& [var, expr] : batch) {
          values[var] = pits::eval_expression(expr, {});
        }
      }
      exec::StreamOptions stream_opts;
      if (req.engine == "vm") {
        stream_opts.run.pits.engine = pits::ExecOptions::Engine::Vm;
      } else if (req.engine == "walk") {
        stream_opts.run.pits.engine = pits::ExecOptions::Engine::Walk;
      }
      // jobs=1: concurrency belongs to the request loop, not inside a
      // single cached build. One thread drives every lane cooperatively;
      // outputs are identical for any value.
      stream_opts.jobs = 1;
      const exec::StreamResult result = exec::run_stream(
          design->flat, *schedule, *machine, batches, stream_opts);
      // Only the deterministic per-batch text enters the response (the
      // timing-laden execution report lands on the metrics recorder).
      const TrialBatchRender r = render_stream_batches(result.outcomes);
      return std::make_shared<const Rendered>(Rendered{r.text, r.exit_code});
    });
    return *rendered;
  }

  if (req.op == "check") {
    const std::string design_text = resolve(req, false);
    const std::string format = req.format.empty() ? "text" : req.format;
    if (format != "text" && format != "json" && format != "sarif") {
      fail(ErrorCode::Usage, "unknown check format `" + format + "`");
    }
    const std::string file =
        !req.file.empty() ? req.file
        : !req.design_ref.empty() ? req.design_ref
                                  : std::string("<design>");
    const CacheKey key{
        "response", util::fnv1a64(join_key(
                        {"check", design_text, format, req.fail_on, file}))};
    const auto rendered = cache_.get_or_build<Rendered>(key, [&] {
      const auto design = design_artifact(cache_, design_text);
      const CheckRender r =
          render_check(design->design, format, req.fail_on, file);
      return std::make_shared<const Rendered>(Rendered{
          r.text, r.exit_code, /*has_summary=*/true, r.errors, r.warnings,
          r.notes});
    });
    return *rendered;
  }

  if (req.op == "trace") {
    const std::string design_text = resolve(req, false);
    const std::string machine_text = resolve(req, true);
    const CacheKey key{
        "response",
        util::fnv1a64(join_key({"trace", design_text, machine_text,
                                req.scheduler,
                                req.contention ? "1" : "0"}))};
    const auto rendered = cache_.get_or_build<Rendered>(key, [&] {
      const auto design = design_artifact(cache_, design_text);
      const auto machine = machine_artifact(cache_, machine_text);
      sim::SimOptions sim_opts;
      sim_opts.link_contention = req.contention;
      // A private recorder inside render_trace keeps the artifact free
      // of other requests' events — the reason the ambient recorder is
      // thread-local.
      const TraceRender r =
          render_trace(design->flat.graph, *machine, req.scheduler, sim_opts,
                       /*plan=*/nullptr, /*reuse=*/nullptr);
      return std::make_shared<const Rendered>(Rendered{r.artifact, 0});
    });
    return *rendered;
  }

  fail(ErrorCode::Usage,
       "unknown op `" + req.op +
           "` (ping|upload|schedule|trial|stream|check|trace|stats|shutdown)");
}

Json Server::dispatch(const Request& req) {
  if (req.op == "ping") {
    Json r = ok_envelope(req.id, req.op, 0);
    r.add("output", Json::string("pong"));
    return r;
  }

  if (req.op == "shutdown") {
    request_shutdown();
    Json r = ok_envelope(req.id, req.op, 0);
    r.add("output", Json::string("shutting down"));
    return r;
  }

  if (req.op == "upload") {
    if (req.name.empty()) {
      fail(ErrorCode::Usage, "op `upload` needs a `name`");
    }
    if (req.kind != "design" && req.kind != "machine") {
      fail(ErrorCode::Usage,
           "op `upload` needs `kind` of `design` or `machine`, got `" +
               req.kind + "`");
    }
    if (req.text.empty()) {
      fail(ErrorCode::Usage, "op `upload` needs the payload in `text`");
    }
    // Validate (and warm the cache) before storing: a payload that does
    // not parse must never become referenceable.
    if (req.kind == "design") {
      design_artifact(cache_, req.text);
    } else {
      machine_artifact(cache_, req.text);
    }
    const std::uint64_t hash = sessions_.put(req.name, req.kind, req.text);
    Json r = ok_envelope(req.id, req.op, 0);
    r.add("name", Json::string(req.name));
    r.add("kind", Json::string(req.kind));
    r.add("hash", Json::string(hex64(hash)));
    return r;
  }

  if (req.op == "stats") {
    Json r = ok_envelope(req.id, req.op, 0);
    Json stats = Json::object();
    const ArtifactCache::Stats cs = cache_.stats();
    Json cache = Json::object();
    cache.add("hits", Json::number(static_cast<double>(cs.hits)));
    cache.add("misses", Json::number(static_cast<double>(cs.misses)));
    cache.add("evictions", Json::number(static_cast<double>(cs.evictions)));
    cache.add("entries", Json::number(static_cast<double>(cs.entries)));
    cache.add("capacity",
              Json::number(static_cast<double>(cache_.capacity())));
    stats.add("cache", std::move(cache));
    stats.add("sessions",
              Json::number(static_cast<double>(sessions_.size())));
    stats.add("inflight", Json::number(inflight_.load()));
    Json metrics = Json::object();
    for (const auto& [name, value] : rec_->metrics_snapshot()) {
      metrics.add(name, Json::number(value));
    }
    stats.add("metrics", std::move(metrics));
    r.add("stats", std::move(stats));
    return r;
  }

  const Rendered rendered = respond(req);
  Json r = ok_envelope(req.id, req.op, rendered.exit_code);
  r.add("output", Json::string(rendered.output));
  if (rendered.has_summary) {
    // Machine-readable severity counts: clients branch on these instead
    // of parsing the "N error(s), M warning(s)" text trailer.
    Json summary = Json::object();
    summary.add("errors", Json::number(static_cast<double>(rendered.errors)));
    summary.add("warnings",
                Json::number(static_cast<double>(rendered.warnings)));
    summary.add("notes", Json::number(static_cast<double>(rendered.notes)));
    r.add("summary", std::move(summary));
  }
  return r;
}

std::string Server::handle_line(const std::string& line) {
  return handle_line(line, now());
}

std::string Server::handle_line(const std::string& line, double arrival) {
  // Handlers may run on pool workers or foreign threads; make the
  // service recorder ambient so every instrumented layer underneath
  // (scheduler, executor, cache) lands its counters here.
  obs::ScopedRecorder scope(*rec_);
  Json id;
  std::string op;
  try {
    const Json doc = Json::parse(line);
    const Request req = parse_request(doc);
    id = req.id;
    op = req.op;
    rec_->bump("serve.requests");
    if (options_.deadline_ms > 0) {
      const double waited_ms = (now() - arrival) * 1000.0;
      if (waited_ms > options_.deadline_ms) {
        rec_->bump("serve.shed");
        return error_response(
                   id, op, "limit",
                   "deadline exceeded: request waited " +
                       obs::json_number(waited_ms) + " ms (deadline " +
                       std::to_string(options_.deadline_ms) + " ms)",
                   1)
            .dump();
      }
    }
    const double start = rec_->wall_now();
    Json resp = dispatch(req);
    rec_->span(obs::Domain::Wall, obs::kTrackServe, 0, start,
               rec_->wall_now(), "serve." + op, "serve", "");
    rec_->bump("serve.ok");
    return resp.dump();
  } catch (const Error& e) {
    rec_->bump("serve.errors");
    return error_response(id, op, e).dump();
  } catch (const std::exception& e) {
    rec_->bump("serve.errors");
    return error_response(id, op, "error", e.what(), 1).dump();
  }
}

int Server::serve_stream(std::istream& in, std::ostream& out) {
  obs::ScopedRecorder scope(*rec_);
  // The pool is constructed under the installed recorder, so workers
  // adopt it as their ambient too.
  util::ThreadPool pool(options_.jobs);

  // Responses leave in request order no matter which worker finishes
  // first: each request gets a sequence number at read time and a
  // reorder buffer drains contiguously.
  std::mutex emit_mu;
  std::map<std::uint64_t, std::string> done;
  std::uint64_t next_emit = 0;
  auto emit = [&](std::uint64_t seq, std::string response) {
    std::lock_guard<std::mutex> lock(emit_mu);
    done.emplace(seq, std::move(response));
    for (auto it = done.find(next_emit); it != done.end();
         it = done.find(next_emit)) {
      out << it->second << '\n';
      out.flush();
      done.erase(it);
      ++next_emit;
    }
  };

  std::string line;
  std::uint64_t seq = 0;
  bool stop = false;
  while (!stop && !shutdown_requested() && std::getline(in, line)) {
    if (line.empty()) continue;
    const std::uint64_t s = seq++;

    // Best-effort sniff of id/op so overload shedding and shutdown can
    // answer without occupying a worker; malformed lines still go to a
    // worker for the full diagnostic envelope.
    Json id;
    std::string op;
    try {
      const Json doc = Json::parse(line);
      if (const Json* found = doc.find("op"); found && found->is_string()) {
        op = found->as_string();
      }
      if (const Json* found = doc.find("id")) id = *found;
    } catch (const Error&) {
    }

    if (op == "shutdown") {
      emit(s, handle_line(line));
      stop = true;
      continue;
    }

    if (!try_acquire_slot()) {
      rec_->bump("serve.requests");
      rec_->bump("serve.shed");
      emit(s, error_response(id, op, "limit",
                             "server overloaded: " +
                                 std::to_string(options_.max_inflight) +
                                 " requests already in flight",
                             1)
                  .dump());
      continue;
    }

    const double arrival = now();
    pool.submit([this, s, line, arrival, &emit] {
      std::string response = handle_line(line, arrival);
      release_slot();
      emit(s, std::move(response));
    });
  }
  pool.wait_idle();
  return 0;
}

int Server::serve_tcp(int port, std::ostream& log) {
  const int listen_fd = util::tcp_listen(port);
  bound_port_.store(util::tcp_local_port(listen_fd));
  log << "banger serve: listening on 127.0.0.1:" << bound_port_.load()
      << "\n";
  log.flush();

  std::vector<std::thread> connections;
  while (!shutdown_requested()) {
    const int fd = util::tcp_accept(listen_fd, /*timeout_ms=*/100);
    if (fd < 0) continue;  // timeout: re-check the shutdown flag
    connections.emplace_back([this, fd] {
      util::FdStreamBuf buf(fd);
      std::iostream io(&buf);
      serve_stream(io, io);
      io.flush();
      util::close_fd(fd);
    });
  }
  for (std::thread& t : connections) t.join();
  util::close_fd(listen_fd);
  bound_port_.store(-1);
  return 0;
}

}  // namespace banger::serve
