// banger/serve/cache.hpp
//
// Content-hashed artifact cache. Generalizes the `call_once` compiled-
// Program cache in the PITS VM: any derived artifact (parsed graph,
// machine, schedule, rendered response, ...) is keyed by the FNV-1a
// hash of the bytes that produced it, built exactly once even under
// concurrent lookups (single-flight via shared_future), and evicted in
// least-recently-used order once the entry cap is exceeded.
//
// Entries are immutable once built — the cache hands out
// shared_ptr<const T>, so hits on every thread share one artifact.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/trace.hpp"
#include "util/strings.hpp"

namespace banger::serve {

/// Key for a cached artifact: the artifact kind (e.g. "graph",
/// "response") plus the content hash of everything the build depends
/// on. Mixing the kind into the map key keeps identical payloads with
/// different derivations (a graph vs. its schedule) distinct.
struct CacheKey {
  std::string kind;
  std::uint64_t hash = 0;

  [[nodiscard]] bool operator==(const CacheKey& o) const {
    return hash == o.hash && kind == o.kind;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept {
    return static_cast<std::size_t>(
        util::fnv1a64(k.kind, util::kFnvOffsetBasis ^ k.hash));
  }
};

class ArtifactCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };

  explicit ArtifactCache(std::size_t capacity = 256);

  /// Returns the artifact for `key`, building it with `build` on a
  /// miss. Concurrent callers for the same key share one build
  /// (single-flight); if the build throws, the entry is removed and the
  /// exception propagates to every waiter, so a later request retries.
  template <typename T>
  std::shared_ptr<const T> get_or_build(
      const CacheKey& key, const std::function<std::shared_ptr<const T>()>& build) {
    auto erased = lookup(key, [&]() -> std::shared_ptr<const void> {
      return std::static_pointer_cast<const void>(build());
    });
    return std::static_pointer_cast<const T>(erased);
  }

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const void>> artifact;
    bool ready = false;  // future resolved successfully; safe to evict
    std::list<CacheKey>::iterator lru;
  };

  std::shared_ptr<const void> lookup(
      const CacheKey& key,
      const std::function<std::shared_ptr<const void>()>& build);

  void note(const char* which, const std::string& kind) const;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> entries_;
  std::list<CacheKey> lru_;  // front = most recently used
  Stats stats_;
};

}  // namespace banger::serve
