// banger/serve/protocol.hpp
//
// Wire protocol for `banger serve`: newline-delimited JSON, one request
// object per line, one response object per line, in request order.
//
// Request:  {"id": <any>, "op": "schedule", "design": "...", ...}
// Success:  {"id": <echo>, "op": "schedule", "ok": true, "exit": 0,
//            "output": "..."}
// Failure:  {"id": <echo>, "op": "schedule", "ok": false, "exit": 2,
//            "error": {"code": "usage", "message": "...",
//                      "line": 3, "column": 7}}   (position when known)
//
// Field order is fixed so responses are byte-stable and diffable against
// committed golden corpora. Unknown request fields are rejected with a
// usage error rather than ignored — a typo'd option must not silently
// change meaning.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "serve/json.hpp"
#include "util/error.hpp"

namespace banger::serve {

struct Request {
  Json id;          ///< echoed verbatim in the response (defaults to null)
  std::string op;   ///< ping|upload|schedule|trial|stream|check|trace|stats|shutdown
  std::string design;       ///< inline `.pitl` text
  std::string design_ref;   ///< or: name of an uploaded design
  std::string machine;      ///< inline `.machine` text
  std::string machine_ref;  ///< or: name of an uploaded machine
  std::string scheduler = "mh";
  std::string format;           ///< op-specific default; validated per op
  std::string fail_on = "error";
  std::string file;             ///< file label stamped into check diagnostics
  std::string engine = "auto";  ///< trial: auto|vm|walk
  std::string name;             ///< upload: session name
  std::string kind;             ///< upload: design|machine
  std::string text;             ///< upload: payload text
  std::map<std::string, std::string> inputs;  ///< trial: store -> PITS expr
  /// trial batch envelope: one store -> expr object per trial, executed
  /// in order by a single request (one cache entry, one admission slot).
  /// Mutually exclusive with `inputs`.
  std::vector<std::map<std::string, std::string>> inputs_batch;
  bool has_inputs_batch = false;  ///< `inputs_batch` key present (may be [])
  /// stream envelope: one store -> expr object per batch, streamed in
  /// order through the pipeline executor by a single request. Mutually
  /// exclusive with `inputs` and `inputs_batch`.
  std::vector<std::map<std::string, std::string>> inputs_stream;
  bool has_inputs_stream = false;  ///< `inputs_stream` key present (may be [])
  bool contention = false;      ///< trace: per-link queueing
};

/// Parses and validates one request object. Throws Error{Usage} on
/// unknown fields / wrong types, Error{Parse} never (caller parses).
Request parse_request(const Json& doc);

/// Success envelope; op-specific members are appended by the caller.
Json ok_envelope(const Json& id, const std::string& op, int exit_code);

/// Failure envelope from a banger::Error (position included when known).
Json error_response(const Json& id, const std::string& op, const Error& e);

/// Failure envelope with an explicit code string ("limit" for admission
/// control, "error" for unclassified failures).
Json error_response(const Json& id, const std::string& op,
                    const std::string& code, const std::string& message,
                    int exit_code);

}  // namespace banger::serve
