#include "serve/json.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace banger::serve {

namespace {

// Recursive-descent parser with line/column tracking so malformed
// requests report a position, matching the PITL parser's diagnostics.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    banger::fail(ErrorCode::Parse, "json: " + what, {line_, column_});
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  char next() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_ws() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      next();
    }
  }

  void expect(char c) {
    if (at_end() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    next();
  }

  Json parse_value() {
    skip_ws();
    if (at_end()) fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::string(parse_string());
      case 't': parse_literal("true"); return Json::boolean(true);
      case 'f': parse_literal("false"); return Json::boolean(false);
      case 'n': parse_literal("null"); return Json();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  void parse_literal(std::string_view lit) {
    for (char c : lit) {
      if (at_end() || peek() != c) fail("invalid literal");
      next();
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') next();
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      next();
    }
    if (!at_end() && peek() == '.') {
      next();
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        next();
      }
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      next();
      if (!at_end() && (peek() == '+' || peek() == '-')) next();
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        next();
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') fail("invalid number");
    return Json::number(v);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (at_end()) fail("unterminated string");
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) fail("unterminated escape");
      const char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (at_end()) fail("unterminated \\u escape");
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the code point; surrogate pairs are not
          // needed for the protocol (payloads are .pitl/ASCII text).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Json parse_array() {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (!at_end() && peek() == ']') {
      next();
      return out;
    }
    for (;;) {
      out.push(parse_value());
      skip_ws();
      if (at_end()) fail("unterminated array");
      const char c = next();
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  Json parse_object() {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (!at_end() && peek() == '}') {
      next();
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.add(std::move(key), parse_value());
      skip_ws();
      if (at_end()) fail("unterminated object");
      const char c = next();
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

void dump_to(const Json& v, std::ostream& out) {
  switch (v.kind()) {
    case Json::Kind::Null: out << "null"; break;
    case Json::Kind::Bool: out << (v.as_bool() ? "true" : "false"); break;
    case Json::Kind::Number: out << obs::json_number(v.as_number()); break;
    case Json::Kind::String:
      out << '"' << obs::json_escape(v.as_string()) << '"';
      break;
    case Json::Kind::Array: {
      out << '[';
      bool first = true;
      for (const Json& e : v.as_array()) {
        if (!first) out << ',';
        first = false;
        dump_to(e, out);
      }
      out << ']';
      break;
    }
    case Json::Kind::Object: {
      out << '{';
      bool first = true;
      for (const auto& [key, value] : v.as_object()) {
        if (!first) out << ',';
        first = false;
        out << '"' << obs::json_escape(key) << "\":";
        dump_to(value, out);
      }
      out << '}';
      break;
    }
  }
}

}  // namespace

Json Json::boolean(bool v) {
  Json j;
  j.kind_ = Kind::Bool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::Number;
  j.number_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.kind_ = Kind::String;
  j.str_ = std::move(v);
  return j;
}

Json Json::array(Array v) {
  Json j;
  j.kind_ = Kind::Array;
  j.arr_ = std::move(v);
  return j;
}

Json Json::object(Object v) {
  Json j;
  j.kind_ = Kind::Object;
  j.obj_ = std::move(v);
  return j;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::add(std::string key, Json value) {
  kind_ = Kind::Object;
  obj_.emplace_back(std::move(key), std::move(value));
}

void Json::push(Json value) {
  kind_ = Kind::Array;
  arr_.push_back(std::move(value));
}

std::string Json::dump() const {
  std::ostringstream out;
  dump_to(*this, out);
  return out.str();
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace banger::serve
