#include "serve/session.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace banger::serve {

std::uint64_t SessionStore::put(const std::string& name,
                                const std::string& kind,
                                const std::string& text) {
  const std::uint64_t hash = util::fnv1a64(text);
  std::lock_guard<std::mutex> lock(mu_);
  entries_[name] = SessionEntry{kind, text, hash};
  return hash;
}

SessionEntry SessionStore::get(const std::string& name,
                               const std::string& kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    fail(ErrorCode::Name, "unknown session name '" + name +
                              "'; upload it first with {\"op\":\"upload\"}");
  }
  if (it->second.kind != kind) {
    fail(ErrorCode::Type, "session '" + name + "' holds a " +
                              it->second.kind + ", not a " + kind);
  }
  return it->second;
}

std::size_t SessionStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace banger::serve
