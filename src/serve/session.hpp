// banger/serve/session.hpp
//
// Named payload store for multi-tenant sessions. A client uploads a
// design or machine once (`{"op":"upload","name":"lu","kind":"design",
// "text":"..."}`) and later requests reference it by name instead of
// resending the text. The store only keeps raw text plus its content
// hash — parsing and schedule derivation stay in the ArtifactCache, so
// two clients uploading identical text under different names still
// share every derived artifact.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace banger::serve {

struct SessionEntry {
  std::string kind;  // "design" | "machine"
  std::string text;
  std::uint64_t hash = 0;
};

class SessionStore {
 public:
  /// Inserts or replaces a named payload; returns its content hash.
  std::uint64_t put(const std::string& name, const std::string& kind,
                    const std::string& text);

  /// Looks up a named payload. Throws Error{Name} when `name` is
  /// unknown and Error{Type} when it holds the wrong kind.
  [[nodiscard]] SessionEntry get(const std::string& name,
                                 const std::string& kind) const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, SessionEntry> entries_;
};

}  // namespace banger::serve
