#include "serve/cache.hpp"

#include <algorithm>
#include <utility>

namespace banger::serve {

ArtifactCache::ArtifactCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

void ArtifactCache::note(const char* which, const std::string& kind) const {
  if (obs::TraceRecorder* rec = obs::current()) {
    rec->bump("serve.cache." + kind + "." + which);
  }
}

std::shared_ptr<const void> ArtifactCache::lookup(
    const CacheKey& key,
    const std::function<std::shared_ptr<const void>()>& build) {
  std::promise<std::shared_ptr<const void>> promise;
  std::shared_future<std::shared_ptr<const void>> future;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      future = it->second.artifact;
    } else {
      ++stats_.misses;
      builder = true;
      future = promise.get_future().share();
      lru_.push_front(key);
      entries_.emplace(key, Entry{future, false, lru_.begin()});
      // Evict from the cold end, skipping entries still being built —
      // their builder thread will mark them ready (or erase them).
      while (entries_.size() > capacity_) {
        bool evicted = false;
        for (auto victim = lru_.rbegin(); victim != lru_.rend(); ++victim) {
          auto vit = entries_.find(*victim);
          if (vit == entries_.end() || !vit->second.ready) continue;
          lru_.erase(vit->second.lru);
          entries_.erase(vit);
          ++stats_.evictions;
          evicted = true;
          break;
        }
        if (!evicted) break;  // everything in flight; allow the overshoot
      }
    }
  }
  note(builder ? "miss" : "hit", key.kind);

  if (!builder) return future.get();

  try {
    std::shared_ptr<const void> artifact = build();
    promise.set_value(artifact);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) it->second.ready = true;
    return artifact;
  } catch (...) {
    promise.set_exception(std::current_exception());
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        lru_.erase(it->second.lru);
        entries_.erase(it);
      }
    }
    throw;
  }
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = entries_.size();
  return s;
}

}  // namespace banger::serve
