#include "serve/protocol.hpp"

#include "obs/trace.hpp"

namespace banger::serve {

namespace {

[[noreturn]] void usage(const std::string& message) {
  fail(ErrorCode::Usage, message);
}

std::string expect_string(const std::string& key, const Json& v) {
  if (!v.is_string()) {
    usage("request field `" + key + "` expects a string");
  }
  return v.as_string();
}

bool expect_bool(const std::string& key, const Json& v) {
  if (v.kind() != Json::Kind::Bool) {
    usage("request field `" + key + "` expects true or false");
  }
  return v.as_bool();
}

/// One VAR -> EXPR binding object (the `inputs` shape, also each
/// element of `inputs_batch`).
std::map<std::string, std::string> parse_inputs_object(const Json& value) {
  std::map<std::string, std::string> out;
  for (const auto& [var, expr] : value.as_object()) {
    if (expr.is_string()) {
      out[var] = expr.as_string();
    } else if (expr.kind() == Json::Kind::Number) {
      out[var] = obs::json_number(expr.as_number());
    } else {
      usage("input `" + var + "` expects a string expression or number");
    }
  }
  return out;
}

}  // namespace

Request parse_request(const Json& doc) {
  if (!doc.is_object()) {
    usage("request must be a JSON object");
  }
  Request req;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "id") {
      req.id = value;
    } else if (key == "op") {
      req.op = expect_string(key, value);
    } else if (key == "design") {
      req.design = expect_string(key, value);
    } else if (key == "design_ref") {
      req.design_ref = expect_string(key, value);
    } else if (key == "machine") {
      req.machine = expect_string(key, value);
    } else if (key == "machine_ref") {
      req.machine_ref = expect_string(key, value);
    } else if (key == "scheduler") {
      req.scheduler = expect_string(key, value);
    } else if (key == "format") {
      req.format = expect_string(key, value);
    } else if (key == "fail_on") {
      req.fail_on = expect_string(key, value);
      if (req.fail_on != "warning" && req.fail_on != "error") {
        usage("request field `fail_on` expects `warning` or `error`, got `" +
              req.fail_on + "`");
      }
    } else if (key == "file") {
      req.file = expect_string(key, value);
    } else if (key == "engine") {
      req.engine = expect_string(key, value);
      if (req.engine != "auto" && req.engine != "vm" &&
          req.engine != "walk") {
        usage("request field `engine` expects `auto`, `vm` or `walk`, got `" +
              req.engine + "`");
      }
    } else if (key == "name") {
      req.name = expect_string(key, value);
    } else if (key == "kind") {
      req.kind = expect_string(key, value);
    } else if (key == "text") {
      req.text = expect_string(key, value);
    } else if (key == "contention") {
      req.contention = expect_bool(key, value);
    } else if (key == "inputs") {
      if (!value.is_object()) {
        usage("request field `inputs` expects an object of VAR -> EXPR");
      }
      req.inputs = parse_inputs_object(value);
    } else if (key == "inputs_batch") {
      if (value.kind() != Json::Kind::Array) {
        usage("request field `inputs_batch` expects an array of "
              "VAR -> EXPR objects");
      }
      req.has_inputs_batch = true;
      for (const Json& trial : value.as_array()) {
        if (!trial.is_object()) {
          usage("each `inputs_batch` entry expects an object of "
                "VAR -> EXPR");
        }
        req.inputs_batch.push_back(parse_inputs_object(trial));
      }
    } else if (key == "inputs_stream") {
      if (value.kind() != Json::Kind::Array) {
        usage("request field `inputs_stream` expects an array of "
              "VAR -> EXPR objects");
      }
      req.has_inputs_stream = true;
      for (const Json& batch : value.as_array()) {
        if (!batch.is_object()) {
          usage("each `inputs_stream` entry expects an object of "
                "VAR -> EXPR");
        }
        req.inputs_stream.push_back(parse_inputs_object(batch));
      }
    } else {
      usage("unknown request field `" + key + "`");
    }
  }
  if (req.op.empty()) {
    usage("request needs an `op` field "
          "(ping|upload|schedule|trial|stream|check|trace|stats|shutdown)");
  }
  if (!req.design.empty() && !req.design_ref.empty()) {
    usage("give either `design` or `design_ref`, not both");
  }
  if (!req.machine.empty() && !req.machine_ref.empty()) {
    usage("give either `machine` or `machine_ref`, not both");
  }
  if (!req.inputs.empty() && req.has_inputs_batch) {
    usage("give either `inputs` or `inputs_batch`, not both");
  }
  if (req.has_inputs_stream && (!req.inputs.empty() || req.has_inputs_batch)) {
    usage("give either `inputs`, `inputs_batch`, or `inputs_stream`, "
          "not several");
  }
  return req;
}

Json ok_envelope(const Json& id, const std::string& op, int exit_code) {
  Json resp = Json::object();
  resp.add("id", id);
  resp.add("op", Json::string(op));
  resp.add("ok", Json::boolean(true));
  resp.add("exit", Json::number(exit_code));
  return resp;
}

Json error_response(const Json& id, const std::string& op, const Error& e) {
  Json resp = Json::object();
  resp.add("id", id);
  resp.add("op", Json::string(op));
  resp.add("ok", Json::boolean(false));
  resp.add("exit",
           Json::number(e.code() == ErrorCode::Usage ? 2 : 1));
  Json err = Json::object();
  err.add("code", Json::string(std::string(to_string(e.code()))));
  err.add("message", Json::string(e.message()));
  if (e.pos().valid()) {
    err.add("line", Json::number(e.pos().line));
    err.add("column", Json::number(e.pos().column));
  }
  resp.add("error", std::move(err));
  return resp;
}

Json error_response(const Json& id, const std::string& op,
                    const std::string& code, const std::string& message,
                    int exit_code) {
  Json resp = Json::object();
  resp.add("id", id);
  resp.add("op", Json::string(op));
  resp.add("ok", Json::boolean(false));
  resp.add("exit", Json::number(exit_code));
  Json err = Json::object();
  err.add("code", Json::string(code));
  err.add("message", Json::string(message));
  resp.add("error", std::move(err));
  return resp;
}

}  // namespace banger::serve
