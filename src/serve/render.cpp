#include "serve/render.hpp"

#include <optional>

#include "analyze/analyze.hpp"
#include "core/recovery.hpp"
#include "util/strings.hpp"
#include "viz/charts.hpp"
#include "viz/gantt.hpp"
#include "viz/trace.hpp"

namespace banger::serve {

ScheduleRender render_schedule(const sched::Schedule& schedule,
                               const graph::TaskGraph& graph,
                               const machine::Machine& machine,
                               const std::string& format) {
  ScheduleRender r;
  if (format == "svg") {
    r.artifact = viz::render_gantt_svg(schedule, graph);
    return r;
  }
  if (format == "trace") {
    r.artifact = viz::to_chrome_trace(schedule, graph);
    return r;
  }
  r.artifact = format == "table" ? viz::schedule_table(schedule, graph)
                                 : viz::render_gantt(schedule, graph);
  const auto metrics = sched::compute_metrics(schedule, graph, machine);
  r.trailer = "makespan " + util::format_double(metrics.makespan, 6) +
              "  speedup " + util::format_double(metrics.speedup, 4) +
              "  efficiency " + util::format_double(metrics.efficiency, 4) +
              "  procs used " + std::to_string(metrics.procs_used) + "/" +
              std::to_string(metrics.procs) + "\n" +
              viz::render_utilization(schedule);
  return r;
}

std::string render_run_result(const exec::RunResult& result,
                              bool include_wall) {
  std::string out;
  for (const auto& [name, value] : result.outputs) {
    out += name + " = " + value.to_display() + "\n";
  }
  if (!result.transcript.empty()) {
    out += "--- transcript ---\n";
    out += result.transcript;
  }
  out += "(" + std::to_string(result.runs.size()) + " task executions";
  if (include_wall) {
    out += ", wall " + util::format_double(result.wall_seconds, 4) + "s";
  }
  out += ")\n";
  return out;
}

TrialBatchRender render_trial_batch(
    const std::vector<exec::TrialOutcome>& outcomes) {
  TrialBatchRender r;
  const std::string total = std::to_string(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const exec::TrialOutcome& trial = outcomes[i];
    r.text += "=== trial " + std::to_string(i + 1) + " of " + total +
              " ===\n";
    if (trial.ok) {
      r.text += render_run_result(trial.result, /*include_wall=*/false);
      continue;
    }
    r.text +=
        "error[" + std::string(to_string(trial.error_code)) + "]: " +
        trial.error;
    if (trial.error_pos.valid()) {
      r.text += " (line " + std::to_string(trial.error_pos.line) +
                ", column " + std::to_string(trial.error_pos.column) + ")";
    }
    r.text += "\n";
    r.exit_code = 1;
  }
  return r;
}

TrialBatchRender render_stream_batches(
    const std::vector<exec::TrialOutcome>& outcomes) {
  TrialBatchRender r;
  const std::string total = std::to_string(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const exec::TrialOutcome& batch = outcomes[i];
    r.text += "=== batch " + std::to_string(i + 1) + " of " + total +
              " ===\n";
    if (batch.ok) {
      r.text += render_run_result(batch.result, /*include_wall=*/false);
      continue;
    }
    r.text +=
        "error[" + std::string(to_string(batch.error_code)) + "]: " +
        batch.error;
    if (batch.error_pos.valid()) {
      r.text += " (line " + std::to_string(batch.error_pos.line) +
                ", column " + std::to_string(batch.error_pos.column) + ")";
    }
    r.text += "\n";
    r.exit_code = 1;
  }
  return r;
}

CheckRender render_check(const graph::Design& design,
                         const std::string& format,
                         const std::string& fail_on,
                         const std::string& file_label) {
  const auto diagnostics =
      analyze::analyze_design(design, analyze::AnalyzeOptions{});
  analyze::EmitOptions emit;
  emit.file = file_label;
  CheckRender r;
  if (format == "json") {
    r.text = analyze::emit_json(diagnostics, emit);
  } else if (format == "sarif") {
    r.text = analyze::emit_sarif(diagnostics, emit);
  } else {
    r.text = analyze::emit_text(diagnostics, emit);
  }
  const auto threshold = fail_on == "warning" ? analyze::Severity::Warning
                                              : analyze::Severity::Error;
  r.exit_code = analyze::has_severity(diagnostics, threshold) ? 1 : 0;
  for (const analyze::Diagnostic& d : diagnostics) {
    switch (d.severity) {
      case analyze::Severity::Error: ++r.errors; break;
      case analyze::Severity::Warning: ++r.warnings; break;
      case analyze::Severity::Note: ++r.notes; break;
    }
  }
  return r;
}

TraceRender render_trace(const graph::TaskGraph& graph,
                         const machine::Machine& machine,
                         const std::string& scheduler,
                         const sim::SimOptions& sim_opts,
                         const fault::FaultPlan* plan,
                         obs::TraceRecorder* reuse) {
  obs::TraceRecorder local;
  obs::TraceRecorder* rec = reuse != nullptr ? reuse : &local;
  // Install on this thread for the duration so the scheduler's internal
  // instrumentation (rounds, list updates) lands in the same artifact.
  obs::ScopedRecorder scope(*rec);

  const auto sch = sched::make_scheduler(scheduler);
  sched::Schedule schedule = sch->run(graph, machine);
  schedule.validate(graph, machine);
  viz::record_schedule(*rec, schedule, graph);

  if (plan != nullptr) {
    core::FaultRunOptions fopts;
    fopts.sim = sim_opts;
    const auto report =
        core::run_with_faults(graph, machine, schedule, *plan, fopts);
    sim::SimResult replay = report.faulty;
    replay.events = report.events;  // includes repair/re-exec events
    viz::record_sim(*rec, replay, graph);
  } else {
    viz::record_sim(*rec, sim::simulate(graph, machine, schedule, sim_opts),
                    graph);
  }

  obs::ExportOptions export_opts;
  export_opts.include_wall = false;  // determinism over wall-clock noise
  TraceRender r;
  r.artifact = rec->to_chrome_json(export_opts);
  r.events = rec->size();
  return r;
}

}  // namespace banger::serve
