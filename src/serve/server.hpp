// banger/serve/server.hpp
//
// The banger design service: a long-lived process that answers
// schedule/trial/check/trace requests for many clients over stdio
// (JSON lines on stdin/stdout) or a local TCP port. One Server instance
// is shared by every connection, so uploaded sessions, the
// content-hashed artifact cache, admission-control slots, and the
// observability counters are all service-wide.
//
// Concurrency model: each stream reads requests on its own thread and
// dispatches them to a util::ThreadPool; responses are re-sequenced so
// they leave in request order regardless of completion order. Handlers
// never share mutable state except through the (internally locked)
// cache, session store, and recorder, so any number of streams can run
// at once.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "obs/trace.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"

namespace banger::serve {

struct ServeOptions {
  /// Worker threads per stream (0 = BANGER_JOBS env or all cores).
  int jobs = 0;
  /// Admission control: requests in flight beyond this are shed with an
  /// `ok:false, code:"limit"` envelope instead of queueing unboundedly.
  int max_inflight = 256;
  /// Per-request deadline in milliseconds measured from arrival; 0
  /// disables. Requests that exceed it while queued are shed.
  int deadline_ms = 0;
  /// Artifact-cache entry cap (parsed designs/machines, schedules,
  /// rendered responses all count).
  std::size_t cache_capacity = 256;
  /// Injectable monotonic clock in seconds, for deterministic deadline
  /// tests. Defaults to the recorder's wall clock.
  std::function<double()> clock;
  /// Record service counters/spans here instead of an internal recorder.
  obs::TraceRecorder* recorder = nullptr;
};

class Server {
 public:
  explicit Server(ServeOptions options = {});

  /// Handles one request line and returns the response line (no
  /// trailing newline). Thread-safe; this is the whole service for
  /// in-process callers and `banger serve --once`.
  std::string handle_line(const std::string& line);

  /// Same, with an explicit arrival timestamp (seconds on the service
  /// clock) against which the deadline is checked.
  std::string handle_line(const std::string& line, double arrival);

  /// Reads newline-delimited requests from `in` until EOF or a
  /// `shutdown` request, answering on `out` in request order. Returns 0.
  int serve_stream(std::istream& in, std::ostream& out);

  /// Listens on 127.0.0.1:`port` (0 = ephemeral; see bound_port()) and
  /// runs serve_stream per connection until request_shutdown(). Logs
  /// the bound address to `log`. Returns 0.
  int serve_tcp(int port, std::ostream& log);

  /// Asks serve_tcp()/serve_stream() loops to wind down.
  void request_shutdown() { shutdown_.store(true); }
  [[nodiscard]] bool shutdown_requested() const { return shutdown_.load(); }

  /// Port serve_tcp actually bound (-1 until listening); lets tests use
  /// an ephemeral port without racing.
  [[nodiscard]] int bound_port() const { return bound_port_.load(); }

  /// Admission-control slots. The stream layer acquires before
  /// dispatching and releases when the handler finishes; exposed so
  /// embedders (and tests) can exert the same back-pressure.
  bool try_acquire_slot();
  void release_slot();

  [[nodiscard]] obs::TraceRecorder& recorder() { return *rec_; }
  [[nodiscard]] ArtifactCache::Stats cache_stats() const {
    return cache_.stats();
  }
  [[nodiscard]] const ServeOptions& options() const { return options_; }

 private:
  /// A rendered text payload plus the CLI-equivalent exit status; what
  /// the response cache stores (the envelope around it varies by id).
  /// `check` responses also carry their severity counts so the envelope
  /// can expose a structured summary next to the formatted output.
  struct Rendered {
    std::string output;
    int exit_code = 0;
    bool has_summary = false;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::size_t notes = 0;
  };

  Json dispatch(const Request& req);
  Rendered respond(const Request& req);
  std::string resolve(const Request& req, bool machine) const;
  double now() const { return clock_(); }

  ServeOptions options_;
  std::optional<obs::TraceRecorder> own_rec_;
  obs::TraceRecorder* rec_ = nullptr;
  std::function<double()> clock_;
  ArtifactCache cache_;
  SessionStore sessions_;
  std::atomic<bool> shutdown_{false};
  std::atomic<int> bound_port_{-1};
  std::atomic<int> inflight_{0};
};

}  // namespace banger::serve
