// banger/serve/render.hpp
//
// Renderers shared by the one-shot CLI commands and the serve daemon.
// Both paths MUST go through these helpers: the service's contract is
// that a `schedule`/`trial`/`check`/`trace` request returns bytes
// identical to the equivalent `banger <command>` invocation, and the
// only way to keep that true over time is a single rendering site.
#pragma once

#include <string>

#include "exec/executor.hpp"
#include "fault/fault.hpp"
#include "graph/design.hpp"
#include "machine/machine.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace banger::serve {

/// `banger schedule` output, split the way the CLI splits it: `artifact`
/// is what `-o FILE` would capture (chart/table/SVG/trace JSON) and
/// `trailer` is the metrics + utilization summary that always goes to
/// stdout (empty for the svg/trace formats).
struct ScheduleRender {
  std::string artifact;
  std::string trailer;
};
ScheduleRender render_schedule(const sched::Schedule& schedule,
                               const graph::TaskGraph& graph,
                               const machine::Machine& machine,
                               const std::string& format);

/// `banger trial` / `banger run` result text. `include_wall` keeps the
/// wall-clock seconds in the footer; pass false for deterministic output
/// (trial runs and every serve response).
std::string render_run_result(const exec::RunResult& result,
                              bool include_wall);

/// Batched trial output, shared by `banger trial --inputs` and the
/// serve batch envelope: one `=== trial K of N ===` block per input in
/// order, each the one-shot rendering (or the error the one-shot run
/// would have raised). `exit_code` is 1 when any trial failed.
struct TrialBatchRender {
  std::string text;
  int exit_code = 0;
};
TrialBatchRender render_trial_batch(
    const std::vector<exec::TrialOutcome>& outcomes);

/// Streaming output, shared by `banger stream --inputs` and the serve
/// `inputs_stream` envelope: one `=== batch K of N ===` block per input
/// batch in push order, each rendered exactly like the equivalent
/// one-shot `banger run` (or the error that run would have raised).
/// `exit_code` is 1 when any batch failed.
TrialBatchRender render_stream_batches(
    const std::vector<exec::TrialOutcome>& outcomes);

/// `banger check` output plus its exit status (1 when diagnostics at or
/// above the --fail-on threshold exist). `file_label` is the file name
/// stamped into diagnostics; `format` is text|json|sarif. The severity
/// counts back the structured `summary` object in serve responses and
/// match the trailer of the text format.
struct CheckRender {
  std::string text;
  int exit_code = 0;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;
};
CheckRender render_check(const graph::Design& design,
                         const std::string& format,
                         const std::string& fail_on,
                         const std::string& file_label);

/// `banger trace` artifact: schedules fresh (so scheduler internals are
/// recorded), replays, exports deterministic domains only. When `reuse`
/// is non-null the events are recorded into it (the CLI's --metrics
/// recorder); otherwise a private recorder keeps the request isolated.
struct TraceRender {
  std::string artifact;
  std::size_t events = 0;
};
TraceRender render_trace(const graph::TaskGraph& graph,
                         const machine::Machine& machine,
                         const std::string& scheduler,
                         const sim::SimOptions& sim_opts,
                         const fault::FaultPlan* plan,
                         obs::TraceRecorder* reuse);

}  // namespace banger::serve
