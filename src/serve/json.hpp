// banger/serve/json.hpp
//
// A small JSON value for the serve wire protocol: parse one request
// line, build one response line. Deliberately minimal — no DOM-style
// mutation helpers, no number-preservation tricks (numbers are doubles,
// rendered via obs::json_number so integers round-trip without a
// fraction). Object member order is preserved, which keeps every
// serialized response deterministic and diffable.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace banger::serve {

class Json {
 public:
  enum class Kind : unsigned char { Null, Bool, Number, String, Array, Object };
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;  // null
  static Json boolean(bool v);
  static Json number(double v);
  static Json string(std::string v);
  static Json array(Array v = {});
  static Json object(Object v = {});

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::String;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::Object;
  }

  /// Typed accessors; only valid for the matching kind.
  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_number() const noexcept { return number_; }
  [[nodiscard]] const std::string& as_string() const noexcept { return str_; }
  [[nodiscard]] const Array& as_array() const noexcept { return arr_; }
  [[nodiscard]] const Object& as_object() const noexcept { return obj_; }

  /// Object member lookup (first match); nullptr when absent or when
  /// this value is not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;

  /// Appends a member to an object / element to an array.
  void add(std::string key, Json value);
  void push(Json value);

  /// Compact deterministic serialization (no whitespace).
  [[nodiscard]] std::string dump() const;

  /// Parses a complete JSON document (trailing junk rejected). Throws
  /// Error{Parse} with a 1-based line/column position on malformed text.
  static Json parse(std::string_view text);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace banger::serve
