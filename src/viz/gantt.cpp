#include "viz/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace banger::viz {

namespace {

/// Short label: final path segment of a task name ("solve.f121" -> "f121").
std::string short_name(const std::string& name) {
  auto pos = name.rfind('.');
  return pos == std::string::npos ? name : name.substr(pos + 1);
}

std::vector<char> reexec_mask(const FaultOverlay* overlay, std::size_t n) {
  std::vector<char> mask(n, 0);
  if (overlay != nullptr) {
    for (graph::TaskId t : overlay->reexecuted) {
      if (t < n) mask[t] = 1;
    }
  }
  return mask;
}

std::string render_gantt_impl(const sched::Schedule& schedule,
                              const graph::TaskGraph& graph,
                              const FaultOverlay* overlay,
                              const GanttOptions& options) {
  const double span = schedule.makespan();
  std::ostringstream out;
  out << "Gantt chart (" << schedule.scheduler_name() << ", "
      << schedule.num_procs() << " procs, makespan "
      << util::format_double(span, 6) << ")\n";
  if (span <= 0) return out.str();

  const int width = std::max(options.width, 20);
  const double scale = width / span;
  const auto reexec = reexec_mask(overlay, graph.num_tasks());

  for (machine::ProcId p = 0; p < schedule.num_procs(); ++p) {
    std::string line(static_cast<std::size_t>(width) + 1, '.');
    for (const sched::Placement& pl : schedule.lane(p)) {
      auto c0 = static_cast<std::size_t>(std::floor(pl.start * scale));
      auto c1 = static_cast<std::size_t>(std::ceil(pl.finish * scale));
      c0 = std::min(c0, line.size() - 1);
      c1 = std::min(std::max(c1, c0 + 1), line.size());
      for (std::size_t c = c0; c < c1; ++c) line[c] = '#';
      if (options.labels) {
        std::string label = short_name(graph.task(pl.task).name);
        if (options.mark_duplicates && pl.duplicate) label += '*';
        if (!pl.duplicate && reexec[pl.task]) label += '!';
        if (label.size() + 2 <= c1 - c0) {
          line[c0] = '[';
          line[c1 - 1] = ']';
          for (std::size_t i = 0; i < label.size() && c0 + 1 + i < c1 - 1; ++i)
            line[c0 + 1 + i] = label[i];
        }
      }
    }
    if (overlay != nullptr) {
      for (const FaultOverlay::Crash& crash : overlay->crashes) {
        if (crash.proc != p) continue;
        auto col = static_cast<std::size_t>(std::floor(crash.at * scale));
        line[std::min(col, line.size() - 1)] = 'X';
      }
    }
    out << "P" << util::pad_right(std::to_string(p), 3) << "|" << line << "|\n";
  }

  // Time axis.
  out << "    +" << std::string(static_cast<std::size_t>(width) + 1, '-')
      << "+\n";
  out << "     0" << util::pad_left("t=" + util::format_double(span, 5),
                                    static_cast<std::size_t>(width) - 1)
      << "\n";
  if (overlay != nullptr && !overlay->crashes.empty()) {
    out << "     X = processor crash";
    if (!overlay->reexecuted.empty()) out << "   ! = re-executed after crash";
    out << "\n";
  }
  return out.str();
}

}  // namespace

std::string render_gantt(const sched::Schedule& schedule,
                         const graph::TaskGraph& graph,
                         const GanttOptions& options) {
  return render_gantt_impl(schedule, graph, nullptr, options);
}

std::string render_gantt(const sched::Schedule& schedule,
                         const graph::TaskGraph& graph,
                         const FaultOverlay& overlay,
                         const GanttOptions& options) {
  return render_gantt_impl(schedule, graph, &overlay, options);
}

std::string schedule_table(const sched::Schedule& schedule,
                           const graph::TaskGraph& graph) {
  util::Table table;
  table.set_header({"task", "proc", "start", "finish", "dup"});
  auto rows = schedule.placements();
  std::sort(rows.begin(), rows.end(),
            [](const sched::Placement& a, const sched::Placement& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.proc < b.proc;
            });
  for (const sched::Placement& pl : rows) {
    table.add_row({graph.task(pl.task).name, std::to_string(pl.proc),
                   util::format_double(pl.start, 6),
                   util::format_double(pl.finish, 6),
                   pl.duplicate ? "yes" : ""});
  }
  return table.to_string();
}

namespace {

std::string render_gantt_svg_impl(const sched::Schedule& schedule,
                                  const graph::TaskGraph& graph,
                                  const FaultOverlay* overlay,
                                  const SvgOptions& options) {
  const double span = std::max(schedule.makespan(), 1e-9);
  const auto reexec = reexec_mask(overlay, graph.num_tasks());
  const int margin_left = 50;
  const int margin_top = 30;
  const int lane_h = options.lane_height;
  const int chart_w = options.width - margin_left - 20;
  const int height = margin_top + lane_h * schedule.num_procs() + 40;
  const double scale = chart_w / span;

  // A small colorblind-safe palette cycled over tasks.
  static const char* palette[] = {"#4477aa", "#ee6677", "#228833", "#ccbb44",
                                  "#66ccee", "#aa3377", "#bbbbbb"};

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width
      << "\" height=\"" << height << "\" font-family=\"monospace\">\n";
  svg << "<text x=\"" << margin_left << "\" y=\"18\" font-size=\"13\">"
      << "schedule: " << schedule.scheduler_name() << "  makespan: "
      << util::format_double(schedule.makespan(), 6) << "</text>\n";

  for (machine::ProcId p = 0; p < schedule.num_procs(); ++p) {
    const int y = margin_top + p * lane_h;
    svg << "<text x=\"8\" y=\"" << y + lane_h / 2 + 4
        << "\" font-size=\"12\">P" << p << "</text>\n";
    svg << "<line x1=\"" << margin_left << "\" y1=\"" << y + lane_h
        << "\" x2=\"" << margin_left + chart_w << "\" y2=\"" << y + lane_h
        << "\" stroke=\"#dddddd\"/>\n";
    for (const sched::Placement& pl : schedule.lane(p)) {
      const double x = margin_left + pl.start * scale;
      const double w = std::max(1.0, pl.length() * scale);
      const char* color = palette[pl.task % 7];
      const bool reexecuted = !pl.duplicate && reexec[pl.task] != 0;
      svg << "<rect x=\"" << x << "\" y=\"" << y + 4 << "\" width=\"" << w
          << "\" height=\"" << lane_h - 8 << "\" fill=\"" << color
          << (reexecuted ? "\" stroke=\"#cc0000\" stroke-width=\"2"
                         : "\" stroke=\"#333333")
          << "\"" << (pl.duplicate ? " fill-opacity=\"0.45\"" : "") << ">"
          << "<title>" << graph.task(pl.task).name << " ["
          << util::format_double(pl.start, 6) << ", "
          << util::format_double(pl.finish, 6) << ")"
          << (pl.duplicate ? " duplicate" : "") << "</title></rect>\n";
      if (w > 40) {
        svg << "<text x=\"" << x + 3 << "\" y=\"" << y + lane_h / 2 + 4
            << "\" font-size=\"10\" fill=\"#ffffff\">"
            << short_name(graph.task(pl.task).name)
            << (pl.duplicate ? "*" : "") << "</text>\n";
      }
    }
  }

  if (options.show_messages) {
    for (const sched::Message& m : schedule.messages()) {
      const double x1 = margin_left + m.send * scale;
      const double x2 = margin_left + m.arrive * scale;
      const int y1 = margin_top + m.from * lane_h + lane_h / 2;
      const int y2 = margin_top + m.to * lane_h + lane_h / 2;
      svg << "<line x1=\"" << x1 << "\" y1=\"" << y1 << "\" x2=\"" << x2
          << "\" y2=\"" << y2
          << "\" stroke=\"#999999\" stroke-dasharray=\"3,2\"/>\n";
    }
  }

  if (overlay != nullptr) {
    for (const FaultOverlay::Crash& crash : overlay->crashes) {
      if (crash.proc < 0 || crash.proc >= schedule.num_procs()) continue;
      const double x = margin_left + crash.at * scale;
      const int y = margin_top + crash.proc * lane_h;
      svg << "<line x1=\"" << x << "\" y1=\"" << y << "\" x2=\"" << x
          << "\" y2=\"" << y + lane_h
          << "\" stroke=\"#cc0000\" stroke-width=\"3\">"
          << "<title>P" << crash.proc << " crashed at t="
          << util::format_double(crash.at, 6) << "</title></line>\n";
    }
  }

  // Axis.
  const int axis_y = margin_top + lane_h * schedule.num_procs() + 14;
  svg << "<text x=\"" << margin_left << "\" y=\"" << axis_y
      << "\" font-size=\"11\">0</text>\n";
  svg << "<text x=\"" << margin_left + chart_w - 40 << "\" y=\"" << axis_y
      << "\" font-size=\"11\">t=" << util::format_double(schedule.makespan(), 5)
      << "</text>\n";
  svg << "</svg>\n";
  return svg.str();
}

}  // namespace

std::string render_gantt_svg(const sched::Schedule& schedule,
                             const graph::TaskGraph& graph,
                             const SvgOptions& options) {
  return render_gantt_svg_impl(schedule, graph, nullptr, options);
}

std::string render_gantt_svg(const sched::Schedule& schedule,
                             const graph::TaskGraph& graph,
                             const FaultOverlay& overlay,
                             const SvgOptions& options) {
  return render_gantt_svg_impl(schedule, graph, &overlay, options);
}

}  // namespace banger::viz
