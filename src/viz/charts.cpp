#include "viz/charts.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/strings.hpp"

namespace banger::viz {

std::string render_speedup_chart(const sched::SpeedupCurve& curve, int height,
                                 int width) {
  std::ostringstream out;
  out << "Predicted speedup (" << curve.scheduler << " on "
      << curve.machine_family << ")\n";
  if (curve.points.empty()) return out.str();

  const int max_procs = curve.points.back().procs;
  const double max_y =
      std::max(1.0, std::ceil(std::max(curve.max_speedup(),
                                       static_cast<double>(1))));
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  auto plot = [&](double procs, double speedup, char mark) {
    const int col = static_cast<int>(
        std::round((procs - 1) / std::max(1.0, max_procs - 1.0) * (width - 1)));
    const int row = static_cast<int>(
        std::round((1.0 - speedup / max_y) * (height - 1)));
    if (row >= 0 && row < height && col >= 0 && col < width) {
      char& cell = grid[static_cast<std::size_t>(row)]
                       [static_cast<std::size_t>(col)];
      if (cell == ' ' || mark == 'o') cell = mark;
    }
  };
  // Ideal linear speedup reference.
  for (int p = 1; p <= max_procs; ++p) {
    plot(p, std::min(static_cast<double>(p), max_y), '.');
  }
  // Measured points, connected with '-' along processor steps.
  for (std::size_t i = 0; i < curve.points.size(); ++i) {
    plot(curve.points[i].procs, curve.points[i].speedup, 'o');
    if (i > 0) {
      const auto& a = curve.points[i - 1];
      const auto& b = curve.points[i];
      for (int step = 1; step < 8; ++step) {
        const double f = step / 8.0;
        plot(a.procs + f * (b.procs - a.procs),
             a.speedup + f * (b.speedup - a.speedup), '-');
      }
    }
  }

  for (int row = 0; row < height; ++row) {
    const double y = max_y * (1.0 - static_cast<double>(row) / (height - 1));
    out << util::pad_left(util::format_double(y, 3), 6) << " |"
        << grid[static_cast<std::size_t>(row)] << "\n";
  }
  out << "       +" << std::string(static_cast<std::size_t>(width), '-')
      << "\n";
  out << "        procs: 1"
      << util::pad_left(std::to_string(max_procs),
                        static_cast<std::size_t>(width) - 2)
      << "\n";
  out << "        (o = predicted, . = ideal linear)\n";
  return out.str();
}

std::string render_utilization(const sched::Schedule& schedule, int width) {
  std::ostringstream out;
  const double span = schedule.makespan();
  out << "processor utilisation (makespan "
      << util::format_double(span, 5) << "):\n";
  for (machine::ProcId p = 0; p < schedule.num_procs(); ++p) {
    const double busy = schedule.busy(p);
    const double frac = span > 0 ? busy / span : 0.0;
    const int bars = static_cast<int>(std::round(frac * width));
    out << "P" << util::pad_right(std::to_string(p), 3) << "|"
        << std::string(static_cast<std::size_t>(bars), '#')
        << std::string(static_cast<std::size_t>(width - bars), ' ') << "| "
        << util::format_double(frac * 100, 3) << "%\n";
  }
  return out.str();
}

std::string render_bars(const std::vector<std::pair<std::string, double>>& data,
                        int width) {
  std::ostringstream out;
  double max_v = 0;
  std::size_t label_w = 0;
  for (const auto& [label, value] : data) {
    max_v = std::max(max_v, value);
    label_w = std::max(label_w, label.size());
  }
  if (max_v <= 0) max_v = 1;
  for (const auto& [label, value] : data) {
    const int bars = static_cast<int>(std::round(value / max_v * width));
    out << util::pad_right(label, label_w) << " |"
        << std::string(static_cast<std::size_t>(bars), '#')
        << util::pad_left(util::format_double(value, 5),
                          static_cast<std::size_t>(width - bars) + 9)
        << "\n";
  }
  return out.str();
}

}  // namespace banger::viz
