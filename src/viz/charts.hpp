// banger/viz/charts.hpp
//
// ASCII chart rendering for the instant-feedback displays that are not
// Gantt charts: the speedup-prediction curve of Fig. 3 and generic
// labelled bar charts used by the ablation benches.
#pragma once

#include <string>
#include <vector>

#include "sched/speedup.hpp"

namespace banger::viz {

/// Speedup-vs-processors line chart (y = speedup, x = processor count),
/// with the ideal linear speedup marked for reference.
std::string render_speedup_chart(const sched::SpeedupCurve& curve,
                                 int height = 12, int width = 56);

/// Horizontal bar chart: one labelled bar per (label, value).
std::string render_bars(const std::vector<std::pair<std::string, double>>& data,
                        int width = 48);

/// Per-processor utilisation bars for a schedule (busy / makespan).
std::string render_utilization(const sched::Schedule& schedule,
                               int width = 40);

}  // namespace banger::viz
