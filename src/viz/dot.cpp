#include "viz/dot.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace banger::viz {

namespace {

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

void emit_level(std::ostringstream& out, const graph::DataflowGraph& g,
                const std::string& prefix, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  for (const graph::Node& n : g.nodes()) {
    out << pad << quoted(prefix + n.name) << " [label=" << quoted(n.name);
    switch (n.kind) {
      case graph::NodeKind::Task:
        out << ", shape=ellipse";
        break;
      case graph::NodeKind::Super:
        out << ", shape=ellipse, penwidth=2.5";
        break;
      case graph::NodeKind::Storage:
        out << ", shape=box";
        break;
    }
    out << "];\n";
  }
  for (const graph::Arc& a : g.arcs()) {
    out << pad << quoted(prefix + g.node(a.from).name) << " -> "
        << quoted(prefix + g.node(a.to).name);
    if (!a.var.empty()) out << " [label=" << quoted(a.var) << "]";
    out << ";\n";
  }
}

}  // namespace

std::string to_dot(const graph::DataflowGraph& level) {
  std::ostringstream out;
  out << "digraph " << quoted(level.name()) << " {\n";
  out << "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";
  emit_level(out, level, "", 2);
  out << "}\n";
  return out.str();
}

std::string to_dot(const graph::Design& design) {
  std::ostringstream out;
  out << "digraph " << quoted(design.name()) << " {\n";
  out << "  rankdir=TB;\n  compound=true;\n"
      << "  node [fontname=\"Helvetica\"];\n";
  for (graph::GraphId gid = 0;
       gid < static_cast<graph::GraphId>(design.num_graphs()); ++gid) {
    const graph::DataflowGraph& g = design.graph(gid);
    const std::string prefix = "g" + std::to_string(gid) + ".";
    out << "  subgraph cluster_" << gid << " {\n";
    out << "    label=" << quoted(g.name()) << ";\n";
    emit_level(out, g, prefix, 4);
    out << "  }\n";
  }
  // Expansion links: supernode -> first node of its child graph.
  for (graph::GraphId gid = 0;
       gid < static_cast<graph::GraphId>(design.num_graphs()); ++gid) {
    const graph::DataflowGraph& g = design.graph(gid);
    for (const graph::Node& n : g.nodes()) {
      if (n.kind == graph::NodeKind::Super && n.subgraph >= 0 &&
          design.graph(n.subgraph).num_nodes() > 0) {
        out << "  " << quoted("g" + std::to_string(gid) + "." + n.name)
            << " -> "
            << quoted("g" + std::to_string(n.subgraph) + "." +
                      design.graph(n.subgraph).node(0).name)
            << " [style=dashed, color=gray, lhead=cluster_" << n.subgraph
            << "];\n";
      }
    }
  }
  out << "}\n";
  return out.str();
}

std::string to_dot(const graph::TaskGraph& graph) {
  std::ostringstream out;
  out << "digraph tasks {\n  rankdir=TB;\n";
  for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
    out << "  " << quoted(graph.task(t).name) << " [label="
        << quoted(graph.task(t).name + "\\nw=" +
                  util::format_double(graph.task(t).work, 4))
        << "];\n";
  }
  for (const graph::Edge& e : graph.edges()) {
    out << "  " << quoted(graph.task(e.from).name) << " -> "
        << quoted(graph.task(e.to).name) << " [label="
        << quoted(util::format_double(e.bytes, 4) + "B") << "];\n";
  }
  out << "}\n";
  return out.str();
}

std::string to_dot(const machine::Topology& topology) {
  std::ostringstream out;
  out << "graph " << quoted(topology.name()) << " {\n  node [shape=circle];\n";
  for (machine::ProcId a = 0; a < topology.num_procs(); ++a) {
    out << "  " << a << ";\n";
    for (machine::ProcId b : topology.neighbors(a)) {
      if (a < b) out << "  " << a << " -- " << b << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace banger::viz
