// banger/viz/dot.hpp
//
// Graphviz DOT export — what the Banger editor *drew*, in a form a
// modern user can render: hierarchical designs as clustered digraphs
// (tasks = ovals, stores = boxes, supernodes = bold ovals, matching the
// paper's Figure 1 conventions), flattened task graphs, and machine
// topologies (Figure 2).
#pragma once

#include <string>

#include "graph/design.hpp"
#include "machine/topology.hpp"

namespace banger::viz {

/// The root drawing of a design, supernodes rendered bold (not expanded).
std::string to_dot(const graph::DataflowGraph& level);

/// The whole hierarchy: each level a subgraph cluster, supernodes linked
/// to their expansions with dashed arrows.
std::string to_dot(const graph::Design& design);

/// The flattened task DAG with edge byte weights.
std::string to_dot(const graph::TaskGraph& graph);

/// The interconnection network (undirected).
std::string to_dot(const machine::Topology& topology);

}  // namespace banger::viz
