#include "viz/trace.hpp"

#include <sstream>

namespace banger::viz {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

long long micros(double seconds) {
  return static_cast<long long>(seconds * 1e6);
}

void duration_event(std::ostringstream& out, bool& first,
                    const std::string& name, int tid, double start,
                    double end, const std::string& extra_args = {}) {
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\": \"" << json_escape(name)
      << "\", \"cat\": \"task\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << tid
      << ", \"ts\": " << micros(start) << ", \"dur\": "
      << micros(end - start) << ", \"args\": {" << extra_args << "}}";
}

void flow_event(std::ostringstream& out, bool& first, char phase, int id,
                int tid, double ts, const std::string& name) {
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\": \"" << json_escape(name)
      << "\", \"cat\": \"msg\", \"ph\": \"" << phase
      << "\", \"id\": " << id << ", \"pid\": 1, \"tid\": " << tid
      << ", \"ts\": " << micros(ts) << "}";
}

}  // namespace

std::string to_chrome_trace(const sched::Schedule& schedule,
                            const graph::TaskGraph& graph) {
  std::ostringstream out;
  out << "[\n";
  bool first = true;
  for (const sched::Placement& p : schedule.placements()) {
    duration_event(out, first, graph.task(p.task).name, p.proc, p.start,
                   p.finish,
                   p.duplicate ? "\"duplicate\": true" : "");
  }
  int flow_id = 0;
  for (const sched::Message& m : schedule.messages()) {
    const std::string name =
        "msg:" + graph.task(graph.edge(m.edge).from).name + "->" +
        graph.task(graph.edge(m.edge).to).name;
    flow_event(out, first, 's', flow_id, m.from, m.send, name);
    flow_event(out, first, 'f', flow_id, m.to, m.arrive, name);
    ++flow_id;
  }
  out << "\n]\n";
  return out.str();
}

std::string to_chrome_trace(const sim::SimResult& result,
                            const graph::TaskGraph& graph) {
  std::ostringstream out;
  out << "[\n";
  bool first = true;
  for (graph::TaskId t = 0; t < result.tasks.size(); ++t) {
    const sim::TaskTiming& timing = result.tasks[t];
    duration_event(out, first, graph.task(t).name, timing.proc, timing.start,
                   timing.finish);
  }
  // Message send/arrive pairs from the event log, matched by edge.
  int flow_id = 0;
  for (std::size_t i = 0; i < result.events.size(); ++i) {
    const sim::SimEvent& e = result.events[i];
    if (e.kind != sim::EventKind::MsgSend) continue;
    for (std::size_t j = i + 1; j < result.events.size(); ++j) {
      const sim::SimEvent& a = result.events[j];
      if (a.kind == sim::EventKind::MsgArrive && a.edge == e.edge &&
          a.task == e.task) {
        const std::string name = "edge" + std::to_string(e.edge);
        flow_event(out, first, 's', flow_id, e.proc, e.time, name);
        flow_event(out, first, 'f', flow_id, a.proc, a.time, name);
        ++flow_id;
        break;
      }
    }
  }
  out << "\n]\n";
  return out.str();
}

}  // namespace banger::viz
