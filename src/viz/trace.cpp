#include "viz/trace.hpp"

namespace banger::viz {

namespace {

using obs::Domain;

std::string fault_args(const sim::SimEvent& e) {
  std::string args = "\"proc\": " + std::to_string(e.proc);
  if (e.task != graph::kNoTask)
    args += ", \"task\": " + std::to_string(e.task);
  if (e.kind == sim::EventKind::MsgDrop || e.kind == sim::EventKind::MsgRetry)
    args += ", \"edge\": " + std::to_string(e.edge);
  return args;
}

}  // namespace

void record_schedule(obs::TraceRecorder& rec, const sched::Schedule& schedule,
                     const graph::TaskGraph& graph, int pid) {
  for (const sched::Placement& p : schedule.placements()) {
    rec.span(Domain::Virtual, pid, p.proc, p.start, p.finish,
             graph.task(p.task).name, "task",
             p.duplicate ? "\"duplicate\": true" : "");
  }
  int flow_id = 0;
  for (const sched::Message& m : schedule.messages()) {
    const std::string name =
        "msg:" + graph.task(graph.edge(m.edge).from).name + "->" +
        graph.task(graph.edge(m.edge).to).name;
    rec.flow_point(Domain::Virtual, pid, m.from, m.send, true, flow_id, name,
                   "msg");
    rec.flow_point(Domain::Virtual, pid, m.to, m.arrive, false, flow_id, name,
                   "msg");
    ++flow_id;
  }
}

void record_sim(obs::TraceRecorder& rec, const sim::SimResult& result,
                const graph::TaskGraph& graph, int pid) {
  for (graph::TaskId t = 0; t < result.tasks.size(); ++t) {
    const sim::TaskTiming& timing = result.tasks[t];
    if (timing.proc < 0) continue;  // never finished under a fault plan
    rec.span(Domain::Virtual, pid, timing.proc, timing.start, timing.finish,
             graph.task(t).name, "task");
  }
  // Message send/arrive pairs from the event log, matched by edge.
  int flow_id = 0;
  for (std::size_t i = 0; i < result.events.size(); ++i) {
    const sim::SimEvent& e = result.events[i];
    switch (e.kind) {
      case sim::EventKind::MsgSend:
        for (std::size_t j = i + 1; j < result.events.size(); ++j) {
          const sim::SimEvent& a = result.events[j];
          if (a.kind == sim::EventKind::MsgArrive && a.edge == e.edge &&
              a.task == e.task) {
            const std::string name = "edge" + std::to_string(e.edge);
            rec.flow_point(Domain::Virtual, pid, e.proc, e.time, true, flow_id,
                           name, "msg");
            rec.flow_point(Domain::Virtual, pid, a.proc, a.time, false,
                           flow_id, name, "msg");
            ++flow_id;
            break;
          }
        }
        break;
      case sim::EventKind::ProcCrash:
      case sim::EventKind::TaskKill:
      case sim::EventKind::MsgDrop:
      case sim::EventKind::MsgRetry:
      case sim::EventKind::TaskReexec:
        rec.instant(Domain::Virtual, pid, e.proc, e.time,
                    std::string(sim::to_string(e.kind)), "fault",
                    fault_args(e));
        break;
      default:
        break;
    }
  }
}

std::string to_chrome_trace(const sched::Schedule& schedule,
                            const graph::TaskGraph& graph) {
  obs::TraceRecorder rec;
  record_schedule(rec, schedule, graph);
  obs::ExportOptions opts;
  opts.metadata = false;
  return rec.to_chrome_json(opts);
}

std::string to_chrome_trace(const sim::SimResult& result,
                            const graph::TaskGraph& graph) {
  obs::TraceRecorder rec;
  record_sim(rec, result, graph);
  obs::ExportOptions opts;
  opts.metadata = false;
  return rec.to_chrome_json(opts);
}

}  // namespace banger::viz
