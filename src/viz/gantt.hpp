// banger/viz/gantt.hpp
//
// Gantt-chart rendering (paper Fig. 3): one lane per processor, task
// boxes placed along a time axis. ASCII output for terminals and tests;
// SVG output for reports. Both show the same data the Banger GUI drew.
#pragma once

#include <string>
#include <vector>

#include "graph/task_graph.hpp"
#include "sched/schedule.hpp"

namespace banger::viz {

struct GanttOptions {
  /// Total character width of the time axis (ASCII).
  int width = 72;
  /// Show task names inside boxes when they fit.
  bool labels = true;
  /// Mark duplicate copies with '*' after the label.
  bool mark_duplicates = true;
};

/// Fault annotations drawn over a (repaired) schedule: crosses where
/// processors died and highlights on tasks a repair pass re-ran.
struct FaultOverlay {
  struct Crash {
    machine::ProcId proc = -1;
    double at = 0.0;
  };
  std::vector<Crash> crashes;
  std::vector<graph::TaskId> reexecuted;
};

/// ASCII Gantt chart. Lanes are ordered by processor id; the time axis
/// is scaled to the makespan.
std::string render_gantt(const sched::Schedule& schedule,
                         const graph::TaskGraph& graph,
                         const GanttOptions& options = {});

/// ASCII chart with fault annotations: 'X' at the crash instant on the
/// dead processor's lane, '!' after the labels of re-executed tasks,
/// plus a legend line.
std::string render_gantt(const sched::Schedule& schedule,
                         const graph::TaskGraph& graph,
                         const FaultOverlay& overlay,
                         const GanttOptions& options = {});

struct SvgOptions {
  int width = 900;
  int lane_height = 34;
  bool show_messages = true;  ///< draw message arrows between lanes
};

/// Standalone SVG document of the same chart.
std::string render_gantt_svg(const sched::Schedule& schedule,
                             const graph::TaskGraph& graph,
                             const SvgOptions& options = {});

/// SVG chart with fault annotations: a red crash marker on the dead
/// lane and red outlines around re-executed task boxes.
std::string render_gantt_svg(const sched::Schedule& schedule,
                             const graph::TaskGraph& graph,
                             const FaultOverlay& overlay,
                             const SvgOptions& options = {});

/// Plain schedule table: task, processor, start, finish — the textual
/// fallback display.
std::string schedule_table(const sched::Schedule& schedule,
                           const graph::TaskGraph& graph);

}  // namespace banger::viz
