// banger/viz/trace.hpp
//
// Chrome trace-event export (the `chrome://tracing` / Perfetto JSON
// format): a modern rendering of the schedule animations the paper's
// "instant feedback through graphical displays and animations" principle
// calls for. Processors become trace threads, task executions become
// duration events, and messages become flow arrows.
//
// The rendering itself lives in obs::TraceRecorder; this header maps
// schedules and simulation results onto recorder tracks so they can be
// composed with the scheduler/executor/recovery instrumentation into
// one artifact (`banger trace`), or exported alone via the legacy
// to_chrome_trace() wrappers.
#pragma once

#include <string>

#include "obs/trace.hpp"
#include "sched/schedule.hpp"
#include "sim/simulator.hpp"

namespace banger::viz {

/// Records the planned schedule onto `pid`: one duration event per
/// placement (tid = processor), one flow arrow per planned message.
/// All events are in obs::Domain::Virtual (model seconds).
void record_schedule(obs::TraceRecorder& rec, const sched::Schedule& schedule,
                     const graph::TaskGraph& graph,
                     int pid = obs::kTrackPlanned);

/// Records a simulation's replay onto `pid`: per-task duration events
/// from the simulated timings (tasks that never finished under a fault
/// plan are skipped), flow arrows for matched MsgSend/MsgArrive pairs,
/// and instant events for fault occurrences (crashes, kills, drops,
/// retries, re-executions).
void record_sim(obs::TraceRecorder& rec, const sim::SimResult& result,
                const graph::TaskGraph& graph, int pid = obs::kTrackReplay);

/// The planned schedule as a standalone trace: one duration event per
/// placement, one flow arrow per recorded message. Times are exported
/// in microseconds (Chrome's unit) at 1s = 1e6 us.
std::string to_chrome_trace(const sched::Schedule& schedule,
                            const graph::TaskGraph& graph);

/// A simulation's actual event log as a standalone trace (uses the
/// simulated task timings; fault events appear as instants).
std::string to_chrome_trace(const sim::SimResult& result,
                            const graph::TaskGraph& graph);

}  // namespace banger::viz
