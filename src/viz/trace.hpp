// banger/viz/trace.hpp
//
// Chrome trace-event export (the `chrome://tracing` / Perfetto JSON
// format): a modern rendering of the schedule animations the paper's
// "instant feedback through graphical displays and animations" principle
// calls for. Processors become trace threads, task executions become
// duration events, and messages become flow arrows.
#pragma once

#include <string>

#include "sched/schedule.hpp"
#include "sim/simulator.hpp"

namespace banger::viz {

/// The planned schedule as a trace: one duration event per placement,
/// one flow arrow per recorded message. Times are exported in
/// microseconds (Chrome's unit) at 1s = 1e6 us.
std::string to_chrome_trace(const sched::Schedule& schedule,
                            const graph::TaskGraph& graph);

/// A simulation's actual event log as a trace (uses the simulated task
/// timings; message hops appear as instant events on the hop processor).
std::string to_chrome_trace(const sim::SimResult& result,
                            const graph::TaskGraph& graph);

}  // namespace banger::viz
