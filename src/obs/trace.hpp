// banger/obs/trace.hpp
//
// Structured observability: a low-overhead trace recorder threaded
// through the scheduler, simulator, executor, thread pool, and fault
// recovery.  The paper's whole pitch is *instant feedback* — this layer
// is how the environment shows where time goes, not just what the final
// schedule looks like.
//
// Model
//   * A `TraceRecorder` collects spans (duration events), instants,
//     counters, and flow points (message arrows), plus a flat
//     name -> number metrics map.
//   * Every event lives on a (pid, tid) track and in a *clock domain*:
//       - Domain::Virtual  — model seconds (schedule / simulation time);
//                            fully deterministic.
//       - Domain::Wall     — host wall-clock seconds from real
//                            execution; inherently nondeterministic.
//       - Domain::Logical  — dimensionless indices (scheduler rounds);
//                            deterministic.
//     Exports may exclude the Wall domain, which is how `banger trace`
//     produces byte-identical output for any `--jobs` value.
//   * Recording is thread-safe (one mutex; events carry a global
//     sequence number).  Export stable-sorts by (ts, pid, tid, seq) so
//     the JSON is deterministic regardless of thread interleaving.
//   * The recorder is *ambient*: instrumented code asks
//     `obs::current()` and does nothing when it returns nullptr, so the
//     disabled path costs one relaxed atomic load (hoisted out of hot
//     loops at the call sites).  `ScopedRecorder` installs a recorder
//     for the current scope, RAII-restoring the previous one.
//
// The exporter speaks the Chrome trace-event JSON format understood by
// Perfetto (https://ui.perfetto.dev) and chrome://tracing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace banger::obs {

/// Which clock an event's timestamps belong to.  Virtual and Wall are
/// in seconds (exported at 1s = 1e6 us); Logical values are exported
/// verbatim as microsecond ticks.
enum class Domain : std::uint8_t { Virtual, Wall, Logical };

// Well-known tracks (Chrome trace "pid"s).  kTrackPlanned is 1 so the
// legacy schedule-only export keeps its historical pid.
inline constexpr int kTrackPlanned = 1;    ///< planned schedule (Virtual)
inline constexpr int kTrackReplay = 2;     ///< simulated replay (Virtual)
inline constexpr int kTrackExec = 3;       ///< real executor (Wall)
inline constexpr int kTrackScheduler = 4;  ///< scheduler internals (Logical)
inline constexpr int kTrackRecovery = 5;   ///< fault recovery (Virtual)
inline constexpr int kTrackPool = 6;       ///< thread pool (Wall)
inline constexpr int kTrackServe = 7;      ///< serve request handling (Wall)

struct TraceEvent {
  enum class Kind : std::uint8_t { Span, Instant, Counter, FlowStart, FlowEnd };
  Kind kind = Kind::Instant;
  Domain domain = Domain::Virtual;
  int pid = kTrackPlanned;
  int tid = 0;
  double start = 0.0;  ///< seconds (or raw ticks in Domain::Logical)
  double end = 0.0;    ///< spans only
  double value = 0.0;  ///< counters only
  int flow_id = 0;     ///< flow points only
  std::uint64_t seq = 0;
  std::string name;
  std::string cat;
  std::string args;  ///< pre-rendered JSON object body, e.g. "\"n\": 3"
};

struct ExportOptions {
  /// Include Domain::Wall events.  `banger trace` turns this off so the
  /// artifact is byte-identical across `--jobs` values.
  bool include_wall = true;
  /// Emit process_name metadata records for the tracks in use.
  bool metadata = true;
};

/// Escape a string for embedding in a JSON string literal.
std::string json_escape(const std::string& s);

/// Render a double deterministically: integral values print without a
/// fraction ("3"), everything else via %.17g round-trip formatting.
std::string json_number(double v);

class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// A duration event on (pid, tid) covering [start, end].
  void span(Domain domain, int pid, int tid, double start, double end,
            std::string name, std::string cat, std::string args = {});

  /// A point event on (pid, tid) at time ts.
  void instant(Domain domain, int pid, int tid, double ts, std::string name,
               std::string cat, std::string args = {});

  /// A counter sample: the value of `name` at time ts.
  void counter(Domain domain, int pid, int tid, double ts, std::string name,
               double value);

  /// One end of a flow arrow (start=true is the tail).  Points sharing
  /// a flow_id are connected by the viewer.
  void flow_point(Domain domain, int pid, int tid, double ts, bool start,
                  int flow_id, std::string name, std::string cat);

  /// Add `delta` to the named metric (creating it at 0).
  void bump(const std::string& metric, double delta = 1.0);

  /// Set the named metric to `value` outright.
  void set_metric(const std::string& metric, double value);

  /// Read a metric back (0 if never touched).
  double metric(const std::string& name) const;

  /// A copy of the whole metrics map (the data behind metrics_json) —
  /// the serve `stats` endpoint embeds it as a structured object.
  std::map<std::string, double> metrics_snapshot() const;

  /// Wall-clock seconds since this recorder was constructed
  /// (steady-clock based; use for Domain::Wall timestamps).
  double wall_now() const;

  std::size_t size() const;
  void clear();

  /// Chrome trace-event JSON (a top-level array, Perfetto-loadable).
  std::string to_chrome_json(const ExportOptions& options = {}) const;

  /// Flat `{"metric": value, ...}` JSON object, keys sorted.
  std::string metrics_json() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<std::string, double> metrics_;
  std::uint64_t next_seq_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// The ambient recorder for the *current thread*, or nullptr when
/// tracing is disabled.  Instrumented code hoists this out of hot
/// loops.  The ambient is thread-local so concurrent serve requests can
/// each trace into their own recorder without cross-talk; helpers that
/// fan work out to other threads (util::ThreadPool, the executor)
/// capture the caller's recorder and install it on their workers, so
/// single-recorder flows behave exactly as if the ambient were global.
TraceRecorder* current();

/// Installs `rec` as the calling thread's ambient recorder for the
/// lifetime of the object, restoring the previous recorder on
/// destruction.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(TraceRecorder& rec);
  ~ScopedRecorder();
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  TraceRecorder* prev_;
};

}  // namespace banger::obs
