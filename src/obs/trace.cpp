#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace banger::obs {

namespace {

// Per-thread ambient recorder. Thread-local (not process-global) so a
// concurrent server can trace one request in isolation while neighbours
// on other threads keep recording into the service-wide recorder.
// ThreadPool and the executor re-install the submitting thread's
// recorder on their workers, preserving the old global-feeling flow.
thread_local TraceRecorder* t_current = nullptr;

// Chrome trace timestamps are integer microseconds.  Virtual/Wall
// domains carry seconds; Logical carries raw ticks exported verbatim.
long long ts_micros(Domain domain, double t) {
  if (domain == Domain::Logical) return static_cast<long long>(t);
  return static_cast<long long>(t * 1e6);
}

const char* track_label(int pid) {
  switch (pid) {
    case kTrackPlanned: return "planned schedule";
    case kTrackReplay: return "executor replay (simulated)";
    case kTrackExec: return "executor";
    case kTrackScheduler: return "scheduler";
    case kTrackRecovery: return "recovery";
    case kTrackPool: return "thread pool";
    case kTrackServe: return "serve";
    default: return "track";
  }
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::fabs(v) < 9e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

void TraceRecorder::span(Domain domain, int pid, int tid, double start,
                         double end, std::string name, std::string cat,
                         std::string args) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent e;
  e.kind = TraceEvent::Kind::Span;
  e.domain = domain;
  e.pid = pid;
  e.tid = tid;
  e.start = start;
  e.end = end;
  e.seq = next_seq_++;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceRecorder::instant(Domain domain, int pid, int tid, double ts,
                            std::string name, std::string cat,
                            std::string args) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent e;
  e.kind = TraceEvent::Kind::Instant;
  e.domain = domain;
  e.pid = pid;
  e.tid = tid;
  e.start = ts;
  e.seq = next_seq_++;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceRecorder::counter(Domain domain, int pid, int tid, double ts,
                            std::string name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent e;
  e.kind = TraceEvent::Kind::Counter;
  e.domain = domain;
  e.pid = pid;
  e.tid = tid;
  e.start = ts;
  e.value = value;
  e.seq = next_seq_++;
  e.name = std::move(name);
  e.cat = "counter";
  events_.push_back(std::move(e));
}

void TraceRecorder::flow_point(Domain domain, int pid, int tid, double ts,
                               bool start, int flow_id, std::string name,
                               std::string cat) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent e;
  e.kind = start ? TraceEvent::Kind::FlowStart : TraceEvent::Kind::FlowEnd;
  e.domain = domain;
  e.pid = pid;
  e.tid = tid;
  e.start = ts;
  e.flow_id = flow_id;
  e.seq = next_seq_++;
  e.name = std::move(name);
  e.cat = std::move(cat);
  events_.push_back(std::move(e));
}

void TraceRecorder::bump(const std::string& metric, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_[metric] += delta;
}

void TraceRecorder::set_metric(const std::string& metric, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_[metric] = value;
}

double TraceRecorder::metric(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  return it == metrics_.end() ? 0.0 : it->second;
}

std::map<std::string, double> TraceRecorder::metrics_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

double TraceRecorder::wall_now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  metrics_.clear();
  next_seq_ = 0;
}

std::string TraceRecorder::to_chrome_json(const ExportOptions& options) const {
  // Snapshot under the lock, render outside it.
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
  }
  if (!options.include_wall) {
    events.erase(std::remove_if(events.begin(), events.end(),
                                [](const TraceEvent& e) {
                                  return e.domain == Domain::Wall;
                                }),
                 events.end());
  }
  // Deterministic ordering: thread interleaving during recording must
  // not leak into the artifact.
  std::vector<long long> ts(events.size());
  std::vector<std::size_t> order(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    ts[i] = ts_micros(events[i].domain, events[i].start);
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (ts[a] != ts[b]) return ts[a] < ts[b];
                     if (events[a].pid != events[b].pid)
                       return events[a].pid < events[b].pid;
                     if (events[a].tid != events[b].tid)
                       return events[a].tid < events[b].tid;
                     return events[a].seq < events[b].seq;
                   });

  std::ostringstream out;
  out << "[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
    out << "  ";
  };

  if (options.metadata) {
    std::vector<int> pids;
    for (const TraceEvent& e : events) pids.push_back(e.pid);
    std::sort(pids.begin(), pids.end());
    pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
    for (int pid : pids) {
      sep();
      out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
          << ", \"tid\": 0, \"args\": {\"name\": \"" << track_label(pid)
          << "\"}}";
      sep();
      out << "{\"name\": \"process_sort_index\", \"ph\": \"M\", \"pid\": "
          << pid << ", \"tid\": 0, \"args\": {\"sort_index\": " << pid
          << "}}";
    }
  }

  for (std::size_t i : order) {
    const TraceEvent& e = events[i];
    const long long t = ts[i];
    switch (e.kind) {
      case TraceEvent::Kind::Span:
        sep();
        out << "{\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
            << json_escape(e.cat) << "\", \"ph\": \"X\", \"pid\": " << e.pid
            << ", \"tid\": " << e.tid << ", \"ts\": " << t
            << ", \"dur\": " << ts_micros(e.domain, e.end - e.start)
            << ", \"args\": {" << e.args << "}}";
        break;
      case TraceEvent::Kind::Instant:
        sep();
        out << "{\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
            << json_escape(e.cat)
            << "\", \"ph\": \"i\", \"s\": \"t\", \"pid\": " << e.pid
            << ", \"tid\": " << e.tid << ", \"ts\": " << t
            << ", \"args\": {" << e.args << "}}";
        break;
      case TraceEvent::Kind::Counter:
        sep();
        out << "{\"name\": \"" << json_escape(e.name)
            << "\", \"cat\": \"counter\", \"ph\": \"C\", \"pid\": " << e.pid
            << ", \"tid\": " << e.tid << ", \"ts\": " << t
            << ", \"args\": {\"value\": " << json_number(e.value) << "}}";
        break;
      case TraceEvent::Kind::FlowStart:
      case TraceEvent::Kind::FlowEnd:
        sep();
        out << "{\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
            << json_escape(e.cat) << "\", \"ph\": \""
            << (e.kind == TraceEvent::Kind::FlowStart ? 's' : 'f')
            << "\", \"id\": " << e.flow_id << ", \"pid\": " << e.pid
            << ", \"tid\": " << e.tid << ", \"ts\": " << t << "}";
        break;
    }
  }
  out << "\n]\n";
  return out.str();
}

std::string TraceRecorder::metrics_json() const {
  std::map<std::string, double> metrics;
  {
    std::lock_guard<std::mutex> lock(mu_);
    metrics = metrics_;
  }
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [key, value] : metrics) {
    out << (first ? "\n" : ",\n") << "  \"" << json_escape(key)
        << "\": " << json_number(value);
    first = false;
  }
  out << (first ? "}" : "\n}") << "\n";
  return out.str();
}

TraceRecorder* current() { return t_current; }

ScopedRecorder::ScopedRecorder(TraceRecorder& rec) : prev_(t_current) {
  t_current = &rec;
}

ScopedRecorder::~ScopedRecorder() { t_current = prev_; }

}  // namespace banger::obs
