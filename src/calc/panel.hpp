// banger/calc/panel.hpp
//
// A headless model of the calculator panel in the paper's Figure 4: the
// upper-right window lists the node's input/output variables, the
// upper-left window its locals, the middle holds the programming-button
// matrix, and the lower window shows the textual routine. Banger's GUI
// built PITS programs by button presses; this class reproduces that
// keystroke-level interaction so tests and examples can drive exactly
// what a user would click.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "pits/interp.hpp"

namespace banger::calc {

/// Physical buttons of the panel. Function/constant/variable buttons are
/// parameterised presses (press_function etc.) since their sets are open.
enum class Key : std::uint8_t {
  D0, D1, D2, D3, D4, D5, D6, D7, D8, D9,
  Dot,
  Plus, Minus, Times, Divide, Power,
  LParen, RParen, LBracket, RBracket, Comma,
  Assign,                 // :=
  Less, LessEq, Greater, GreaterEq, Equal, NotEqual,
  And, Or, Not, Mod,
  If, Then, Elsif, Else, End,
  While, Do,
  Repeat, TimesWord,
  For, To, Step,
  Return,
  Enter,                  // newline
};

/// The keycap text of a button ("7", ":=", "while", ...).
std::string_view keycap(Key key) noexcept;

/// The button matrix as drawn on the panel, row by row (for rendering
/// the panel in the Fig. 4 bench and the calculator REPL example).
const std::vector<std::vector<Key>>& panel_layout();

/// Outcome of pressing "=" (trial run).
struct TrialResult {
  bool ok = false;
  std::string error;        ///< set when !ok
  pits::Env env;            ///< final variable bindings
  std::string transcript;   ///< everything print() emitted
};

class CalculatorPanel {
 public:
  explicit CalculatorPanel(std::string task_name = "task");

  [[nodiscard]] const std::string& task_name() const noexcept { return name_; }

  // --- variable windows ---
  void declare_input(const std::string& name);
  void declare_output(const std::string& name);
  void declare_local(const std::string& name);
  [[nodiscard]] const std::vector<std::string>& inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] const std::vector<std::string>& outputs() const noexcept {
    return outputs_;
  }
  [[nodiscard]] const std::vector<std::string>& locals() const noexcept {
    return locals_;
  }

  // --- program construction (the lower window) ---
  void press(Key key);
  /// Function button: inserts `name(`. Throws Error{Name} for unknown
  /// functions (there is no such button to press).
  void press_function(const std::string& name);
  /// Constant button: inserts the constant's name.
  void press_constant(const std::string& name);
  /// Click on a variable in one of the windows; must be declared.
  void press_variable(const std::string& name);
  /// Free typing into the program window (power users).
  void type(std::string_view text);
  /// Deletes the last keystroke's text.
  void backspace();
  void clear();

  [[nodiscard]] const std::string& program_text() const noexcept {
    return text_;
  }
  /// Replaces the whole program (loading an existing node).
  void set_program_text(std::string text);

  // --- feedback ---
  /// Parse + lint: undeclared reads, outputs never assigned. Empty means
  /// clean; parse errors come back as a single message.
  [[nodiscard]] std::vector<std::string> lint() const;

  /// The "=" key: parses and runs the routine against the provided input
  /// bindings (locals start undefined). Never throws; errors are
  /// reported in the result, as a GUI would show them.
  [[nodiscard]] TrialResult trial_run(const pits::Env& input_values,
                                      const pits::ExecOptions& options = {}) const;

  /// Batched "=" presses: one trial per input binding set, in order.
  /// Parses and compiles the routine once for the whole sweep (the GUI's
  /// parameter-sweep gesture), so per-trial cost is execution only. Each
  /// element is exactly what trial_run would have returned.
  [[nodiscard]] std::vector<TrialResult> trial_sweep(
      const std::vector<pits::Env>& input_sets,
      const pits::ExecOptions& options = {}) const;

  /// Exports the panel's state as a PITL task node.
  [[nodiscard]] graph::Node to_node(double work = 1.0) const;
  /// Loads a PITL task node into the panel.
  static CalculatorPanel from_node(const graph::Node& node);

  /// ASCII rendering of the whole panel (both variable windows, button
  /// matrix, program window) — the Fig. 4 reproduction.
  [[nodiscard]] std::string render() const;

 private:
  void append(std::string_view piece, bool keyword_spacing);
  /// Parses the program window on demand. The result is cached until the
  /// text changes, so lint() and repeated trial runs (the "=" key is the
  /// panel's hot path) parse and compile the routine once instead of per
  /// press. Throws Error{Parse} on malformed text (never cached).
  [[nodiscard]] const pits::Program& parsed() const;

  std::string name_;
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
  std::vector<std::string> locals_;
  std::string text_;
  std::vector<std::size_t> undo_;  ///< text length before each keystroke
  mutable std::shared_ptr<const pits::Program> parsed_cache_;
};

}  // namespace banger::calc
