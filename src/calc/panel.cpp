#include "calc/panel.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "analyze/absint.hpp"
#include "pits/builtins.hpp"
#include "util/strings.hpp"

namespace banger::calc {

std::string_view keycap(Key key) noexcept {
  switch (key) {
    case Key::D0: return "0";
    case Key::D1: return "1";
    case Key::D2: return "2";
    case Key::D3: return "3";
    case Key::D4: return "4";
    case Key::D5: return "5";
    case Key::D6: return "6";
    case Key::D7: return "7";
    case Key::D8: return "8";
    case Key::D9: return "9";
    case Key::Dot: return ".";
    case Key::Plus: return "+";
    case Key::Minus: return "-";
    case Key::Times: return "*";
    case Key::Divide: return "/";
    case Key::Power: return "^";
    case Key::LParen: return "(";
    case Key::RParen: return ")";
    case Key::LBracket: return "[";
    case Key::RBracket: return "]";
    case Key::Comma: return ",";
    case Key::Assign: return ":=";
    case Key::Less: return "<";
    case Key::LessEq: return "<=";
    case Key::Greater: return ">";
    case Key::GreaterEq: return ">=";
    case Key::Equal: return "=";
    case Key::NotEqual: return "<>";
    case Key::And: return "and";
    case Key::Or: return "or";
    case Key::Not: return "not";
    case Key::Mod: return "mod";
    case Key::If: return "if";
    case Key::Then: return "then";
    case Key::Elsif: return "elsif";
    case Key::Else: return "else";
    case Key::End: return "end";
    case Key::While: return "while";
    case Key::Do: return "do";
    case Key::Repeat: return "repeat";
    case Key::TimesWord: return "times";
    case Key::For: return "for";
    case Key::To: return "to";
    case Key::Step: return "step";
    case Key::Return: return "return";
    case Key::Enter: return "\n";
  }
  return "?";
}

const std::vector<std::vector<Key>>& panel_layout() {
  static const std::vector<std::vector<Key>> rows = {
      {Key::D7, Key::D8, Key::D9, Key::Divide, Key::LParen, Key::RParen},
      {Key::D4, Key::D5, Key::D6, Key::Times, Key::LBracket, Key::RBracket},
      {Key::D1, Key::D2, Key::D3, Key::Minus, Key::Less, Key::Greater},
      {Key::D0, Key::Dot, Key::Comma, Key::Plus, Key::LessEq, Key::GreaterEq},
      {Key::Assign, Key::Equal, Key::NotEqual, Key::Power, Key::And, Key::Or},
      {Key::If, Key::Then, Key::Elsif, Key::Else, Key::End, Key::Not},
      {Key::While, Key::Do, Key::Repeat, Key::TimesWord, Key::Mod, Key::Enter},
      {Key::For, Key::To, Key::Step, Key::Return},
  };
  return rows;
}

CalculatorPanel::CalculatorPanel(std::string task_name)
    : name_(std::move(task_name)) {}

namespace {
void declare(std::vector<std::string>& list, const std::string& name,
             const char* what) {
  if (!banger::util::is_identifier(name)) {
    banger::fail(banger::ErrorCode::Name,
                 std::string(what) + " `" + name + "` is not a valid identifier");
  }
  if (std::find(list.begin(), list.end(), name) != list.end()) {
    banger::fail(banger::ErrorCode::Name,
                 std::string(what) + " `" + name + "` already declared");
  }
  list.push_back(name);
}
}  // namespace

void CalculatorPanel::declare_input(const std::string& name) {
  declare(inputs_, name, "input");
}
void CalculatorPanel::declare_output(const std::string& name) {
  declare(outputs_, name, "output");
}
void CalculatorPanel::declare_local(const std::string& name) {
  declare(locals_, name, "local");
}

void CalculatorPanel::append(std::string_view piece, bool keyword_spacing) {
  parsed_cache_.reset();
  undo_.push_back(text_.size());
  if (keyword_spacing && !text_.empty() && text_.back() != '\n' &&
      text_.back() != ' ' && text_.back() != '(') {
    text_ += ' ';
  }
  text_ += piece;
}

void CalculatorPanel::press(Key key) {
  const std::string_view cap = keycap(key);
  if (key == Key::Enter) {
    parsed_cache_.reset();
    undo_.push_back(text_.size());
    text_ += '\n';
    return;
  }
  const bool word = std::isalpha(static_cast<unsigned char>(cap.front())) != 0;
  const bool digit = std::isdigit(static_cast<unsigned char>(cap.front())) != 0 ||
                     key == Key::Dot;
  if (digit) {
    // Digits chain without spaces but separate from preceding words and
    // operator glyphs ("x := 12.5", not "x :=12.5").
    parsed_cache_.reset();
    undo_.push_back(text_.size());
    const char prev = text_.empty() ? '\n' : text_.back();
    const bool glue = std::isdigit(static_cast<unsigned char>(prev)) != 0 ||
                      prev == '.' || prev == '(' || prev == '[' ||
                      prev == ' ' || prev == '\n';
    if (!glue) text_ += ' ';
    text_ += cap;
    return;
  }
  append(cap, /*keyword_spacing=*/word || key == Key::Assign ||
                  key == Key::Plus || key == Key::Minus || key == Key::Times ||
                  key == Key::Divide || key == Key::Power || key == Key::Less ||
                  key == Key::LessEq || key == Key::Greater ||
                  key == Key::GreaterEq || key == Key::Equal ||
                  key == Key::NotEqual);
}

void CalculatorPanel::press_function(const std::string& name) {
  if (pits::BuiltinRegistry::instance().find(name) == nullptr) {
    fail(ErrorCode::Name, "no function button `" + name + "` on the panel");
  }
  append(name + "(", /*keyword_spacing=*/true);
}

void CalculatorPanel::press_constant(const std::string& name) {
  if (!pits::constants().contains(name)) {
    fail(ErrorCode::Name, "no constant button `" + name + "` on the panel");
  }
  append(name, /*keyword_spacing=*/true);
}

void CalculatorPanel::press_variable(const std::string& name) {
  auto declared = [&](const std::vector<std::string>& list) {
    return std::find(list.begin(), list.end(), name) != list.end();
  };
  if (!declared(inputs_) && !declared(outputs_) && !declared(locals_)) {
    fail(ErrorCode::Name, "variable `" + name + "` is not in any window");
  }
  append(name, /*keyword_spacing=*/true);
}

void CalculatorPanel::type(std::string_view text) {
  parsed_cache_.reset();
  undo_.push_back(text_.size());
  text_ += text;
}

void CalculatorPanel::backspace() {
  if (undo_.empty()) return;
  parsed_cache_.reset();
  text_.resize(undo_.back());
  undo_.pop_back();
}

void CalculatorPanel::clear() {
  parsed_cache_.reset();
  text_.clear();
  undo_.clear();
}

void CalculatorPanel::set_program_text(std::string text) {
  parsed_cache_.reset();
  text_ = std::move(text);
  undo_.clear();
}

const pits::Program& CalculatorPanel::parsed() const {
  if (!parsed_cache_) {
    parsed_cache_ =
        std::make_shared<const pits::Program>(pits::Program::parse(text_));
    // Trial runs get the same analysis-optimised bytecode as the
    // executor, so "=" previews and whole-program runs agree on speed.
    analyze::precompile_optimized(*parsed_cache_);
  }
  return *parsed_cache_;
}

std::vector<std::string> CalculatorPanel::lint() const {
  std::vector<std::string> issues;
  const pits::Program* program = nullptr;
  try {
    program = &parsed();
  } catch (const Error& e) {
    issues.push_back(e.what());
    return issues;
  }

  auto declared = [&](const std::string& name) {
    auto in = [&](const std::vector<std::string>& list) {
      return std::find(list.begin(), list.end(), name) != list.end();
    };
    return in(inputs_) || in(outputs_) || in(locals_);
  };
  for (const std::string& name : program->inputs()) {
    if (!declared(name)) {
      issues.push_back("reads `" + name + "`, which is in no variable window");
    }
  }
  const auto assigned = program->outputs();
  for (const std::string& out : outputs_) {
    if (std::find(assigned.begin(), assigned.end(), out) == assigned.end()) {
      issues.push_back("output `" + out + "` is never assigned");
    }
  }
  return issues;
}

TrialResult CalculatorPanel::trial_run(const pits::Env& input_values,
                                       const pits::ExecOptions& options) const {
  TrialResult result;
  std::ostringstream transcript;
  pits::ExecOptions opts = options;
  opts.out = &transcript;
  result.env = input_values;
  try {
    parsed().execute(result.env, opts);
    result.ok = true;
  } catch (const Error& e) {
    result.ok = false;
    result.error = e.what();
  }
  result.transcript = transcript.str();
  return result;
}

std::vector<TrialResult> CalculatorPanel::trial_sweep(
    const std::vector<pits::Env>& input_sets,
    const pits::ExecOptions& options) const {
  std::vector<TrialResult> results;
  results.reserve(input_sets.size());
  // Hoist the parse: a malformed routine fails every trial with the same
  // message (what per-trial trial_run calls would report), without
  // re-raising per input set.
  const pits::Program* program = nullptr;
  try {
    program = &parsed();
  } catch (const Error& e) {
    for (std::size_t i = 0; i < input_sets.size(); ++i) {
      TrialResult& r = results.emplace_back();
      r.error = e.what();
    }
    return results;
  }
  std::ostringstream transcript;
  for (const pits::Env& inputs : input_sets) {
    TrialResult& result = results.emplace_back();
    transcript.str(std::string());
    pits::ExecOptions opts = options;
    opts.out = &transcript;
    result.env = inputs;
    try {
      program->execute(result.env, opts);
      result.ok = true;
    } catch (const Error& e) {
      result.ok = false;
      result.error = e.what();
    }
    result.transcript = transcript.str();
  }
  return results;
}

graph::Node CalculatorPanel::to_node(double work) const {
  graph::Node node;
  node.kind = graph::NodeKind::Task;
  node.name = name_;
  node.work = work;
  node.pits = text_;
  node.inputs = inputs_;
  node.outputs = outputs_;
  return node;
}

CalculatorPanel CalculatorPanel::from_node(const graph::Node& node) {
  if (node.kind != graph::NodeKind::Task) {
    fail(ErrorCode::Graph,
         "only task nodes can be opened in the calculator");
  }
  CalculatorPanel panel(node.name);
  for (const auto& v : node.inputs) panel.declare_input(v);
  for (const auto& v : node.outputs) {
    // A variable may be both input and output; the output window simply
    // lists it again in the original, so tolerate duplicates here.
    if (std::find(panel.inputs_.begin(), panel.inputs_.end(), v) ==
        panel.inputs_.end()) {
      panel.declare_output(v);
    } else {
      panel.outputs_.push_back(v);
    }
  }
  panel.set_program_text(node.pits);
  return panel;
}

std::string CalculatorPanel::render() const {
  std::ostringstream out;
  const std::string bar(64, '-');
  out << "+" << bar << "+\n";
  auto window = [&](const std::string& title,
                    const std::vector<std::string>& items) {
    out << "| " << util::pad_right(title + ":", 14);
    std::string body = util::join(items, ", ");
    if (body.size() > 46) body = body.substr(0, 43) + "...";
    out << util::pad_right(body, 48) << " |\n";
  };
  out << "| " << util::pad_right("task " + name_, 62) << " |\n";
  out << "+" << bar << "+\n";
  window("locals", locals_);
  window("inputs", inputs_);
  window("outputs", outputs_);
  out << "+" << bar << "+\n";
  for (const auto& row : panel_layout()) {
    std::string line = "|";
    for (Key k : row) {
      std::string cap(k == Key::Enter ? "ENTER" : std::string(keycap(k)));
      line += " [" + util::pad_right(cap, 6) + "]";
    }
    out << util::pad_right(line, 65) << " |\n";
  }
  out << "+" << bar << "+\n";
  for (auto line : util::split(text_, '\n')) {
    std::string body(line);
    if (body.size() > 62) body = body.substr(0, 59) + "...";
    out << "| " << util::pad_right(body, 62) << " |\n";
  }
  out << "+" << bar << "+\n";
  return out.str();
}

}  // namespace banger::calc
