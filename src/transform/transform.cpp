#include "transform/transform.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <numeric>
#include <string>

#include "util/error.hpp"

namespace banger::transform {

namespace {

/// Working view during packing: clusters of original tasks.
struct Cluster {
  std::vector<TaskId> members;
  double work = 0.0;
  bool dead = false;
};

struct WorkEdge {
  int from;
  int to;
  double bytes;
};

/// Aggregated inter-cluster edges (parallel edges merged, byte-summed).
std::vector<WorkEdge> cluster_edges(const TaskGraph& graph,
                                    const std::vector<int>& cluster_of) {
  std::map<std::pair<int, int>, double> agg;
  for (const graph::Edge& e : graph.edges()) {
    const int a = cluster_of[e.from];
    const int b = cluster_of[e.to];
    if (a != b) agg[{a, b}] += e.bytes;
  }
  std::vector<WorkEdge> out;
  out.reserve(agg.size());
  for (const auto& [key, bytes] : agg) {
    out.push_back({key.first, key.second, bytes});
  }
  return out;
}

/// True if a path a ->+ b of length >= 2 exists in the cluster graph
/// (i.e. merging a and b along their direct edge would close a cycle).
bool has_indirect_path(const std::vector<WorkEdge>& edges, int num_clusters,
                       int a, int b) {
  std::vector<std::vector<int>> succ(static_cast<std::size_t>(num_clusters));
  for (const WorkEdge& e : edges) {
    succ[static_cast<std::size_t>(e.from)].push_back(e.to);
  }
  std::vector<bool> seen(static_cast<std::size_t>(num_clusters), false);
  std::deque<int> queue;
  for (int s : succ[static_cast<std::size_t>(a)]) {
    if (s != b && !seen[static_cast<std::size_t>(s)]) {
      seen[static_cast<std::size_t>(s)] = true;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    if (u == b) return true;
    for (int s : succ[static_cast<std::size_t>(u)]) {
      if (!seen[static_cast<std::size_t>(s)]) {
        seen[static_cast<std::size_t>(s)] = true;
        queue.push_back(s);
      }
    }
  }
  return seen[static_cast<std::size_t>(b)];
}

std::string grain_name(const TaskGraph& graph,
                       const std::vector<TaskId>& members) {
  if (members.size() == 1) return graph.task(members[0]).name;
  std::string name = "grain_" + graph.task(members[0]).name;
  name += "_x" + std::to_string(members.size());
  return name;
}

}  // namespace

TaskId Transformed::find_origin(TaskId original) const {
  for (TaskId t = 0; t < origin.size(); ++t) {
    for (TaskId o : origin[t]) {
      if (o == original) return t;
    }
  }
  return graph::kNoTask;
}

Transformed pack_grains(const TaskGraph& graph,
                        const machine::Machine& machine,
                        const GrainPackOptions& options) {
  const double speed = machine.params().processor_speed;
  auto time_of = [&](double work) {
    return machine.params().process_startup + work / speed;
  };

  std::vector<Cluster> clusters(graph.num_tasks());
  std::vector<int> cluster_of(graph.num_tasks());
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    clusters[t].members = {t};
    clusters[t].work = graph.task(t).work;
    cluster_of[t] = static_cast<int>(t);
  }

  std::size_t merges = 0;
  for (;;) {
    if (merges >= options.max_merges) break;
    const auto edges = cluster_edges(graph, cluster_of);

    // Smallest live cluster below the grain threshold.
    int small = -1;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      if (clusters[c].dead) continue;
      if (time_of(clusters[c].work) >= options.min_grain_seconds) continue;
      if (small < 0 || clusters[c].work < clusters[static_cast<std::size_t>(
                                              small)].work) {
        small = static_cast<int>(c);
      }
    }
    if (small < 0) break;

    // Heaviest incident edge whose merge is legal.
    std::vector<const WorkEdge*> incident;
    for (const WorkEdge& e : edges) {
      if (e.from == small || e.to == small) incident.push_back(&e);
    }
    std::sort(incident.begin(), incident.end(),
              [](const WorkEdge* a, const WorkEdge* b) {
                if (a->bytes != b->bytes) return a->bytes > b->bytes;
                return std::make_pair(a->from, a->to) <
                       std::make_pair(b->from, b->to);
              });
    bool merged = false;
    for (const WorkEdge* e : incident) {
      const int other = e->from == small ? e->to : e->from;
      const double combined = clusters[static_cast<std::size_t>(small)].work +
                              clusters[static_cast<std::size_t>(other)].work;
      if (time_of(combined) > options.max_grain_seconds) continue;
      if (has_indirect_path(edges, static_cast<int>(clusters.size()), e->from,
                            e->to)) {
        continue;  // would close a cycle
      }
      // Merge `small` into `other` (keep the lower id live for
      // determinism of naming).
      const int keep = std::min(small, other);
      const int drop = std::max(small, other);
      auto& k = clusters[static_cast<std::size_t>(keep)];
      auto& d = clusters[static_cast<std::size_t>(drop)];
      k.members.insert(k.members.end(), d.members.begin(), d.members.end());
      k.work += d.work;
      d.dead = true;
      for (int& c : cluster_of) {
        if (c == drop) c = keep;
      }
      ++merges;
      merged = true;
      break;
    }
    if (!merged) {
      // This small cluster is stuck (every merge illegal/oversized);
      // mark it satisfied by excluding it from future consideration.
      // Bumping min via member trick: temporarily treat as done by
      // setting a flag through work? Simplest: stop if *every* small
      // cluster is stuck — detect by trying them all.
      bool any = false;
      for (std::size_t c = 0; c < clusters.size() && !any; ++c) {
        if (clusters[c].dead || static_cast<int>(c) == small) continue;
        if (time_of(clusters[c].work) >= options.min_grain_seconds) continue;
        for (const WorkEdge& e : edges) {
          const int cc = static_cast<int>(c);
          if (e.from != cc && e.to != cc) continue;
          const int other = e.from == cc ? e.to : e.from;
          const double combined =
              clusters[c].work + clusters[static_cast<std::size_t>(other)].work;
          if (time_of(combined) > options.max_grain_seconds) continue;
          if (!has_indirect_path(edges, static_cast<int>(clusters.size()),
                                 e.from, e.to)) {
            any = true;
            break;
          }
        }
      }
      if (!any) break;
      // Exclude the stuck cluster by inflating a shadow threshold: mark
      // it "done" via a sentinel — simplest is to treat its members as
      // immutable by giving the cluster synthetic extra weight in the
      // candidate search. We encode that by moving it to the back of
      // consideration: give it a tiny work epsilon bump so another
      // cluster becomes "smallest".
      clusters[static_cast<std::size_t>(small)].work +=
          options.min_grain_seconds * speed;  // permanently above threshold
    }
  }

  // ---- rebuild ----
  Transformed out;
  std::vector<int> new_id(clusters.size(), -1);
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    if (clusters[c].dead) continue;
    // Recompute true work from members (the stuck-cluster bump above
    // must not leak into the output).
    double work = 0.0;
    for (TaskId m : clusters[c].members) work += graph.task(m).work;
    std::sort(clusters[c].members.begin(), clusters[c].members.end());
    graph::Task task;
    task.name = grain_name(graph, clusters[c].members);
    task.work = work;
    new_id[c] = static_cast<int>(out.graph.add_task(std::move(task)));
    out.origin.push_back(clusters[c].members);
  }
  for (const WorkEdge& e : cluster_edges(graph, cluster_of)) {
    out.graph.add_edge(static_cast<TaskId>(new_id[static_cast<std::size_t>(
                           e.from)]),
                       static_cast<TaskId>(new_id[static_cast<std::size_t>(
                           e.to)]),
                       e.bytes);
  }
  if (!out.graph.is_acyclic()) {
    fail(ErrorCode::Graph, "grain packing produced a cycle (internal bug)");
  }
  return out;
}

Transformed split_data_parallel(const TaskGraph& graph, TaskId task,
                                int ways) {
  if (task >= graph.num_tasks()) {
    fail(ErrorCode::Graph, "split of unknown task id");
  }
  if (ways < 1 || ways > 4096) {
    fail(ErrorCode::Graph, "split ways must be in [1, 4096]");
  }

  Transformed out;
  std::vector<TaskId> remap(graph.num_tasks(), graph::kNoTask);
  std::vector<TaskId> shards;

  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    const graph::Task& src = graph.task(t);
    if (t == task) {
      for (int k = 0; k < ways; ++k) {
        graph::Task shard;
        shard.name = src.name + "#" + std::to_string(k);
        shard.work = src.work / ways;
        const TaskId id = out.graph.add_task(std::move(shard));
        shards.push_back(id);
        out.origin.push_back({t});
      }
    } else {
      graph::Task copy = src;
      remap[t] = out.graph.add_task(std::move(copy));
      out.origin.push_back({t});
    }
  }
  // origin entries were appended in creation order; fix ordering: they
  // already are (add order == origin push order).

  for (const graph::Edge& e : graph.edges()) {
    const bool from_split = e.from == task;
    const bool to_split = e.to == task;
    if (!from_split && !to_split) {
      out.graph.add_edge(remap[e.from], remap[e.to], e.bytes, e.var);
    } else if (from_split && !to_split) {
      for (TaskId s : shards) {
        out.graph.add_edge(s, remap[e.to], e.bytes / ways, e.var);
      }
    } else if (!from_split && to_split) {
      for (TaskId s : shards) {
        out.graph.add_edge(remap[e.from], s, e.bytes / ways, e.var);
      }
    }
    // from_split && to_split impossible (no self loops).
  }
  return out;
}

Transformed split_heavy_tasks(const TaskGraph& graph,
                              const machine::Machine& machine,
                              double threshold_seconds, int max_ways) {
  if (threshold_seconds <= 0) {
    fail(ErrorCode::Graph, "split threshold must be positive");
  }
  // Split tasks one at a time (ids shift after each split, so we track
  // by name).
  Transformed current;
  current.graph = graph;  // copy
  current.origin.resize(graph.num_tasks());
  for (TaskId t = 0; t < graph.num_tasks(); ++t) current.origin[t] = {t};

  for (;;) {
    TaskId target = graph::kNoTask;
    int ways = 1;
    for (TaskId t = 0; t < current.graph.num_tasks(); ++t) {
      const graph::Task& task = current.graph.task(t);
      if (task.name.find('#') != std::string::npos) continue;  // a shard
      const double time = machine.params().process_startup +
                          task.work / machine.params().processor_speed;
      if (time > threshold_seconds) {
        target = t;
        ways = std::min(
            max_ways,
            static_cast<int>(std::ceil(time / threshold_seconds)));
        break;
      }
    }
    if (target == graph::kNoTask || ways < 2) break;
    Transformed next = split_data_parallel(current.graph, target, ways);
    // Compose origins.
    for (auto& origins : next.origin) {
      std::vector<TaskId> composed;
      for (TaskId mid : origins) {
        const auto& deeper = current.origin[mid];
        composed.insert(composed.end(), deeper.begin(), deeper.end());
      }
      origins = std::move(composed);
    }
    current = std::move(next);
  }
  return current;
}

}  // namespace banger::transform
