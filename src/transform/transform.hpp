// banger/transform/transform.hpp
//
// Graph transformations the paper's lineage and future-work sections
// call for:
//
//  * grain packing (Kruatrachue & Lewis): merge tasks that are too
//    small to pay for their messages into coarser grains *before*
//    scheduling — the complement of the cluster scheduler, applied to
//    the graph itself;
//
//  * data-parallel splitting (the paper's Results §2: Banger "can be
//    extended to encompass fine-grained parallelism through the use of
//    machine-independent data-parallel constructs"): replace a task by
//    k shards, each doing 1/k of the work with 1/k of the traffic.
//
// Both return a new TaskGraph plus a mapping to trace tasks back to the
// original design (for feedback displays).
#pragma once

#include <vector>

#include "graph/task_graph.hpp"
#include "machine/machine.hpp"

namespace banger::transform {

using graph::TaskGraph;
using graph::TaskId;

/// Result of a transformation: the new graph and, for every new task,
/// the list of original task ids it contains (grain packing) or the
/// single original it shards (splitting).
struct Transformed {
  TaskGraph graph;
  std::vector<std::vector<TaskId>> origin;  ///< per new task

  /// New task id holding a given original; kNoTask if absent.
  [[nodiscard]] TaskId find_origin(TaskId original) const;
};

struct GrainPackOptions {
  /// Tasks whose execution time (at nominal machine speed) is below
  /// `min_grain_seconds` are merge candidates.
  double min_grain_seconds = 1.0;
  /// Never grow a grain beyond this execution time.
  double max_grain_seconds = 16.0;
  /// Upper bound on merges (safety valve).
  std::size_t max_merges = 100000;
};

/// Merges small tasks along their heaviest incident edge when doing so
/// cannot create a cycle. Merged tasks execute their constituents
/// back-to-back (work adds, internal traffic disappears); external
/// edges are re-attached with byte counts preserved.
Transformed pack_grains(const TaskGraph& graph,
                        const machine::Machine& machine,
                        const GrainPackOptions& options = {});

/// Splits `task` into `ways` shards: each shard gets work/ways and a
/// 1/ways share of every incoming and outgoing edge's bytes. Shard
/// names are "<name>#i". PITS bodies do not survive splitting (the
/// shards are scheduling placeholders), so this is a planning transform.
Transformed split_data_parallel(const TaskGraph& graph, TaskId task,
                                int ways);

/// Convenience sweep: splits every task whose execution time exceeds
/// `threshold_seconds` into ceil(time/threshold) shards, capped at
/// `max_ways`.
Transformed split_heavy_tasks(const TaskGraph& graph,
                              const machine::Machine& machine,
                              double threshold_seconds, int max_ways = 8);

}  // namespace banger::transform
