#include "codegen/runtime_preamble.hpp"

namespace banger::codegen {

const char* runtime_preamble() {
  return R"PRE(
#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace rt {

struct Val {
  int kind = 0;  // 0 = number, 1 = vector, 2 = string
  double num = 0.0;
  std::vector<double> vec;
  std::string str;
};

inline Val num(double x) { Val v; v.kind = 0; v.num = x; return v; }
inline Val vecv(std::vector<double> x) { Val v; v.kind = 1; v.vec = std::move(x); return v; }
inline Val strv(std::string s) { Val v; v.kind = 2; v.str = std::move(s); return v; }

[[noreturn]] inline void die(const std::string& msg) {
  throw std::runtime_error("runtime error: " + msg);
}

inline double scal(const Val& v) {
  if (v.kind != 0) die("expected a number");
  return v.num;
}
inline const std::vector<double>& vect(const Val& v) {
  if (v.kind != 1) die("expected a vector");
  return v.vec;
}
inline bool truthy(const Val& v) {
  if (v.kind == 0) return v.num != 0.0;
  if (v.kind == 1) return !v.vec.empty();
  return !v.str.empty();
}
inline bool val_eq(const Val& a, const Val& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == 0) return a.num == b.num;
  if (a.kind == 1) return a.vec == b.vec;
  return a.str == b.str;
}

template <typename F>
inline Val zip(const Val& a, const Val& b, F f, const char* opname) {
  if (a.kind == 0 && b.kind == 0) return num(f(a.num, b.num));
  if (a.kind == 1 && b.kind == 1) {
    if (a.vec.size() != b.vec.size()) die("vector length mismatch");
    std::vector<double> out(a.vec.size());
    for (size_t i = 0; i < out.size(); ++i) out[i] = f(a.vec[i], b.vec[i]);
    return vecv(std::move(out));
  }
  if (a.kind == 0 && b.kind == 1) {
    std::vector<double> out = b.vec;
    for (double& x : out) x = f(a.num, x);
    return vecv(std::move(out));
  }
  if (a.kind == 1 && b.kind == 0) {
    std::vector<double> out = a.vec;
    for (double& x : out) x = f(x, b.num);
    return vecv(std::move(out));
  }
  die(std::string("bad operands for ") + opname);
}

inline Val add(const Val& a, const Val& b) {
  if (a.kind == 2 && b.kind == 2) return strv(a.str + b.str);
  return zip(a, b, [](double x, double y) { return x + y; }, "+");
}
inline Val sub(const Val& a, const Val& b) {
  return zip(a, b, [](double x, double y) { return x - y; }, "-");
}
inline Val mul(const Val& a, const Val& b) {
  return zip(a, b, [](double x, double y) { return x * y; }, "*");
}
inline Val divi(const Val& a, const Val& b) {
  return zip(a, b, [](double x, double y) {
    if (y == 0) die("division by zero");
    return x / y;
  }, "/");
}
inline Val mod_(const Val& a, const Val& b) {
  return zip(a, b, [](double x, double y) {
    if (y == 0) die("mod by zero");
    return std::fmod(x, y);
  }, "mod");
}
inline Val pow_(const Val& a, const Val& b) {
  return zip(a, b, [](double x, double y) { return std::pow(x, y); }, "^");
}
inline Val neg(const Val& a) {
  if (a.kind == 0) return num(-a.num);
  if (a.kind == 1) {
    std::vector<double> out = a.vec;
    for (double& x : out) x = -x;
    return vecv(std::move(out));
  }
  die("cannot negate a string");
}
inline int ord(const Val& a, const Val& b) {
  if (a.kind == 0 && b.kind == 0) return a.num < b.num ? -1 : (a.num > b.num ? 1 : 0);
  if (a.kind == 2 && b.kind == 2) { int c = a.str.compare(b.str); return c < 0 ? -1 : (c > 0 ? 1 : 0); }
  die("cannot order these values");
}
inline Val idx(const Val& base, const Val& i) {
  const std::vector<double>& v = vect(base);
  double r = scal(i);
  if (std::floor(r) != r || r < 0 || r >= (double)v.size()) die("index out of range");
  return num(v[(size_t)r]);
}
inline void set_idx(Val& base, const Val& i, const Val& x) {
  if (base.kind != 1) die("indexed assignment to a non-vector");
  double r = scal(i);
  if (std::floor(r) != r || r < 0 || r >= (double)base.vec.size()) die("index out of range");
  base.vec[(size_t)r] = scal(x);
}
inline Val make_vec(std::vector<Val> items) {
  std::vector<double> out;
  out.reserve(items.size());
  for (const Val& v : items) out.push_back(scal(v));
  return vecv(std::move(out));
}

template <double (*F)(double)>
inline Val map1(const Val& a) {
  if (a.kind == 1) {
    std::vector<double> out = a.vec;
    for (double& x : out) x = F(x);
    return vecv(std::move(out));
  }
  return num(F(scal(a)));
}
inline double f_sin(double x) { return std::sin(x); }
inline double f_cos(double x) { return std::cos(x); }
inline double f_tan(double x) { return std::tan(x); }
inline double f_asin(double x) { return std::asin(x); }
inline double f_acos(double x) { return std::acos(x); }
inline double f_atan(double x) { return std::atan(x); }
inline double f_sinh(double x) { return std::sinh(x); }
inline double f_cosh(double x) { return std::cosh(x); }
inline double f_tanh(double x) { return std::tanh(x); }
inline double f_exp(double x) { return std::exp(x); }
inline double f_cbrt(double x) { return std::cbrt(x); }
inline double f_abs(double x) { return std::fabs(x); }
inline double f_floor(double x) { return std::floor(x); }
inline double f_ceil(double x) { return std::ceil(x); }
inline double f_round(double x) { return std::round(x); }
inline double f_trunc(double x) { return std::trunc(x); }
inline double f_frac(double x) { return x - std::trunc(x); }
inline double f_sign(double x) { return x > 0 ? 1.0 : (x < 0 ? -1.0 : 0.0); }
inline double f_deg(double x) { return x * 57.29577951308232; }
inline double f_rad(double x) { return x * 0.017453292519943295; }
inline double f_ln(double x) { if (x <= 0) die("ln of non-positive"); return std::log(x); }
inline double f_log10(double x) { if (x <= 0) die("log10 of non-positive"); return std::log10(x); }
inline double f_log2(double x) { if (x <= 0) die("log2 of non-positive"); return std::log2(x); }
inline double f_sqrt(double x) { if (x < 0) die("sqrt of negative"); return std::sqrt(x); }

inline Val b_min(std::vector<Val> a) { double m = scal(a.at(0)); for (auto& v : a) m = std::min(m, scal(v)); return num(m); }
inline Val b_max(std::vector<Val> a) { double m = scal(a.at(0)); for (auto& v : a) m = std::max(m, scal(v)); return num(m); }
inline Val b_clamp(const Val& x, const Val& lo, const Val& hi) { return num(std::min(std::max(scal(x), scal(lo)), scal(hi))); }
inline double fact_(double n) { if (n < 0 || std::floor(n) != n || n > 170) die("bad fact()"); double r = 1; for (double k = 2; k <= n; ++k) r *= k; return r; }
inline Val b_fact(const Val& n) { return num(fact_(scal(n))); }
inline Val b_ncr(const Val& n, const Val& r) { double N = scal(n), R = scal(r); if (R < 0 || R > N) return num(0); return num(std::round(fact_(N) / (fact_(R) * fact_(N - R)))); }
inline Val b_zeros(const Val& n) { double k = scal(n); if (k < 0 || std::floor(k) != k) die("bad zeros()"); return vecv(std::vector<double>((size_t)k, 0.0)); }
inline Val b_ones(const Val& n) { double k = scal(n); if (k < 0 || std::floor(k) != k) die("bad ones()"); return vecv(std::vector<double>((size_t)k, 1.0)); }
inline Val b_range(std::vector<Val> a) {
  double lo = scal(a.at(0)), hi = scal(a.at(1)), st = a.size() > 2 ? scal(a[2]) : 1.0;
  if (st == 0) die("range() zero step");
  std::vector<double> out;
  if (st > 0) { for (double x = lo; x < hi - 1e-12; x += st) out.push_back(x); }
  else { for (double x = lo; x > hi + 1e-12; x += st) out.push_back(x); }
  return vecv(std::move(out));
}
inline Val b_append(const Val& v, const Val& x) { std::vector<double> out = vect(v); out.push_back(scal(x)); return vecv(std::move(out)); }
inline Val b_concat(const Val& u, const Val& v) { std::vector<double> out = vect(u); const auto& w = vect(v); out.insert(out.end(), w.begin(), w.end()); return vecv(std::move(out)); }
inline Val b_slice(const Val& v, const Val& i, const Val& j) {
  const auto& w = vect(v); double a = scal(i), b = scal(j);
  if (std::floor(a) != a || std::floor(b) != b || a < 0 || b > (double)w.size() || a > b) die("slice() bounds");
  return vecv(std::vector<double>(w.begin() + (size_t)a, w.begin() + (size_t)b));
}
inline Val b_reverse(const Val& v) { std::vector<double> out = vect(v); std::reverse(out.begin(), out.end()); return vecv(std::move(out)); }
inline Val b_sort(const Val& v) { std::vector<double> out = vect(v); std::sort(out.begin(), out.end()); return vecv(std::move(out)); }
inline Val b_set(const Val& v, const Val& i, const Val& x) { Val out = v; set_idx(out, i, x); return out; }
inline Val b_get(const Val& v, const Val& i) { return idx(v, i); }
inline Val b_len(const Val& v) { if (v.kind == 2) return num((double)v.str.size()); return num((double)vect(v).size()); }
inline Val b_sum(const Val& v) { const auto& w = vect(v); return num(std::accumulate(w.begin(), w.end(), 0.0)); }
inline Val b_prod(const Val& v) { const auto& w = vect(v); double r = 1; for (double x : w) r *= x; return num(r); }
inline Val b_mean(const Val& v) { const auto& w = vect(v); if (w.empty()) die("mean() of empty"); return num(std::accumulate(w.begin(), w.end(), 0.0) / (double)w.size()); }
inline Val b_stddev(const Val& v) { const auto& w = vect(v); if (w.empty()) die("stddev() of empty"); double m = std::accumulate(w.begin(), w.end(), 0.0) / (double)w.size(); double acc = 0; for (double x : w) acc += (x - m) * (x - m); return num(std::sqrt(acc / (double)w.size())); }
inline Val b_minv(const Val& v) { const auto& w = vect(v); if (w.empty()) die("minv() of empty"); return num(*std::min_element(w.begin(), w.end())); }
inline Val b_maxv(const Val& v) { const auto& w = vect(v); if (w.empty()) die("maxv() of empty"); return num(*std::max_element(w.begin(), w.end())); }
inline Val b_dot(const Val& u, const Val& v) { const auto& a = vect(u); const auto& b = vect(v); if (a.size() != b.size()) die("dot() length mismatch"); return num(std::inner_product(a.begin(), a.end(), b.begin(), 0.0)); }
inline Val b_norm(const Val& v) { const auto& w = vect(v); double acc = 0; for (double x : w) acc += x * x; return num(std::sqrt(acc)); }
inline Val b_hypot(const Val& x, const Val& y) { return num(std::hypot(scal(x), scal(y))); }
inline Val b_atan2(const Val& y, const Val& x) { return num(std::atan2(scal(y), scal(x))); }
inline Val b_pow(const Val& x, const Val& y) { return num(std::pow(scal(x), scal(y))); }

// xoshiro256** — identical to the interpreter's rand() stream.
struct Rng {
  uint64_t s[4];
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& w : s) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      w = z ^ (z >> 31);
    }
  }
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t next() {
    uint64_t r = rotl(s[1] * 5, 7) * 9, t = s[1] << 17;
    s[2] ^= s[0]; s[3] ^= s[1]; s[1] ^= s[2]; s[0] ^= s[3]; s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return r;
  }
  double uniform() { return (double)(next() >> 11) * 0x1.0p-53; }
};
inline Val b_rand(Rng& rng) { return num(rng.uniform()); }

inline std::string display(const Val& v) {
  char buf[64];
  if (v.kind == 0) { std::snprintf(buf, sizeof buf, "%.12g", v.num); return buf; }
  if (v.kind == 2) return v.str;
  std::string out = "[";
  for (size_t i = 0; i < v.vec.size(); ++i) {
    if (i) out += ", ";
    std::snprintf(buf, sizeof buf, "%.12g", v.vec[i]);
    out += buf;
  }
  return out + "]";
}
inline std::mutex& io_mutex() { static std::mutex m; return m; }
inline Val b_print(std::vector<Val> args) {
  std::lock_guard<std::mutex> lock(io_mutex());
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) std::fputc(' ', stdout);
    std::fputs(display(args[i]).c_str(), stdout);
  }
  std::fputc('\n', stdout);
  return num(0);
}
inline Val b_str(const Val& v) { return strv(display(v)); }

}  // namespace rt
)PRE";
}

}  // namespace banger::codegen
