// banger/codegen/runtime_preamble.hpp
//
// The fixed runtime preamble embedded into every generated program: a
// minimal Val type mirroring PITS semantics (scalars, vectors, strings,
// broadcasting arithmetic) plus the calculator builtins and the
// mailbox/synchronisation helpers. Kept in its own header so tests can
// assert properties of the emitted runtime without regenerating it.
#pragma once

namespace banger::codegen {

/// Returns the preamble text (C++17, no external dependencies).
const char* runtime_preamble();

}  // namespace banger::codegen
