#include "codegen/codegen.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "codegen/runtime_preamble.hpp"
#include "pits/ast.hpp"
#include "pits/builtins.hpp"
#include "pits/interp.hpp"
#include "util/strings.hpp"

namespace banger::codegen {

namespace {

using graph::TaskId;
using pits::Block;
using pits::Expr;
using pits::Stmt;

std::string mangle(const std::string& var) { return "v_" + var; }

/// Same per-task seed derivation as the executor, so generated programs
/// and interpreted runs agree on rand() streams.
std::uint64_t seed_for(const std::string& task_name, std::uint64_t base) {
  return util::fnv1a64(task_name, 1469598103934665603ull ^ base);
}

std::string cpp_string_literal(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out + "\"";
}

std::string cpp_double(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  std::string s = out.str();
  if (s.find_first_of(".eEn") == std::string::npos) s += ".0";
  return s;
}

std::string emit_value(const pits::Value& v) {
  if (v.is_scalar()) return "rt::num(" + cpp_double(v.as_scalar()) + ")";
  if (v.is_string()) return "rt::strv(" + cpp_string_literal(v.as_string()) + ")";
  std::string out = "rt::vecv({";
  const auto& vec = v.as_vector();
  for (std::size_t i = 0; i < vec.size(); ++i) {
    if (i > 0) out += ", ";
    out += cpp_double(vec[i]);
  }
  return out + "})";
}

/// Builtins whose translation is rt::map1<rt::f_NAME>(arg).
const std::set<std::string>& unary_math() {
  static const std::set<std::string> set = {
      "sin",  "cos",  "tan",   "asin",  "acos",  "atan", "sinh", "cosh",
      "tanh", "exp",  "cbrt",  "abs",   "floor", "ceil", "round",
      "trunc", "frac", "sign", "deg",   "rad",   "ln",   "log10", "log2",
      "sqrt"};
  return set;
}

/// Builtins translated as rt::b_NAME(arg, ...) with fixed arity.
const std::set<std::string>& fixed_builtins() {
  static const std::set<std::string> set = {
      "pow",    "hypot",  "atan2", "clamp", "fact", "ncr",   "zeros",
      "ones",   "append", "concat", "slice", "reverse", "sort", "set",
      "get",    "len",    "sum",   "prod",  "mean", "stddev", "minv",
      "maxv",   "dot",    "norm",  "str"};
  return set;
}

class Emitter {
 public:
  explicit Emitter(const graph::Task& task) : task_(task) {}

  [[nodiscard]] bool uses_rng() const noexcept { return uses_rng_; }

  std::string expr(const Expr& e) {
    return std::visit(
        [&](const auto& node) -> std::string {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, pits::NumberLit>) {
            return "rt::num(" + cpp_double(node.value) + ")";
          } else if constexpr (std::is_same_v<T, pits::StringLit>) {
            return "rt::strv(" + cpp_string_literal(node.value) + ")";
          } else if constexpr (std::is_same_v<T, pits::VarRef>) {
            if (declared_.contains(node.name)) return mangle(node.name);
            if (auto c = pits::constants().find(node.name);
                c != pits::constants().end()) {
              return "rt::num(" + cpp_double(c->second) + ")";
            }
            fail(ErrorCode::Name,
                 "task `" + task_.name + "` reads undefined variable `" +
                     node.name + "`");
          } else if constexpr (std::is_same_v<T, pits::VectorLit>) {
            std::string out = "rt::make_vec({";
            for (std::size_t i = 0; i < node.elements.size(); ++i) {
              if (i > 0) out += ", ";
              out += expr(*node.elements[i]);
            }
            return out + "})";
          } else if constexpr (std::is_same_v<T, pits::Unary>) {
            if (node.op == pits::UnOp::Not) {
              return "rt::num(rt::truthy(" + expr(*node.operand) +
                     ") ? 0.0 : 1.0)";
            }
            return "rt::neg(" + expr(*node.operand) + ")";
          } else if constexpr (std::is_same_v<T, pits::Binary>) {
            return binary(node);
          } else if constexpr (std::is_same_v<T, pits::Index>) {
            return "rt::idx(" + expr(*node.base) + ", " + expr(*node.index) +
                   ")";
          } else if constexpr (std::is_same_v<T, pits::Call>) {
            return call(node);
          }
        },
        e.node);
  }

  std::string binary(const pits::Binary& node) {
    const std::string a = expr(*node.lhs);
    const std::string b_src = expr(*node.rhs);
    using pits::BinOp;
    switch (node.op) {
      case BinOp::Add: return "rt::add(" + a + ", " + b_src + ")";
      case BinOp::Sub: return "rt::sub(" + a + ", " + b_src + ")";
      case BinOp::Mul: return "rt::mul(" + a + ", " + b_src + ")";
      case BinOp::Div: return "rt::divi(" + a + ", " + b_src + ")";
      case BinOp::Mod: return "rt::mod_(" + a + ", " + b_src + ")";
      case BinOp::Pow: return "rt::pow_(" + a + ", " + b_src + ")";
      case BinOp::Eq:
        return "rt::num(rt::val_eq(" + a + ", " + b_src + ") ? 1.0 : 0.0)";
      case BinOp::Ne:
        return "rt::num(rt::val_eq(" + a + ", " + b_src + ") ? 0.0 : 1.0)";
      case BinOp::Lt:
        return "rt::num(rt::ord(" + a + ", " + b_src + ") < 0 ? 1.0 : 0.0)";
      case BinOp::Le:
        return "rt::num(rt::ord(" + a + ", " + b_src + ") <= 0 ? 1.0 : 0.0)";
      case BinOp::Gt:
        return "rt::num(rt::ord(" + a + ", " + b_src + ") > 0 ? 1.0 : 0.0)";
      case BinOp::Ge:
        return "rt::num(rt::ord(" + a + ", " + b_src + ") >= 0 ? 1.0 : 0.0)";
      case BinOp::And:
        return "rt::num(rt::truthy(" + a + ") ? (rt::truthy(" + b_src +
               ") ? 1.0 : 0.0) : 0.0)";
      case BinOp::Or:
        return "rt::num(rt::truthy(" + a + ") ? 1.0 : (rt::truthy(" + b_src +
               ") ? 1.0 : 0.0))";
    }
    fail(ErrorCode::Generic, "unhandled binary operator");
  }

  std::string call(const pits::Call& node) {
    std::vector<std::string> args;
    args.reserve(node.args.size());
    for (const auto& a : node.args) args.push_back(expr(*a));

    if (node.callee == "when") {
      if (args.size() != 3) {
        fail(ErrorCode::Type, "when() expects (condition, then, else)");
      }
      // Lazy branches, like the interpreter.
      return "(rt::truthy(" + args[0] + ") ? (" + args[1] + ") : (" +
             args[2] + "))";
    }
    if (formulas_.contains(node.callee)) {
      std::string out = "fx_" + node.callee + "(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i];
      }
      return out + ")";
    }

    auto variadic = [&](const std::string& fn) {
      std::string out = "rt::" + fn + "({";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i];
      }
      return out + "})";
    };

    if (unary_math().contains(node.callee) && args.size() == 1) {
      return "rt::map1<rt::f_" + node.callee + ">(" + args[0] + ")";
    }
    if (fixed_builtins().contains(node.callee)) {
      std::string out = "rt::b_" + node.callee + "(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i];
      }
      return out + ")";
    }
    if (node.callee == "min") return variadic("b_min");
    if (node.callee == "max") return variadic("b_max");
    if (node.callee == "range") return variadic("b_range");
    if (node.callee == "print") return variadic("b_print");
    if (node.callee == "rand") {
      uses_rng_ = true;
      return "rt::b_rand(rng)";
    }
    fail(ErrorCode::Name, "task `" + task_.name +
                              "` calls `" + node.callee +
                              "`, which has no C++ mapping");
  }

  void stmt(const Stmt& s, int indent, std::string& out) {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, pits::AssignStmt>) {
            declared_.insert(node.target);
            if (node.index) {
              out += pad + "rt::set_idx(" + mangle(node.target) + ", " +
                     expr(*node.index) + ", " + expr(*node.value) + ");\n";
            } else {
              out += pad + mangle(node.target) + " = " + expr(*node.value) +
                     ";\n";
            }
          } else if constexpr (std::is_same_v<T, pits::IfStmt>) {
            for (std::size_t i = 0; i < node.arms.size(); ++i) {
              out += pad + (i == 0 ? "if" : "} else if");
              out += " (rt::truthy(" + expr(*node.arms[i].cond) + ")) {\n";
              block(node.arms[i].body, indent + 1, out);
            }
            if (!node.else_body.empty()) {
              out += pad + "} else {\n";
              block(node.else_body, indent + 1, out);
            }
            out += pad + "}\n";
          } else if constexpr (std::is_same_v<T, pits::WhileStmt>) {
            out += pad + "while (rt::truthy(" + expr(*node.cond) + ")) {\n";
            block(node.body, indent + 1, out);
            out += pad + "}\n";
          } else if constexpr (std::is_same_v<T, pits::RepeatStmt>) {
            const std::string counter = "rep" + std::to_string(temp_++);
            out += pad + "for (double " + counter + " = rt::scal(" +
                   expr(*node.count) + "); " + counter + " > 0; --" +
                   counter + ") {\n";
            block(node.body, indent + 1, out);
            out += pad + "}\n";
          } else if constexpr (std::is_same_v<T, pits::ForStmt>) {
            declared_.insert(node.var);
            const std::string limit = "lim" + std::to_string(temp_++);
            const std::string step = "stp" + std::to_string(temp_++);
            const std::string iter = "it" + std::to_string(temp_++);
            out += pad + "{ const double " + limit + " = rt::scal(" +
                   expr(*node.to) + ");\n";
            out += pad + "  const double " + step + " = " +
                   (node.step ? "rt::scal(" + expr(*node.step) + ")"
                              : std::string("1.0")) +
                   ";\n";
            out += pad + "  if (" + step + " == 0) rt::die(\"for loop with zero step\");\n";
            out += pad + "  for (double " + iter + " = rt::scal(" +
                   expr(*node.from) + "); " + step + " > 0 ? (" + iter +
                   " <= " + limit + " + 1e-12) : (" + iter + " >= " + limit +
                   " - 1e-12); " + iter + " += " + step + ") {\n";
            out += pad + "    " + mangle(node.var) + " = rt::num(" + iter +
                   ");\n";
            block(node.body, indent + 2, out);
            out += pad + "  }\n" + pad + "}\n";
          } else if constexpr (std::is_same_v<T, pits::ReturnStmt>) {
            out += pad + "return;\n";
          } else if constexpr (std::is_same_v<T, pits::FormulaDef>) {
            formulas_.insert(node.name);
            // Recursive formulas need a named object, so bind through a
            // std::function declared before its own body.
            std::string sig = "rt::Val(";
            std::string params;
            for (std::size_t i = 0; i < node.params.size(); ++i) {
              if (i > 0) {
                sig += ", ";
                params += ", ";
              }
              sig += "rt::Val";
              params += "rt::Val " + mangle(node.params[i]);
            }
            sig += ")";
            out += pad + "std::function<" + sig + "> fx_" + node.name +
                   ";\n";
            // The body sees only the parameters (and constants).
            const std::set<std::string> saved = declared_;
            declared_.clear();
            for (const auto& param : node.params) declared_.insert(param);
            const std::string body = expr(*node.body);
            declared_ = saved;
            out += pad + "fx_" + node.name + " = [&](" + params +
                   ") -> rt::Val { return " + body + "; };\n";
          } else if constexpr (std::is_same_v<T, pits::ExprStmt>) {
            out += pad + "(void)" + expr(*node.expr) + ";\n";
          }
        },
        s.node);
  }

  void block(const Block& body, int indent, std::string& out) {
    for (const auto& s : body) stmt(*s, indent, out);
  }

  void declare(const std::string& name) { declared_.insert(name); }

 private:
  const graph::Task& task_;
  std::set<std::string> declared_;
  std::set<std::string> formulas_;
  bool uses_rng_ = false;
  int temp_ = 0;
};

}  // namespace

std::string generate_cpp(const graph::FlattenResult& flat,
                         const sched::Schedule& schedule,
                         const std::map<std::string, pits::Value>& inputs,
                         const CodegenOptions& options) {
  const graph::TaskGraph& g = flat.graph;
  std::ostringstream out;
  out << "// " << options.banner << "\n";
  out << "// tasks: " << g.num_tasks() << ", processors: "
      << schedule.num_procs() << ", scheduler: " << schedule.scheduler_name()
      << "\n";
  out << runtime_preamble();

  // ---- mailbox globals ----
  out << "\nstatic const int N_TASKS = " << g.num_tasks() << ";\n";
  out << R"(static std::mutex g_m;
static std::condition_variable g_cv;
static std::vector<int> g_done(static_cast<size_t>(N_TASKS), 0);
static std::vector<std::map<std::string, rt::Val>> g_out(static_cast<size_t>(N_TASKS));

static rt::Val fetch(int task, const char* var) {
  std::unique_lock<std::mutex> lock(g_m);
  g_cv.wait(lock, [&] { return g_done[static_cast<size_t>(task)] != 0; });
  auto it = g_out[static_cast<size_t>(task)].find(var);
  if (it == g_out[static_cast<size_t>(task)].end())
    rt::die(std::string("task produced no variable ") + var);
  return it->second;
}

static void publish(int task, std::map<std::string, rt::Val> outs) {
  std::lock_guard<std::mutex> lock(g_m);
  if (!g_done[static_cast<size_t>(task)]) {
    g_out[static_cast<size_t>(task)] = std::move(outs);
    g_done[static_cast<size_t>(task)] = 1;
  }
  g_cv.notify_all();
}
)";

  // ---- per-task functions ----
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    const graph::Task& task = g.task(t);
    Block body;
    if (!util::trim(task.pits).empty()) {
      body = pits::parse_block(task.pits);
    } else if (!task.outputs.empty()) {
      fail(ErrorCode::Generic, "task `" + task.name +
                                   "` declares outputs but has no routine");
    }

    Emitter emitter(task);
    out << "\n// task " << t << ": " << task.name << "\n";
    out << "static void task_" << t << "() {\n";

    // Bind inputs: labelled edge, then any producing predecessor, then an
    // external input store (baked in).
    for (const std::string& var : task.inputs) {
      std::string source;
      for (graph::EdgeId e : g.in_edges(t)) {
        const graph::Edge& edge = g.edge(e);
        bool carries = false;
        for (auto part : util::split(edge.var, ','))
          if (util::trim(part) == var) carries = true;
        const auto& outputs = g.task(edge.from).outputs;
        const bool produces = std::find(outputs.begin(), outputs.end(),
                                        var) != outputs.end();
        if (carries && produces) {
          source = "fetch(" + std::to_string(edge.from) + ", \"" + var + "\")";
          break;
        }
        if (produces && source.empty()) {
          source = "fetch(" + std::to_string(edge.from) + ", \"" + var + "\")";
        }
      }
      if (source.empty()) {
        const graph::FlatStore* store = flat.find_store(var);
        if (store != nullptr && store->writers.empty()) {
          auto it = inputs.find(store->var);
          if (it == inputs.end()) {
            fail(ErrorCode::Generic, "no value supplied for input store `" +
                                         store->var + "`");
          }
          source = emit_value(it->second);
        }
      }
      if (source.empty()) {
        fail(ErrorCode::Generic, "input `" + var + "` of task `" + task.name +
                                     "` is bound to nothing");
      }
      out << "  rt::Val " << mangle(var) << " = " << source << ";\n";
      emitter.declare(var);
    }

    // Declare assigned locals (excluding the already-declared inputs).
    for (const std::string& name : pits::assigned_variables(body)) {
      if (std::find(task.inputs.begin(), task.inputs.end(), name) ==
          task.inputs.end()) {
        out << "  rt::Val " << mangle(name) << ";\n";
        emitter.declare(name);
      }
    }

    std::string body_src;
    emitter.block(body, 2, body_src);
    if (emitter.uses_rng()) {
      out << "  rt::Rng rng(" << seed_for(task.name, 42) << "ull);\n";
    }
    if (options.emit_timing) {
      out << "  const auto t0 = std::chrono::steady_clock::now();\n";
    }
    out << "  [&] {\n" << body_src << "  }();\n";
    if (options.emit_timing) {
      out << "  { std::lock_guard<std::mutex> lock(rt::io_mutex());\n"
          << "    std::fprintf(stderr, \"task " << task.name
          << ": %.6fs\\n\", std::chrono::duration<double>("
          << "std::chrono::steady_clock::now() - t0).count()); }\n";
    }

    out << "  publish(" << t << ", {";
    for (std::size_t i = 0; i < task.outputs.size(); ++i) {
      if (i > 0) out << ", ";
      out << "{\"" << task.outputs[i] << "\", " << mangle(task.outputs[i])
          << "}";
    }
    out << "});\n";
    out << "}\n";
  }

  // ---- processor lanes ----
  std::vector<machine::ProcId> used;
  for (machine::ProcId p = 0; p < schedule.num_procs(); ++p) {
    const auto lane = schedule.lane(p);
    if (lane.empty()) continue;
    used.push_back(p);
    out << "\nstatic void proc_" << p << "() {\n";
    for (const sched::Placement& pl : lane) {
      out << "  task_" << pl.task << "();"
          << (pl.duplicate ? "  // duplicate copy" : "") << "\n";
    }
    out << "}\n";
  }

  // ---- main ----
  out << "\nint main() {\n";
  out << "  std::vector<std::thread> threads;\n";
  for (machine::ProcId p : used) {
    out << "  threads.emplace_back(proc_" << p << ");\n";
  }
  out << "  for (auto& t : threads) t.join();\n";
  for (std::size_t si : flat.output_stores()) {
    const graph::FlatStore& store = flat.stores[si];
    if (store.writers.empty()) continue;
    const TaskId writer = store.writers.back();
    out << "  std::printf(\"" << store.var << " = %s\\n\", rt::display(g_out["
        << writer << "][\"" << store.var << "\"]).c_str());\n";
  }
  out << "  return 0;\n}\n";

  if (options.emit_timing) {
    // <chrono> is needed only for timing.
    std::string text = out.str();
    const std::string anchor = "#include <cmath>";
    text.insert(text.find(anchor), "#include <chrono>\n");
    return text;
  }
  return out.str();
}

}  // namespace banger::codegen
