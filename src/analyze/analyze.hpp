// banger/analyze/analyze.hpp
//
// The before-run static-analysis engine — the paper's "instant feedback
// ... major contributor to early defect removal" grown from interface
// lint into a real analyser. Three rule layers over a validated design:
//
//   interface   (BAN001-BAN010): drawing-level checks — routine/port
//               mismatches, unbound inputs, dead stores, unobservable
//               work (the original `lint_design` rules, rewired);
//   pits        (BAN101-BAN108): dataflow over each routine's AST —
//               use-before-def, dead stores, unreachable code, constant
//               folding (guaranteed div/mod-by-zero, out-of-range vector
//               indices), unknown functions, arity mismatches, trivially
//               non-terminating loops;
//   absint      (BAN301-BAN306): abstract interpretation over each
//               routine (analyze/absint.hpp) — interval-proven division
//               by zero and out-of-bounds indices, dead branches,
//               non-terminating loops, elementwise length mismatches,
//               plus graph-level producer/consumer shape checking;
//   determinacy (BAN201-BAN203): races over the flattened task graph —
//               unordered writers to a store, readers unordered with
//               writers (var-aliased stores), schedule-dependent output
//               merges. Ordering is the transitive closure of the
//               flattened dataflow dependences.
#pragma once

#include <string>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "graph/design.hpp"
#include "pits/ast.hpp"

namespace banger::analyze {

struct AnalyzeOptions {
  /// Rule layers; `banger lint` runs interface only (compatibility),
  /// `banger check` runs everything.
  bool interface_rules = true;
  bool pits_rules = true;
  /// Abstract-interpretation layer (BAN301-BAN306); runs per routine
  /// after the dataflow layer and once more across the task graph.
  /// Requires pits_rules-style parsing, so it is gated on pits_rules.
  bool absint_rules = true;
  bool determinacy_rules = true;

  /// BAN002: complain about tasks whose PITS body is empty (skeleton
  /// designs are legal while sketching).
  bool require_pits = true;
  /// BAN007: warn when a task's work estimate deviates from the
  /// statement count of its routine by more than this factor (0 = off).
  double work_estimate_factor = 0.0;
};

/// Runs the enabled rule layers over a design. The design must flatten
/// (Error{Graph} propagates otherwise). Returns diagnostics sorted and
/// deduplicated by sort_and_dedupe().
std::vector<Diagnostic> analyze_design(const graph::Design& design,
                                       const AnalyzeOptions& options = {});

/// Context for analysing one PITS routine on its own (the calculator's
/// per-routine feedback, and the per-task step of analyze_design).
struct RoutineContext {
  /// Qualified task name used as the diagnostic subject.
  std::string subject = "routine";
  /// Declared inputs: defined before the routine starts.
  std::vector<std::string> inputs;
  /// Declared outputs: assignments to them are never dead.
  std::vector<std::string> outputs;
  /// File line of the routine's first source line (0 = positions stay
  /// routine-relative) and the indentation stripped from the block.
  int pits_line = 0;
  int pits_indent = 0;
};

/// PITS dataflow layer (BAN101-BAN108) over one parsed routine.
/// Appends to `sink`.
void analyze_routine(const pits::Block& body, const RoutineContext& context,
                     std::vector<Diagnostic>& sink);

/// Interface + determinacy layers; exposed for the lint wrapper.
/// Appends to `sink`; `flat` must be `design.flatten()`.
void run_interface_rules(const graph::FlattenResult& flat,
                         const AnalyzeOptions& options,
                         std::vector<Diagnostic>& sink);
void run_determinacy_rules(const graph::FlattenResult& flat,
                           std::vector<Diagnostic>& sink);

}  // namespace banger::analyze
