#include "analyze/analyze.hpp"

#include "util/strings.hpp"

namespace banger::analyze {

std::vector<Diagnostic> analyze_design(const graph::Design& design,
                                       const AnalyzeOptions& options) {
  const auto flat = design.flatten();
  std::vector<Diagnostic> diagnostics;

  if (options.interface_rules) {
    run_interface_rules(flat, options, diagnostics);
  }

  if (options.pits_rules) {
    for (graph::TaskId t = 0; t < flat.graph.num_tasks(); ++t) {
      const graph::Task& task = flat.graph.task(t);
      if (util::trim(task.pits).empty()) continue;
      pits::Block body;
      try {
        body = pits::parse_block(task.pits);
      } catch (const Error&) {
        continue;  // BAN003 (interface layer) reports parse failures
      }
      RoutineContext ctx;
      ctx.subject = task.name;
      ctx.inputs = task.inputs;
      ctx.outputs = task.outputs;
      ctx.pits_line = task.pits_line;
      ctx.pits_indent = task.pits_indent;
      analyze_routine(body, ctx, diagnostics);
    }
  }

  if (options.determinacy_rules) {
    run_determinacy_rules(flat, diagnostics);
  }

  sort_and_dedupe(diagnostics);
  return diagnostics;
}

}  // namespace banger::analyze
