#include "analyze/analyze.hpp"

#include <map>

#include "analyze/absint.hpp"
#include "util/strings.hpp"

namespace banger::analyze {

std::vector<Diagnostic> analyze_design(const graph::Design& design,
                                       const AnalyzeOptions& options) {
  const auto flat = design.flatten();
  std::vector<Diagnostic> diagnostics;

  if (options.interface_rules) {
    run_interface_rules(flat, options, diagnostics);
  }

  if (options.pits_rules) {
    std::map<graph::TaskId, ShapeSummary> summaries;
    for (graph::TaskId t = 0; t < flat.graph.num_tasks(); ++t) {
      const graph::Task& task = flat.graph.task(t);
      if (util::trim(task.pits).empty()) continue;
      pits::Block body;
      try {
        body = pits::parse_block(task.pits);
      } catch (const Error&) {
        continue;  // BAN003 (interface layer) reports parse failures
      }
      RoutineContext ctx;
      ctx.subject = task.name;
      ctx.inputs = task.inputs;
      ctx.outputs = task.outputs;
      ctx.pits_line = task.pits_line;
      ctx.pits_indent = task.pits_indent;
      analyze_routine(body, ctx, diagnostics);
      if (options.absint_rules) {
        // Runs after the dataflow pass on purpose: the interval engine
        // both defers to its reports (BAN104/105/108 win over BAN30x at
        // the same spot) and prunes BAN101s it proves false.
        summaries[t] = run_absint_rules(body, ctx, diagnostics);
      }
    }
    if (options.absint_rules) {
      run_shape_rules(flat, summaries, diagnostics);
    }
  }

  if (options.determinacy_rules) {
    run_determinacy_rules(flat, diagnostics);
  }

  sort_and_dedupe(diagnostics);
  return diagnostics;
}

}  // namespace banger::analyze
