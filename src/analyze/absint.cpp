// banger/analyze/absint.cpp
//
// The abstract interpreter behind BAN30x diagnostics and the bytecode
// compiler's check elision. Every transfer function mirrors the concrete
// semantics of pits/interp.cpp exactly — including the odd corners: NaN
// is truthy, NaN orders as *equal* under </<=/>/>= (the walker's
// three-way compare maps NaN to 0), `^` raises an error instead of
// returning NaN, for-loop bounds get a 1e-12 epsilon, and `when` is
// lazy. Soundness rule: every recorded fact/diagnostic must hold for
// every concrete execution; when in doubt a transfer function answers
// top. The differential fuzz suite in tests/pits_vm_test.cpp checks the
// facts side against the tree-walker.
#include "analyze/absint.hpp"

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <variant>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "pits/builtins.hpp"
#include "pits/interp.hpp"

namespace banger::analyze {

// ---------------------------------------------------------------------
// Interval lattice
// ---------------------------------------------------------------------

Interval join(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi),
          a.integer && b.integer, a.maybe_nan || b.maybe_nan};
}

Interval widen(const Interval& prev, const Interval& next) {
  return {next.lo < prev.lo ? -kAbsInf : prev.lo,
          next.hi > prev.hi ? kAbsInf : prev.hi,
          prev.integer && next.integer, prev.maybe_nan || next.maybe_nan};
}

namespace {

using pits::AssignStmt;
using pits::BinOp;
using pits::Block;
using pits::Call;
using pits::Expr;
using pits::ExprStmt;
using pits::ForStmt;
using pits::FormulaDef;
using pits::IfStmt;
using pits::Index;
using pits::NumberLit;
using pits::RepeatStmt;
using pits::ReturnStmt;
using pits::Stmt;
using pits::StmtPtr;
using pits::StringLit;
using pits::UnOp;
using pits::Unary;
using pits::VarRef;
using pits::VectorLit;
using pits::WhileStmt;

constexpr double kPi = 3.14159265358979323846;

Interval iv_neg(const Interval& a) {
  return {-a.hi, -a.lo, a.integer, a.maybe_nan};
}

/// Builds an interval from corner evaluations; a NaN corner (inf - inf,
/// 0 * inf, ...) means the operation can leave the real line, so the
/// result widens to full range with NaN possible.
Interval from_corners(std::initializer_list<double> corners, bool integer,
                      bool maybe_nan) {
  double lo = kAbsInf;
  double hi = -kAbsInf;
  for (double c : corners) {
    if (std::isnan(c)) return {};
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  return {lo, hi, integer, maybe_nan};
}

bool may_inf(const Interval& a) { return a.lo == -kAbsInf || a.hi == kAbsInf; }

Interval iv_add(const Interval& a, const Interval& b) {
  return from_corners({a.lo + b.lo, a.hi + b.hi}, a.integer && b.integer,
                      a.maybe_nan || b.maybe_nan);
}

Interval iv_sub(const Interval& a, const Interval& b) {
  return from_corners({a.lo - b.hi, a.hi - b.lo}, a.integer && b.integer,
                      a.maybe_nan || b.maybe_nan);
}

Interval iv_mul(const Interval& a, const Interval& b) {
  return from_corners({a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi},
                      a.integer && b.integer, a.maybe_nan || b.maybe_nan);
}

Interval iv_div(const Interval& a, const Interval& b) {
  // Division by zero raises an error (those executions never produce a
  // value), but a divisor interval touching zero still admits values
  // arbitrarily close to it, so the quotient is unbounded.
  if (b.lo > 0 || b.hi < 0) {
    return from_corners({a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi},
                        false, a.maybe_nan || b.maybe_nan);
  }
  return {};
}

Interval iv_mod(const Interval& a, const Interval& b) {
  if (b.lo > 0 || b.hi < 0) {
    // fmod: |result| < |divisor|, sign follows the dividend;
    // fmod(±inf, y) is NaN.
    const double m = std::max(std::abs(b.lo), std::abs(b.hi));
    double lo = -m;
    double hi = m;
    if (a.lo >= 0) lo = 0;
    if (a.hi <= 0) hi = 0;
    return {lo, hi, a.integer && b.integer,
            a.maybe_nan || b.maybe_nan || may_inf(a)};
  }
  return {};
}

Interval iv_square(const Interval& a) {
  const double m = std::max(a.lo * a.lo, a.hi * a.hi);
  const double lo = (a.lo <= 0 && a.hi >= 0) ? 0 : std::min(a.lo * a.lo, a.hi * a.hi);
  return from_corners({lo, m}, a.integer, a.maybe_nan);
}

Interval iv_pow(const Interval& a, const Interval& b) {
  // The `^` operator errors out instead of returning NaN (scalar_op),
  // so a NaN result needs a NaN operand.
  const bool nan = a.maybe_nan || b.maybe_nan;
  if (b.is_exact() && b.lo == 2) return iv_square(a);
  if (a.lo >= 0) return {0, kAbsInf, false, nan};
  return {-kAbsInf, kAbsInf, false, nan};
}

enum class Tri : std::uint8_t { False, True, Maybe };

/// Ordering proofs under the walker's three-way compare, where a NaN
/// operand yields cmp == 0: NaN makes <= and >= TRUE and < and > false.
Tri tri_cmp(BinOp op, const Interval& a, const Interval& b) {
  const bool no_nan = !a.maybe_nan && !b.maybe_nan;
  const bool disjoint = a.hi < b.lo || b.hi < a.lo;
  switch (op) {
    case BinOp::Lt:
      if (no_nan && a.hi < b.lo) return Tri::True;
      if (a.lo >= b.hi) return Tri::False;
      return Tri::Maybe;
    case BinOp::Le:
      if (a.hi <= b.lo) return Tri::True;
      if (no_nan && a.lo > b.hi) return Tri::False;
      return Tri::Maybe;
    case BinOp::Gt:
      if (no_nan && a.lo > b.hi) return Tri::True;
      if (a.hi <= b.lo) return Tri::False;
      return Tri::Maybe;
    case BinOp::Ge:
      if (a.lo >= b.hi) return Tri::True;
      if (no_nan && a.hi < b.lo) return Tri::False;
      return Tri::Maybe;
    case BinOp::Eq:
      if (disjoint) return Tri::False;  // NaN == x is false as well
      if (no_nan && a.is_exact() && b.is_exact() && a.lo == b.lo)
        return Tri::True;
      return Tri::Maybe;
    case BinOp::Ne:
      if (disjoint) return Tri::True;  // NaN != x is true as well
      if (no_nan && a.is_exact() && b.is_exact() && a.lo == b.lo)
        return Tri::False;
      return Tri::Maybe;
    default:
      return Tri::Maybe;
  }
}

/// Truthiness of an abstract value: NaN is truthy (NaN != 0), zero is
/// the only falsy scalar, vectors/strings are truthy iff non-empty.
Tri truth_of(const AbsVal& v) {
  bool can_true = false;
  bool can_false = false;
  if (v.may_scalar) {
    can_true |= v.num.maybe_nan || v.num.lo < 0 || v.num.hi > 0;
    can_false |= v.num.lo <= 0 && v.num.hi >= 0;
  }
  if (v.may_vector) {
    can_true |= v.len.hi >= 1;
    can_false |= v.len.lo <= 0;
  }
  if (v.may_string || v.may_unbound) {
    can_true = true;
    can_false = true;
  }
  if (can_true && !can_false) return Tri::True;
  if (can_false && !can_true) return Tri::False;
  return Tri::Maybe;
}

AbsVal tri_scalar(Tri t) {
  switch (t) {
    case Tri::True: return AbsVal::scalar(iv_exact(1));
    case Tri::False: return AbsVal::scalar(iv_exact(0));
    default: return AbsVal::scalar(iv_range(0, 1, true));
  }
}

Interval pick_join(bool a_has, const Interval& a, bool b_has,
                   const Interval& b, const Interval& neither) {
  if (a_has && b_has) return join(a, b);
  if (a_has) return a;
  if (b_has) return b;
  return neither;
}

const Interval kLenTop{0, kAbsInf, true, false};

}  // namespace

// ---------------------------------------------------------------------
// AbsVal lattice
// ---------------------------------------------------------------------

bool operator==(const AbsVal& a, const AbsVal& b) {
  return a.may_scalar == b.may_scalar && a.may_vector == b.may_vector &&
         a.may_string == b.may_string && a.may_unbound == b.may_unbound &&
         a.must_assigned == b.must_assigned && a.num == b.num &&
         a.len == b.len && a.elem == b.elem && a.origin == b.origin;
}

AbsVal join(const AbsVal& a, const AbsVal& b) {
  AbsVal r;
  r.may_scalar = a.may_scalar || b.may_scalar;
  r.may_vector = a.may_vector || b.may_vector;
  r.may_string = a.may_string || b.may_string;
  r.may_unbound = a.may_unbound || b.may_unbound;
  r.must_assigned = a.must_assigned && b.must_assigned;
  r.num = pick_join(a.may_scalar, a.num, b.may_scalar, b.num, iv_top());
  r.len = pick_join(a.may_vector, a.len, b.may_vector, b.len, kLenTop);
  r.elem = pick_join(a.may_vector, a.elem, b.may_vector, b.elem, iv_top());
  r.origin = a.origin == b.origin ? a.origin : std::string{};
  return r;
}

AbsVal widen(const AbsVal& prev, const AbsVal& next) {
  AbsVal r = join(prev, next);
  // A kind that only appears in `next` adopts next's intervals (first
  // appearance); a kind present in both widens bound-by-bound.
  r.num = prev.may_scalar ? widen(prev.num, r.num) : r.num;
  r.len = prev.may_vector ? widen(prev.len, r.len) : r.len;
  r.elem = prev.may_vector ? widen(prev.elem, r.elem) : r.elem;
  return r;
}

namespace {

// ---------------------------------------------------------------------
// Abstract machine state
// ---------------------------------------------------------------------

struct AbsState {
  bool reachable = true;
  std::map<std::string, AbsVal> vars;
  /// May/must "formula i registered" bitmasks over the routine's
  /// FormulaDef statements, in collection order (index 63 is shared by
  /// all defs past the 63rd; must-tracking is disabled entirely then).
  std::uint64_t def_may = 0;
  std::uint64_t def_must = 0;
};

// ---------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------

class AbsInterp {
 public:
  struct Config {
    /// Facts mode: free variables may be unbound and of any type, so
    /// every recorded proof holds for any environment. Diagnostics mode
    /// seeds the declared inputs as bound instead.
    bool context_free = true;
    const RoutineContext* ctx = nullptr;
    std::vector<Diagnostic>* sink = nullptr;
    pits::bc::AnalysisFacts* facts = nullptr;
    ShapeSummary* summary = nullptr;
  };

  explicit AbsInterp(Config cfg) : cfg_(cfg) {}

  void run(const Block& body) {
    collect_formulas(body);
    AbsState st;
    if (!cfg_.context_free && cfg_.ctx != nullptr) {
      for (const std::string& in : cfg_.ctx->inputs) {
        AbsVal v = AbsVal::top_bound();
        v.must_assigned = true;
        v.origin = in;
        st.vars[in] = v;
      }
    }
    exit_acc_.reachable = false;
    exec_block(body, st);
    const AbsState fin = join_state(exit_acc_, st);
    if (cfg_.summary != nullptr && cfg_.ctx != nullptr) {
      for (const std::string& out : cfg_.ctx->outputs) {
        cfg_.summary->outputs[out] = peek_var(fin, out);
      }
    }
  }

  /// Positions (file coordinates) of reads proven to hit an assigned
  /// variable — used to prune BAN101 false positives.
  [[nodiscard]] const std::set<std::pair<int, int>>& proven_reads() const {
    return proven_reads_;
  }

  /// Syntactic companion pass: a statement gets exactly one tick iff its
  /// expressions cannot call a user formula (formula evaluation ticks
  /// per call; builtins and `when` do not).
  void mark_single_ticks(const Block& body, pits::bc::AnalysisFacts& facts) {
    for (const StmtPtr& sp : body) {
      const Stmt& s = *sp;
      bool single = true;
      std::visit(
          [&](const auto& node) {
            using T = std::decay_t<decltype(node)>;
            if constexpr (std::is_same_v<T, AssignStmt>) {
              single = (node.index == nullptr || formula_free(*node.index)) &&
                       formula_free(*node.value);
            } else if constexpr (std::is_same_v<T, ExprStmt>) {
              single = formula_free(*node.expr);
            } else if constexpr (std::is_same_v<T, IfStmt>) {
              single = false;
              for (const IfStmt::Arm& arm : node.arms)
                mark_single_ticks(arm.body, facts);
              mark_single_ticks(node.else_body, facts);
            } else if constexpr (std::is_same_v<T, WhileStmt>) {
              single = false;
              mark_single_ticks(node.body, facts);
            } else if constexpr (std::is_same_v<T, RepeatStmt>) {
              single = false;
              mark_single_ticks(node.body, facts);
            } else if constexpr (std::is_same_v<T, ForStmt>) {
              single = false;
              mark_single_ticks(node.body, facts);
            } else {
              // ReturnStmt, FormulaDef: registering a formula does not
              // evaluate its body.
              single = true;
            }
          },
          s.node);
      if (single) facts.single_tick.insert(&s);
    }
  }

 private:
  // ---- setup ----

  void collect_formulas(const Block& body) {
    for (const StmtPtr& sp : body) {
      std::visit(
          [&](const auto& node) {
            using T = std::decay_t<decltype(node)>;
            if constexpr (std::is_same_v<T, FormulaDef>) {
              def_index_[&node] = defs_.size();
              formula_index_[node.name].push_back(defs_.size());
              defs_.push_back(&node);
            } else if constexpr (std::is_same_v<T, IfStmt>) {
              for (const IfStmt::Arm& arm : node.arms)
                collect_formulas(arm.body);
              collect_formulas(node.else_body);
            } else if constexpr (std::is_same_v<T, WhileStmt> ||
                                 std::is_same_v<T, RepeatStmt> ||
                                 std::is_same_v<T, ForStmt>) {
              collect_formulas(node.body);
            }
          },
          sp->node);
    }
  }

  [[nodiscard]] bool formula_free(const Expr& e) const {
    bool ok = true;
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, VectorLit>) {
            for (const auto& el : node.elements) ok = ok && formula_free(*el);
          } else if constexpr (std::is_same_v<T, Unary>) {
            ok = formula_free(*node.operand);
          } else if constexpr (std::is_same_v<T, pits::Binary>) {
            ok = formula_free(*node.lhs) && formula_free(*node.rhs);
          } else if constexpr (std::is_same_v<T, Index>) {
            ok = formula_free(*node.base) && formula_free(*node.index);
          } else if constexpr (std::is_same_v<T, Call>) {
            if (node.callee != "when" && formula_index_.count(node.callee) > 0)
              ok = false;
            for (const auto& a : node.args) ok = ok && formula_free(*a);
          }
        },
        e.node);
    return ok;
  }

  // ---- state helpers ----

  [[nodiscard]] AbsVal default_var(const std::string& name) const {
    AbsVal v = AbsVal::top();
    // Calculator constants materialise on read (no Name error), though
    // the environment may shadow them with any value.
    if (pits::constants().count(name) > 0) v.may_unbound = false;
    return v;
  }

  [[nodiscard]] AbsVal peek_var(const AbsState& st,
                                const std::string& name) const {
    auto it = st.vars.find(name);
    return it != st.vars.end() ? it->second : default_var(name);
  }

  [[nodiscard]] AbsState join_state(const AbsState& a, const AbsState& b) const {
    if (!a.reachable) return b;
    if (!b.reachable) return a;
    AbsState r;
    r.def_may = a.def_may | b.def_may;
    r.def_must = a.def_must & b.def_must;
    r.vars = a.vars;
    for (const auto& [k, v] : b.vars) {
      auto it = r.vars.find(k);
      if (it == r.vars.end()) {
        r.vars.emplace(k, join(default_var(k), v));
      } else {
        it->second = join(it->second, v);
      }
    }
    for (auto& [k, v] : r.vars) {
      if (b.vars.count(k) == 0) v = join(v, default_var(k));
    }
    return r;
  }

  [[nodiscard]] AbsState widen_state(const AbsState& prev,
                                     const AbsState& next) const {
    AbsState r;
    r.reachable = next.reachable;
    r.def_may = next.def_may;
    r.def_must = next.def_must;
    for (const auto& [k, v] : next.vars) {
      auto it = prev.vars.find(k);
      r.vars.emplace(k, it != prev.vars.end() ? widen(it->second, v)
                                              : widen(default_var(k), v));
    }
    return r;
  }

  [[nodiscard]] bool state_eq(const AbsState& a, const AbsState& b) const {
    if (a.reachable != b.reachable || a.def_may != b.def_may ||
        a.def_must != b.def_must)
      return false;
    for (const auto& [k, v] : a.vars)
      if (!(v == peek_var(b, k))) return false;
    for (const auto& [k, v] : b.vars)
      if (a.vars.count(k) == 0 && !(v == default_var(k))) return false;
    return true;
  }

  // ---- reporting ----

  [[nodiscard]] SourcePos at(SourcePos p) const {
    if (cfg_.ctx == nullptr || !p.valid() || cfg_.ctx->pits_line <= 0) return p;
    return {cfg_.ctx->pits_line + p.line - 1, p.column + cfg_.ctx->pits_indent};
  }

  [[nodiscard]] bool recording(const AbsState& st) const {
    return record_ && st.reachable && depth_ == 0;
  }

  void emit(std::string code, SourcePos pos, std::string message,
            std::string hint = {}) {
    const DiagnosticRule* rule = find_rule(code);
    Diagnostic d;
    d.code = std::move(code);
    d.severity = rule != nullptr ? rule->severity : Severity::Warning;
    d.subject_kind = "task";
    d.subject = cfg_.ctx != nullptr ? cfg_.ctx->subject : "routine";
    d.message = std::move(message);
    d.hint = std::move(hint);
    d.pos = at(pos);
    cfg_.sink->push_back(std::move(d));
  }

  /// True if an earlier rule layer already reported one of `codes` at
  /// the same spot — the cheap-layer report wins, BAN30x stays quiet.
  [[nodiscard]] bool already(std::initializer_list<std::string_view> codes,
                             SourcePos pos) const {
    const SourcePos p = at(pos);
    const std::string subject =
        cfg_.ctx != nullptr ? cfg_.ctx->subject : "routine";
    for (const Diagnostic& d : *cfg_.sink) {
      if (d.pos.line != p.line || d.pos.column != p.column) continue;
      if (d.subject != subject) continue;
      for (std::string_view c : codes)
        if (d.code == c) return true;
    }
    return false;
  }

  void demand_vector(const AbsState& st, const std::string& origin,
                     double min_len, SourcePos pos) {
    if (cfg_.summary == nullptr || origin.empty() || !recording(st)) return;
    ShapeDemand& d = cfg_.summary->demands[origin];
    if (!d.pos.valid()) d.pos = at(pos);
    d.needs_vector = true;
    d.min_len = std::max(d.min_len, min_len);
  }

  void demand_scalar(const AbsState& st, const std::string& origin,
                     SourcePos pos) {
    if (cfg_.summary == nullptr || origin.empty() || !recording(st)) return;
    ShapeDemand& d = cfg_.summary->demands[origin];
    if (!d.pos.valid()) d.pos = at(pos);
    d.needs_scalar = true;
  }

  void demand_elem_len(const AbsState& st, const std::string& origin,
                       double exact_len, SourcePos pos) {
    if (cfg_.summary == nullptr || origin.empty() || !recording(st)) return;
    ShapeDemand& d = cfg_.summary->demands[origin];
    if (!d.pos.valid()) d.pos = at(pos);
    if (d.elem_len < 0) d.elem_len = exact_len;
  }

  // ---- expression evaluation ----

  AbsVal eval(const Expr& e, AbsState& st) {
    return std::visit([&](const auto& node) { return eval_node(node, e, st); },
                      e.node);
  }

  /// Evaluation with fact/diagnostic recording suppressed (condition
  /// refinement, fixpoint probing).
  AbsVal eval_quiet(const Expr& e, AbsState& st) {
    const bool saved = record_;
    record_ = false;
    AbsVal v = eval(e, st);
    record_ = saved;
    return v;
  }

  AbsVal eval_node(const NumberLit& node, const Expr&, AbsState&) {
    return AbsVal::scalar(iv_exact(node.value));
  }

  AbsVal eval_node(const StringLit&, const Expr&, AbsState&) {
    return AbsVal::string();
  }

  AbsVal eval_node(const VarRef& node, const Expr& e, AbsState& st) {
    AbsVal v = peek_var(st, node.name);
    if (recording(st) && v.must_assigned) {
      if (cfg_.facts != nullptr) cfg_.facts->bound_reads.insert(&node);
      if (cfg_.sink != nullptr) {
        const SourcePos p = at(e.pos);
        proven_reads_.insert({p.line, p.column});
      }
    }
    v.may_unbound = false;  // a successful read always yields a value
    return v;
  }

  AbsVal eval_node(const VectorLit& node, const Expr&, AbsState& st) {
    Interval elem = iv_top();
    bool first = true;
    for (const auto& el : node.elements) {
      const AbsVal v = eval(*el, st);
      const Interval n = v.may_scalar ? v.num : iv_top();
      elem = first ? n : join(elem, n);
      first = false;
    }
    return AbsVal::vector(iv_exact(static_cast<double>(node.elements.size())),
                          elem);
  }

  AbsVal eval_node(const Unary& node, const Expr&, AbsState& st) {
    const AbsVal v = eval(*node.operand, st);
    if (node.op == UnOp::Not) return tri_scalar(invert(truth_of(v)));
    AbsVal r;
    r.may_unbound = false;
    r.may_string = false;
    r.may_scalar = v.may_scalar;
    r.may_vector = v.may_vector;
    if (!r.may_scalar && !r.may_vector) return AbsVal::scalar(iv_top());
    r.num = iv_neg(v.num);
    r.len = v.len;
    r.elem = iv_neg(v.elem);
    return r;
  }

  static Tri invert(Tri t) {
    return t == Tri::True ? Tri::False : t == Tri::False ? Tri::True
                                                         : Tri::Maybe;
  }

  AbsVal eval_node(const pits::Binary& node, const Expr& e, AbsState& st) {
    if (node.op == BinOp::And || node.op == BinOp::Or) {
      const Tri ta = truth_of(eval(*node.lhs, st));
      const Tri tb = truth_of(eval(*node.rhs, st));
      Tri t = Tri::Maybe;
      if (node.op == BinOp::And) {
        if (ta == Tri::False || tb == Tri::False) t = Tri::False;
        else if (ta == Tri::True && tb == Tri::True) t = Tri::True;
      } else {
        if (ta == Tri::True || tb == Tri::True) t = Tri::True;
        else if (ta == Tri::False && tb == Tri::False) t = Tri::False;
      }
      return tri_scalar(t);
    }
    const AbsVal a = eval(*node.lhs, st);
    const AbsVal b = eval(*node.rhs, st);
    switch (node.op) {
      case BinOp::Eq:
      case BinOp::Ne:
        return tri_scalar(equality(node.op, a, b));
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge:
        if (a.proven_scalar() && b.proven_scalar())
          return tri_scalar(tri_cmp(node.op, a.num, b.num));
        return tri_scalar(Tri::Maybe);
      default:
        return arith_val(node, a, b, e, st);
    }
  }

  static Tri equality(BinOp op, const AbsVal& a, const AbsVal& b) {
    Tri eq = Tri::Maybe;
    const bool kinds_overlap = (a.may_scalar && b.may_scalar) ||
                               (a.may_vector && b.may_vector) ||
                               (a.may_string && b.may_string);
    if (!kinds_overlap) {
      eq = Tri::False;  // values of different kinds are never equal
    } else if (a.proven_scalar() && b.proven_scalar()) {
      eq = tri_cmp(BinOp::Eq, a.num, b.num);
    } else if (a.proven_vector() && b.proven_vector() &&
               (a.len.hi < b.len.lo || b.len.hi < a.len.lo)) {
      eq = Tri::False;  // provably different lengths
    }
    return op == BinOp::Eq ? eq : invert(eq);
  }

  AbsVal arith_val(const pits::Binary& node, const AbsVal& a, const AbsVal& b,
                   const Expr& e, AbsState& st) {
    const BinOp op = node.op;
    // BAN301: the divisor is proven to be exactly zero.
    if ((op == BinOp::Div || op == BinOp::Mod) && cfg_.sink != nullptr &&
        recording(st) && b.proven_scalar() && b.num.is_exact() &&
        b.num.lo == 0 && !a.proven_string() &&
        !already({"BAN104"}, node.rhs->pos)) {
      emit("BAN301", node.rhs->pos,
           std::string(op == BinOp::Div ? "division" : "mod") +
               " by a divisor proven to be zero",
           "every execution reaching this expression fails");
    }
    // BAN305: elementwise op on vectors of provably different lengths.
    if (cfg_.sink != nullptr && recording(st) && a.proven_vector() &&
        b.proven_vector() && (a.len.hi < b.len.lo || b.len.hi < a.len.lo)) {
      emit("BAN305", e.pos,
           "elementwise `" + std::string(pits::to_string(op)) +
               "` on vectors of provably different lengths (" +
               len_text(a.len) + " vs " + len_text(b.len) + ")");
    }
    // Cross-task demand: an elementwise partner of exact length pins the
    // length an input must have *if* it arrives as a vector.
    if (!a.origin.empty() && b.proven_vector() && b.len.is_exact())
      demand_elem_len(st, a.origin, b.len.lo, e.pos);
    if (!b.origin.empty() && a.proven_vector() && a.len.is_exact())
      demand_elem_len(st, b.origin, a.len.lo, e.pos);

    AbsVal r;
    bool any = false;
    auto merge = [&](const AbsVal& v) {
      r = any ? join(r, v) : v;
      any = true;
    };
    if (op == BinOp::Add && a.may_string && b.may_string)
      merge(AbsVal::string());
    if (a.may_scalar && b.may_scalar) {
      Interval n = scalar_arith(op, node, a.num, b.num);
      merge(AbsVal::scalar(n));
    }
    if (a.may_vector && b.may_vector) {
      const Interval len = iv_range(std::max(a.len.lo, b.len.lo),
                                    std::min(a.len.hi, b.len.hi), true);
      if (std::max(a.len.lo, b.len.lo) <= std::min(a.len.hi, b.len.hi))
        merge(AbsVal::vector(len, scalar_arith(op, node, a.elem, b.elem)));
    }
    if (a.may_vector && b.may_scalar)
      merge(AbsVal::vector(a.len, scalar_arith(op, node, a.elem, b.num)));
    if (a.may_scalar && b.may_vector)
      merge(AbsVal::vector(b.len, scalar_arith(op, node, a.num, b.elem)));
    return any ? r : AbsVal::scalar(iv_top());
  }

  static std::string len_text(const Interval& len) {
    auto fmt = [](double v) {
      if (v == kAbsInf) return std::string("inf");
      return std::to_string(static_cast<long long>(v));
    };
    if (len.is_exact()) return fmt(len.lo);
    return fmt(len.lo) + ".." + fmt(len.hi);
  }

  /// Scalar arithmetic with the x-x / x*x / x/x same-variable
  /// refinements (both sides the same VarRef denote the same value).
  static Interval scalar_arith(BinOp op, const pits::Binary& node,
                               const Interval& a, const Interval& b) {
    const auto* lv = std::get_if<VarRef>(&node.lhs->node);
    const auto* rv = std::get_if<VarRef>(&node.rhs->node);
    const bool same = lv != nullptr && rv != nullptr && lv->name == rv->name;
    if (same) {
      if (op == BinOp::Sub)
        return {0, 0, true, a.maybe_nan || may_inf(a)};  // inf - inf is NaN
      if (op == BinOp::Mul) return iv_square(a);
      if (op == BinOp::Div && (a.lo > 0 || a.hi < 0))
        return {1, 1, true, a.maybe_nan || may_inf(a)};  // inf / inf is NaN
    }
    switch (op) {
      case BinOp::Add: return iv_add(a, b);
      case BinOp::Sub: return iv_sub(a, b);
      case BinOp::Mul: return iv_mul(a, b);
      case BinOp::Div: return iv_div(a, b);
      case BinOp::Mod: return iv_mod(a, b);
      case BinOp::Pow: return iv_pow(a, b);
      default: return iv_top();
    }
  }

  AbsVal eval_node(const Index& node, const Expr& e, AbsState& st) {
    const AbsVal base = eval(*node.base, st);
    const AbsVal idx = eval(*node.index, st);
    note_index_site(base, idx, e, *node.index, st);
    if (cfg_.facts != nullptr && recording(st) && index_safe(base, idx))
      cfg_.facts->safe_index.insert(&e);
    return AbsVal::scalar(base.may_vector ? base.elem : iv_top());
  }

  /// The index is proven to be an in-bounds integer for every possible
  /// length of the (proven) vector.
  static bool index_safe(const AbsVal& base, const AbsVal& idx) {
    return base.proven_vector() && idx.proven_scalar() &&
           !idx.num.maybe_nan && idx.num.integer && idx.num.lo >= 0 &&
           idx.num.hi < base.len.lo;
  }

  void note_index_site(const AbsVal& base, const AbsVal& idx, const Expr& e,
                       const Expr& index_expr, AbsState& st) {
    if (!base.origin.empty()) {
      const double need =
          idx.may_scalar && idx.num.lo >= 0 && std::isfinite(idx.num.lo)
              ? std::floor(idx.num.lo) + 1
              : 1;
      demand_vector(st, base.origin, need, e.pos);
    }
    if (!idx.origin.empty()) demand_scalar(st, idx.origin, index_expr.pos);
    if (cfg_.sink == nullptr || !recording(st)) return;
    if (!base.proven_vector() || !idx.proven_scalar() || idx.num.maybe_nan)
      return;
    if (already({"BAN105"}, index_expr.pos)) return;
    const Interval& n = idx.num;
    const bool no_integer =
        !n.integer && std::floor(n.lo) == std::floor(n.hi) &&
        n.lo > std::floor(n.lo);
    if (no_integer) {
      emit("BAN302", index_expr.pos,
           "index is proven not to be an integer (value in [" +
               num_text(n.lo) + ", " + num_text(n.hi) + "])");
    } else if (n.hi < 0 || (std::isfinite(base.len.hi) && n.lo >= base.len.hi)) {
      emit("BAN302", index_expr.pos,
           "index in [" + num_text(n.lo) + ", " + num_text(n.hi) +
               "] is proven out of range for a vector of length " +
               len_text(base.len));
    }
  }

  static std::string num_text(double v) {
    if (v == kAbsInf) return "inf";
    if (v == -kAbsInf) return "-inf";
    if (std::floor(v) == v && std::abs(v) < 1e15)
      return std::to_string(static_cast<long long>(v));
    return std::to_string(v);
  }

  AbsVal eval_node(const Call& node, const Expr&, AbsState& st) {
    if (node.callee == "when") {
      if (node.args.size() != 3) return AbsVal::top_bound();
      const Tri t = truth_of(eval(*node.args[0], st));
      // `when` is lazy; analysing both arms over-approximates each
      // possible execution (and terminates: recursion is depth-capped).
      const AbsVal a = eval(*node.args[1], st);
      const AbsVal b = eval(*node.args[2], st);
      return t == Tri::True ? a : t == Tri::False ? b : join(a, b);
    }
    std::vector<AbsVal> args;
    args.reserve(node.args.size());
    for (const auto& ap : node.args) args.push_back(eval(*ap, st));

    AbsVal result;
    bool any = false;
    bool must_formula = false;
    if (auto it = formula_index_.find(node.callee);
        it != formula_index_.end()) {
      for (std::size_t di : it->second) {
        const std::uint64_t bit = 1ULL << std::min<std::size_t>(di, 63);
        if ((st.def_may & bit) == 0) continue;
        const bool must =
            defs_.size() <= 63 && (st.def_must & (1ULL << di)) != 0;
        must_formula = must_formula || must;
        if (defs_[di]->params.size() != node.args.size()) continue;  // arity error
        const AbsVal r = eval_formula(*defs_[di], args, st);
        result = any ? join(result, r) : r;
        any = true;
      }
    }
    if (!must_formula) {
      const AbsVal r = builtin_model(node.callee, args);
      result = any ? join(result, r) : r;
      any = true;
    }
    return any ? result : AbsVal::top_bound();
  }

  AbsVal eval_formula(const FormulaDef& def, const std::vector<AbsVal>& args,
                      const AbsState& st) {
    if (depth_ >= 6 || in_flight_.count(&def) > 0) return summary_of(def);
    ++depth_;
    in_flight_.insert(&def);
    AbsState fst;
    fst.def_may = st.def_may;
    fst.def_must = st.def_must;
    for (std::size_t i = 0; i < def.params.size(); ++i) {
      AbsVal a = args[i];
      a.may_unbound = false;
      a.must_assigned = true;
      a.origin.clear();
      fst.vars.try_emplace(def.params[i], std::move(a));  // first wins
    }
    AbsVal r = eval(*def.body, fst);
    in_flight_.erase(&def);
    --depth_;
    r.may_unbound = false;
    r.must_assigned = false;
    r.origin.clear();
    return r;
  }

  /// Memoised result of a formula over top arguments; the pre-seeded
  /// top entry doubles as the in-progress guard for recursive formulas.
  AbsVal summary_of(const FormulaDef& def) {
    auto [it, fresh] = summaries_.try_emplace(&def, AbsVal::top_bound());
    if (!fresh) return it->second;
    AbsState fst;
    fst.def_may = ~0ULL;  // any formula may be registered by then
    for (const std::string& p : def.params) {
      AbsVal a = AbsVal::top_bound();
      a.must_assigned = true;
      fst.vars.try_emplace(p, std::move(a));
    }
    ++depth_;
    in_flight_.insert(&def);
    AbsVal r = eval(*def.body, fst);
    in_flight_.erase(&def);
    --depth_;
    r.may_unbound = false;
    r.must_assigned = false;
    r.origin.clear();
    summaries_[&def] = r;
    return r;
  }

  // ---- builtin models ----

  /// Sound models for the calculator builtins; anything unmodelled is
  /// top. Unknown names raise a Name error at run time, so top is sound
  /// there too.
  static AbsVal builtin_model(const std::string& name,
                              const std::vector<AbsVal>& args) {
    const auto n = args.size();
    auto num = [&](std::size_t i) {
      return args[i].may_scalar ? args[i].num : iv_top();
    };
    // add1 builtins broadcast elementwise over vectors: the result
    // mirrors the argument's shape, values go through `g`.
    auto map1 = [&](auto&& g) {
      const AbsVal& a = args[0];
      AbsVal r;
      r.may_unbound = false;
      r.may_string = false;
      r.may_scalar = a.may_scalar;
      r.may_vector = a.may_vector;
      if (!r.may_scalar && !r.may_vector) return AbsVal::scalar(iv_top());
      r.num = g(a.may_scalar ? a.num : iv_top());
      r.len = a.len;
      r.elem = g(a.may_vector ? a.elem : iv_top());
      return r;
    };
    if (n == 1) {
      if (name == "abs") {
        return map1([](const Interval& a) {
          const double m = std::max(std::abs(a.lo), std::abs(a.hi));
          const double lo = a.lo <= 0 && a.hi >= 0
                                ? 0
                                : std::min(std::abs(a.lo), std::abs(a.hi));
          return Interval{lo, m, a.integer, a.maybe_nan};
        });
      }
      if (name == "sqrt") {
        return map1([](const Interval& a) {
          return iv_range(std::sqrt(std::max(0.0, a.lo)),
                          std::sqrt(std::max(0.0, a.hi)), false, a.maybe_nan);
        });
      }
      if (name == "cbrt") {
        return map1([](const Interval& a) {
          return iv_range(std::cbrt(a.lo), std::cbrt(a.hi), false,
                          a.maybe_nan);
        });
      }
      if (name == "exp") {
        return map1([](const Interval& a) {
          return iv_range(std::exp(a.lo), std::exp(a.hi), false, a.maybe_nan);
        });
      }
      if (name == "floor" || name == "ceil" || name == "round" ||
          name == "trunc") {
        double (*f)(double) =
            name == "floor"   ? static_cast<double (*)(double)>(std::floor)
            : name == "ceil"  ? static_cast<double (*)(double)>(std::ceil)
            : name == "round" ? static_cast<double (*)(double)>(std::round)
                              : static_cast<double (*)(double)>(std::trunc);
        return map1([f](const Interval& a) {
          return iv_range(f(a.lo), f(a.hi), true, a.maybe_nan);
        });
      }
      if (name == "frac") {
        return map1([](const Interval& a) {
          return iv_range(-1, 1, false, a.maybe_nan || may_inf(a));
        });
      }
      if (name == "sign") {
        return map1([](const Interval& a) {
          return iv_range(-1, 1, true, a.maybe_nan);
        });
      }
      if (name == "sin" || name == "cos") {
        return map1([](const Interval& a) {
          return iv_range(-1, 1, false, a.maybe_nan || may_inf(a));
        });
      }
      if (name == "tanh") {
        return map1([](const Interval& a) {
          return iv_range(-1, 1, false, a.maybe_nan);
        });
      }
      if (name == "atan") {
        return map1([](const Interval& a) {
          return iv_range(-kPi / 2, kPi / 2, false, a.maybe_nan);
        });
      }
      if (name == "asin" || name == "acos") {
        return map1([&](const Interval&) {
          return iv_range(name == "asin" ? -kPi / 2 : 0, kPi, false, true);
        });
      }
      if (name == "tan" || name == "sinh" || name == "cosh" || name == "ln" ||
          name == "log10" || name == "log2" || name == "deg" ||
          name == "rad") {
        return map1([](const Interval&) {
          return Interval{-kAbsInf, kAbsInf, false, true};
        });
      }
      if (name == "len") {
        const AbsVal& a = args[0];
        Interval r = kLenTop;
        if (a.proven_vector()) r = a.len;
        return AbsVal::scalar(r);
      }
      if (name == "zeros" || name == "ones") {
        const Interval c = num(0);
        const Interval len =
            iv_range(std::max(0.0, c.lo), std::min(c.hi, 1e8), true);
        return AbsVal::vector(len, iv_exact(name == "zeros" ? 0 : 1));
      }
      if (name == "reverse" || name == "sort") {
        const AbsVal& a = args[0];
        return AbsVal::vector(a.may_vector ? a.len : kLenTop,
                              a.may_vector ? a.elem : iv_top());
      }
      if (name == "minv" || name == "maxv") {
        const AbsVal& a = args[0];
        return AbsVal::scalar(a.may_vector ? a.elem : iv_top());
      }
      if (name == "sum" || name == "prod" || name == "mean" ||
          name == "stddev" || name == "norm" || name == "fact") {
        return AbsVal::scalar(iv_top());
      }
    }
    if (n == 2) {
      if (name == "append") {
        const AbsVal& v = args[0];
        const Interval len = v.may_vector ? iv_add(v.len, iv_exact(1))
                                          : iv_range(1, kAbsInf, true);
        Interval elem = join(v.may_vector ? v.elem : iv_top(), num(1));
        return AbsVal::vector(len, elem);
      }
      if (name == "concat") {
        const AbsVal& a = args[0];
        const AbsVal& b = args[1];
        if (a.may_vector && b.may_vector)
          return AbsVal::vector(iv_add(a.len, b.len), join(a.elem, b.elem));
        return AbsVal::vector(kLenTop, iv_top());
      }
      if (name == "get") {
        const AbsVal& v = args[0];
        return AbsVal::scalar(v.may_vector ? v.elem : iv_top());
      }
      if (name == "dot") return AbsVal::scalar(iv_top());
      if (name == "hypot") {
        return AbsVal::scalar(iv_range(
            0, kAbsInf, false, num(0).maybe_nan || num(1).maybe_nan));
      }
      if (name == "atan2") {
        return AbsVal::scalar(iv_range(
            -kPi, kPi, false, num(0).maybe_nan || num(1).maybe_nan));
      }
      if (name == "pow") {
        const Interval a = num(0);
        const Interval b = num(1);
        if (a.lo >= 0)
          return AbsVal::scalar(
              iv_range(0, kAbsInf, false, a.maybe_nan || b.maybe_nan));
        return AbsVal::scalar(iv_top());
      }
      if (name == "ncr" || name == "npr") return AbsVal::scalar(iv_top());
    }
    if (n == 3) {
      if (name == "slice") {
        const AbsVal& v = args[0];
        return AbsVal::vector(
            iv_range(0, v.may_vector ? v.len.hi : kAbsInf, true),
            v.may_vector ? v.elem : iv_top());
      }
      if (name == "set") {
        const AbsVal& v = args[0];
        if (v.may_vector)
          return AbsVal::vector(v.len, join(v.elem, num(2)));
        return AbsVal::vector(kLenTop, iv_top());
      }
      if (name == "clamp") {
        return AbsVal::scalar(join(join(num(0), num(1)), num(2)));
      }
    }
    if (name == "rand" && n == 0)
      return AbsVal::scalar(iv_range(0, 1, false, false));
    if (name == "str") return AbsVal::string();
    if (name == "min" || name == "max") {
      bool all_scalar = n > 0;
      for (const AbsVal& a : args) all_scalar = all_scalar && a.proven_scalar();
      if (all_scalar) {
        Interval r = num(0);
        for (std::size_t i = 1; i < n; ++i) {
          const Interval c = num(i);
          r = name == "min"
                  ? Interval{std::min(r.lo, c.lo), std::min(r.hi, c.hi),
                             r.integer && c.integer, r.maybe_nan || c.maybe_nan}
                  : Interval{std::max(r.lo, c.lo), std::max(r.hi, c.hi),
                             r.integer && c.integer,
                             r.maybe_nan || c.maybe_nan};
        }
        return AbsVal::scalar(r);
      }
      return AbsVal::scalar(iv_top());
    }
    return AbsVal::top_bound();
  }

  // ---- condition refinement ----

  [[nodiscard]] AbsState refine(const AbsState& st, const Expr& cond,
                                bool want) {
    AbsState r = st;
    refine_into(r, cond, want);
    return r;
  }

  void refine_into(AbsState& st, const Expr& cond, bool want) {
    if (const auto* u = std::get_if<Unary>(&cond.node);
        u != nullptr && u->op == UnOp::Not) {
      refine_into(st, *u->operand, !want);
      return;
    }
    if (const auto* v = std::get_if<VarRef>(&cond.node)) {
      auto it = st.vars.find(v->name);
      if (it == st.vars.end() || !it->second.proven_scalar()) return;
      Interval& n = it->second.num;
      if (!want && n.lo <= 0 && n.hi >= 0) {
        // Falsy scalar: exactly zero, and not NaN (NaN is truthy).
        n = iv_exact(0);
      } else if (want && n.integer && !(n.lo == 0 && n.hi == 0)) {
        if (n.lo == 0) n.lo = 1;
        if (n.hi == 0) n.hi = -1;
      }
      return;
    }
    const auto* b = std::get_if<pits::Binary>(&cond.node);
    if (b == nullptr) return;
    if (b->op == BinOp::And && want) {
      refine_into(st, *b->lhs, true);
      refine_into(st, *b->rhs, true);
      return;
    }
    if (b->op == BinOp::Or && !want) {
      refine_into(st, *b->lhs, false);
      refine_into(st, *b->rhs, false);
      return;
    }
    switch (b->op) {
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge:
      case BinOp::Eq:
      case BinOp::Ne:
        break;
      default:
        return;
    }
    if (const auto* lv = std::get_if<VarRef>(&b->lhs->node)) {
      const AbsVal c = eval_quiet(*b->rhs, st);
      refine_var_cmp(st, lv->name, b->op, c, want);
    }
    if (const auto* rv = std::get_if<VarRef>(&b->rhs->node)) {
      const AbsVal c = eval_quiet(*b->lhs, st);
      refine_var_cmp(st, rv->name, flip(b->op), c, want);
    }
  }

  static BinOp flip(BinOp op) {
    switch (op) {
      case BinOp::Lt: return BinOp::Gt;
      case BinOp::Le: return BinOp::Ge;
      case BinOp::Gt: return BinOp::Lt;
      case BinOp::Ge: return BinOp::Le;
      default: return op;
    }
  }

  /// Clamps `name`'s interval knowing `name <op> c` evaluated to `want`.
  /// NaN care: the walker's compare maps NaN to "equal", so a false `<`
  /// still admits NaN while a false `<=` excludes it.
  void refine_var_cmp(AbsState& st, const std::string& name, BinOp op,
                      const AbsVal& c, bool want) {
    auto it = st.vars.find(name);
    if (it == st.vars.end() || !it->second.proven_scalar() ||
        !c.proven_scalar())
      return;
    Interval n = it->second.num;
    const Interval& k = c.num;
    const bool ints = n.integer && k.integer;
    const auto step_lo = [&](double v) { return ints ? v + 1 : v; };
    const auto step_hi = [&](double v) { return ints ? v - 1 : v; };
    // Normalise to a true-branch op; the negation swaps strictness and
    // therefore the NaN outcome.
    const BinOp eff = want ? op : [&] {
      switch (op) {
        case BinOp::Lt: return BinOp::Ge;
        case BinOp::Le: return BinOp::Gt;
        case BinOp::Gt: return BinOp::Le;
        case BinOp::Ge: return BinOp::Lt;
        case BinOp::Eq: return BinOp::Ne;
        default: return BinOp::Eq;
      }
    }();
    // Under cmp semantics, Lt/Gt/Eq true excludes NaN; Le/Ge/Ne true
    // admit it (NaN orders as equal, NaN != x is true).
    switch (eff) {
      case BinOp::Lt:
        n.hi = std::min(n.hi, step_hi(k.hi));
        n.maybe_nan = false;
        break;
      case BinOp::Le:
        n.hi = std::min(n.hi, k.hi);
        break;
      case BinOp::Gt:
        n.lo = std::max(n.lo, step_lo(k.lo));
        n.maybe_nan = false;
        break;
      case BinOp::Ge:
        n.lo = std::max(n.lo, k.lo);
        break;
      case BinOp::Eq:
        n.lo = std::max(n.lo, k.lo);
        n.hi = std::min(n.hi, k.hi);
        n.maybe_nan = false;
        if (k.integer) n.integer = true;
        break;
      default:
        return;  // Ne: no interval information
    }
    if (n.lo > n.hi) {
      if (!n.maybe_nan) st.reachable = false;
      return;
    }
    it->second.num = n;
  }

  // ---- statements ----

  void exec_block(const Block& block, AbsState& st) {
    for (const StmtPtr& sp : block) exec_stmt(*sp, st);
  }

  void exec_stmt(const Stmt& s, AbsState& st) {
    if (!st.reachable) return;
    std::visit([&](const auto& node) { exec_node(node, s, st); }, s.node);
  }

  void exec_node(const AssignStmt& node, const Stmt&, AbsState& st) {
    if (node.index != nullptr) {
      const AbsVal idx = eval(*node.index, st);
      const AbsVal val = eval(*node.value, st);
      const AbsVal cur = peek_var(st, node.target);
      if (!cur.origin.empty()) {
        const double need =
            idx.may_scalar && idx.num.lo >= 0 && std::isfinite(idx.num.lo)
                ? std::floor(idx.num.lo) + 1
                : 1;
        demand_vector(st, cur.origin, need, node.index->pos);
      }
      if (!idx.origin.empty()) demand_scalar(st, idx.origin, node.index->pos);
      if (cfg_.sink != nullptr && recording(st) && cur.proven_vector() &&
          idx.proven_scalar() && !idx.num.maybe_nan &&
          !already({"BAN105"}, node.index->pos)) {
        const Interval& n = idx.num;
        if (n.hi < 0 || (std::isfinite(cur.len.hi) && n.lo >= cur.len.hi)) {
          emit("BAN302", node.index->pos,
               "assigned index in [" + num_text(n.lo) + ", " +
                   num_text(n.hi) +
                   "] is proven out of range for a vector of length " +
                   len_text(cur.len));
        }
      }
      if (cfg_.facts != nullptr && recording(st) && cur.must_assigned &&
          index_safe(cur, idx) && val.proven_scalar()) {
        cfg_.facts->safe_indexed_store.insert(&node);
      }
      // After a successful store the target is a bound vector of the
      // same length with the stored value folded into its elements.
      AbsVal nv;
      nv.may_scalar = nv.may_string = nv.may_unbound = false;
      nv.must_assigned = true;
      nv.len = cur.may_vector ? cur.len : kLenTop;
      nv.elem = cur.may_vector
                    ? join(cur.elem, val.may_scalar ? val.num : iv_top())
                    : iv_top();
      st.vars[node.target] = std::move(nv);
      return;
    }
    AbsVal val = eval(*node.value, st);
    val.may_unbound = false;
    val.must_assigned = true;
    st.vars[node.target] = std::move(val);
  }

  void exec_node(const ExprStmt& node, const Stmt&, AbsState& st) {
    (void)eval(*node.expr, st);
  }

  void exec_node(const ReturnStmt&, const Stmt&, AbsState& st) {
    exit_acc_ = join_state(exit_acc_, st);
    st.reachable = false;
  }

  void exec_node(const FormulaDef& node, const Stmt&, AbsState& st) {
    const std::size_t di = def_index_.at(&node);
    st.def_may |= 1ULL << std::min<std::size_t>(di, 63);
    if (defs_.size() <= 63) st.def_must |= 1ULL << di;
  }

  void exec_node(const IfStmt& node, const Stmt&, AbsState& st) {
    AbsState out;
    out.reachable = false;
    AbsState cur = st;
    for (std::size_t i = 0; i < node.arms.size(); ++i) {
      const IfStmt::Arm& arm = node.arms[i];
      const AbsVal c = eval(*arm.cond, cur);
      const Tri t = cur.reachable ? truth_of(c) : Tri::Maybe;
      if (cfg_.sink != nullptr && recording(cur)) {
        if (t == Tri::False) {
          emit("BAN303", arm.cond->pos,
               "condition is provably always false — this branch never runs");
        } else if (t == Tri::True &&
                   (i + 1 < node.arms.size() || !node.else_body.empty())) {
          emit("BAN303", arm.cond->pos,
               "condition is provably always true — the later branches "
               "never run");
        }
      }
      AbsState arm_st = refine(cur, *arm.cond, true);
      if (t == Tri::False) arm_st.reachable = false;
      exec_block(arm.body, arm_st);
      out = join_state(out, arm_st);
      AbsState next = refine(cur, *arm.cond, false);
      if (t == Tri::True) next.reachable = false;
      cur = std::move(next);
    }
    exec_block(node.else_body, cur);
    st = join_state(out, cur);
  }

  /// Iterates a loop body to a fixpoint from `head` (plain join for two
  /// rounds, then widening), with recording suppressed. `enter` prepares
  /// each iteration's entry state in place.
  template <typename EnterFn>
  AbsState stabilize(const Block& body, AbsState head, EnterFn&& enter) {
    const bool saved = record_;
    record_ = false;
    for (int iter = 0;; ++iter) {
      AbsState in = head;
      enter(in);
      AbsState out = in;
      exec_block(body, out);
      AbsState next = join_state(head, out);
      if (state_eq(next, head)) break;
      head = iter >= 2 ? widen_state(head, next) : std::move(next);
      if (iter >= 40) {
        // Safety net; widening should converge far earlier.
        for (auto& [k, v] : head.vars) v = AbsVal::top();
        break;
      }
    }
    record_ = saved;
    return head;
  }

  void exec_node(const WhileStmt& node, const Stmt& s, AbsState& st) {
    AbsState head = stabilize(node.body, st, [&](AbsState& in) {
      const Tri t = truth_of(eval_quiet(*node.cond, in));
      AbsState refined = refine(in, *node.cond, true);
      if (t == Tri::False) refined.reachable = false;
      in = std::move(refined);
    });
    // Recording pass from the stable head.
    const AbsVal c = eval(*node.cond, head);
    const Tri t = head.reachable ? truth_of(c) : Tri::Maybe;
    if (cfg_.sink != nullptr && recording(head)) {
      if (t == Tri::False) {
        emit("BAN303", node.cond->pos,
             "`while` condition is provably always false — the loop body "
             "never runs");
      } else if (t == Tri::True && !block_returns(node.body) &&
                 !already({"BAN108"}, s.pos) &&
                 !already({"BAN108"}, node.cond->pos)) {
        emit("BAN304", node.cond->pos,
             "`while` condition is provably always true and the body cannot "
             "return — the loop only ends at the step limit");
      }
    }
    AbsState in = refine(head, *node.cond, true);
    if (t == Tri::False) in.reachable = false;
    AbsState body_out = in;
    exec_block(node.body, body_out);
    st = refine(head, *node.cond, false);
    if (t == Tri::True) st.reachable = false;
  }

  void exec_node(const RepeatStmt& node, const Stmt&, AbsState& st) {
    const AbsVal cv = eval(*node.count, st);
    if (!cv.origin.empty()) demand_scalar(st, cv.origin, node.count->pos);
    if (!cv.may_scalar) {  // as_scalar always fails: proven runtime error
      st.reachable = false;
      return;
    }
    const Interval n = cv.num;
    const bool no_integer = !n.integer && std::floor(n.lo) == std::floor(n.hi) &&
                            n.lo > std::floor(n.lo);
    if (cv.proven_scalar() && !n.maybe_nan && (n.hi < 0 || no_integer)) {
      st.reachable = false;  // count validation is proven to fail
      return;
    }
    const bool body_possible = n.hi >= 1 || n.maybe_nan || !cv.proven_scalar();
    const bool at_least_one = cv.proven_scalar() && !n.maybe_nan && n.lo >= 1;
    AbsState head = stabilize(node.body, st, [&](AbsState& in) {
      if (!body_possible) in.reachable = false;
    });
    AbsState in = head;
    if (!body_possible) in.reachable = false;
    AbsState out = in;
    exec_block(node.body, out);  // recording pass
    st = at_least_one ? std::move(out) : std::move(head);
  }

  void exec_node(const ForStmt& node, const Stmt&, AbsState& st) {
    const AbsVal fv = eval(*node.from, st);
    const AbsVal tv = eval(*node.to, st);
    const AbsVal sv = node.step != nullptr
                          ? eval(*node.step, st)
                          : AbsVal::scalar(iv_exact(1));
    if (!fv.origin.empty()) demand_scalar(st, fv.origin, node.from->pos);
    if (!tv.origin.empty()) demand_scalar(st, tv.origin, node.to->pos);
    if (node.step != nullptr && !sv.origin.empty())
      demand_scalar(st, sv.origin, node.step->pos);
    if (!fv.may_scalar || !tv.may_scalar || !sv.may_scalar) {
      st.reachable = false;  // ToScalar is proven to fail
      return;
    }
    const Interval f = fv.num;
    const Interval t = tv.num;
    const Interval sp = sv.num;
    if (sp.is_exact() && sp.lo == 0) {
      st.reachable = false;  // "for step must be nonzero" always fires
      return;
    }
    const bool pos_step = sp.lo > 0 && !sp.maybe_nan;
    const bool neg_step = sp.hi < 0 && !sp.maybe_nan;
    // The walker's continuation test carries a 1e-12 epsilon; proving
    // "never iterates" uses a strictly larger margin to stay sound.
    const bool body_possible = !(pos_step && f.lo > t.hi + 1e-9) &&
                               !(neg_step && f.hi < t.lo - 1e-9);
    const bool at_least_one =
        !f.maybe_nan && !t.maybe_nan &&
        ((pos_step && f.hi <= t.lo) || (neg_step && f.lo >= t.hi));
    AbsVal lvv = AbsVal::scalar(loop_var_interval(f, t, sp));
    lvv.must_assigned = true;
    AbsState head = stabilize(node.body, st, [&](AbsState& in) {
      in.vars[node.var] = lvv;
      if (!body_possible) in.reachable = false;
    });
    AbsState in = head;
    in.vars[node.var] = lvv;
    if (!body_possible) in.reachable = false;
    AbsState out = in;
    exec_block(node.body, out);  // recording pass
    st = at_least_one ? std::move(out) : std::move(head);
  }

  /// Interval of the values the loop variable takes inside the body.
  /// NaN bounds never reach the body (the continuation test fails), so
  /// the result is NaN-free.
  static Interval loop_var_interval(const Interval& f, const Interval& t,
                                    const Interval& sp) {
    const bool ints = f.integer && sp.integer;
    const double extra = ints && t.integer ? 0.0 : 1.0;
    double lo;
    double hi;
    if (sp.lo > 0 && !sp.maybe_nan) {
      lo = f.lo;
      hi = t.hi + extra;
    } else if (sp.hi < 0 && !sp.maybe_nan) {
      lo = t.lo - extra;
      hi = f.hi;
    } else {
      lo = std::min(f.lo, t.lo - extra);
      hi = std::max(f.hi, t.hi + extra);
    }
    return iv_range(lo, hi, ints);
  }

  [[nodiscard]] static bool block_returns(const Block& block) {
    for (const StmtPtr& sp : block) {
      bool found = false;
      std::visit(
          [&](const auto& node) {
            using T = std::decay_t<decltype(node)>;
            if constexpr (std::is_same_v<T, ReturnStmt>) {
              found = true;
            } else if constexpr (std::is_same_v<T, IfStmt>) {
              for (const IfStmt::Arm& arm : node.arms)
                found = found || block_returns(arm.body);
              found = found || block_returns(node.else_body);
            } else if constexpr (std::is_same_v<T, WhileStmt> ||
                                 std::is_same_v<T, RepeatStmt> ||
                                 std::is_same_v<T, ForStmt>) {
              found = block_returns(node.body);
            }
          },
          sp->node);
      if (found) return true;
    }
    return false;
  }

  // ---- members ----

  Config cfg_;
  bool record_ = true;
  int depth_ = 0;  ///< formula inlining depth; facts/diags only at 0
  AbsState exit_acc_;
  std::vector<const FormulaDef*> defs_;
  std::unordered_map<const FormulaDef*, std::size_t> def_index_;
  std::unordered_map<std::string, std::vector<std::size_t>> formula_index_;
  std::unordered_map<const FormulaDef*, AbsVal> summaries_;
  std::unordered_set<const FormulaDef*> in_flight_;
  std::set<std::pair<int, int>> proven_reads_;
};

}  // namespace

// ---------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------

pits::bc::AnalysisFacts compute_facts(const pits::Block& body) {
  pits::bc::AnalysisFacts facts;
  AbsInterp::Config cfg;
  cfg.context_free = true;
  cfg.facts = &facts;
  AbsInterp engine(cfg);
  engine.run(body);
  engine.mark_single_ticks(body, facts);
  return facts;
}

void precompile_optimized(const pits::Program& program) {
  program.precompile(compute_facts(program.body()));
}

ShapeSummary run_absint_rules(const pits::Block& body,
                              const RoutineContext& context,
                              std::vector<Diagnostic>& sink) {
  ShapeSummary summary;
  AbsInterp::Config cfg;
  cfg.context_free = false;
  cfg.ctx = &context;
  cfg.sink = &sink;
  cfg.summary = &summary;
  AbsInterp engine(cfg);
  engine.run(body);
  // Drop BAN101 reports the interpreter proves wrong: the read is
  // reached only with the variable assigned (e.g. a for-loop variable
  // after a loop proven to iterate at least once).
  const auto& proven = engine.proven_reads();
  if (!proven.empty()) {
    std::erase_if(sink, [&](const Diagnostic& d) {
      return d.code == "BAN101" && d.subject == context.subject &&
             proven.count({d.pos.line, d.pos.column}) > 0;
    });
  }
  return summary;
}

void run_shape_rules(const graph::FlattenResult& flat,
                     const std::map<graph::TaskId, ShapeSummary>& summaries,
                     std::vector<Diagnostic>& sink) {
  auto emit = [&](const std::string& task, SourcePos pos, std::string msg,
                  std::string hint = {}) {
    const DiagnosticRule* rule = find_rule("BAN306");
    Diagnostic d;
    d.code = "BAN306";
    d.severity = rule != nullptr ? rule->severity : Severity::Warning;
    d.subject_kind = "task";
    d.subject = task;
    d.message = std::move(msg);
    d.hint = std::move(hint);
    d.pos = pos;
    sink.push_back(std::move(d));
  };
  for (const graph::FlatStore& store : flat.stores) {
    if (store.writers.empty() || store.readers.empty()) continue;
    AbsVal produced;
    bool have = !store.writers.empty();
    bool first = true;
    for (graph::TaskId w : store.writers) {
      auto it = summaries.find(w);
      if (it == summaries.end()) {
        have = false;
        break;
      }
      auto out = it->second.outputs.find(store.var);
      if (out == it->second.outputs.end() || out->second.may_unbound) {
        have = false;
        break;
      }
      produced = first ? out->second : join(produced, out->second);
      first = false;
    }
    if (!have) continue;
    for (graph::TaskId r : store.readers) {
      auto it = summaries.find(r);
      if (it == summaries.end()) continue;
      auto dit = it->second.demands.find(store.var);
      if (dit == it->second.demands.end()) continue;
      const ShapeDemand& d = dit->second;
      const std::string& task = flat.graph.task(r).name;
      if (d.needs_vector && (produced.proven_scalar() ||
                             produced.proven_string())) {
        emit(task, d.pos,
             "`" + store.var + "` is indexed here, but every producer of "
             "store `" + store.name + "` sends a " +
                 (produced.proven_scalar() ? "number" : "string"),
             "make the producer send a vector, or stop indexing the input");
        continue;
      }
      if (d.needs_scalar && produced.proven_vector()) {
        emit(task, d.pos,
             "`" + store.var + "` is used as a count or bound here, but "
             "every producer of store `" + store.name + "` sends a vector");
        continue;
      }
      if (produced.proven_vector() && d.needs_vector &&
          produced.len.hi < d.min_len) {
        emit(task, d.pos,
             "`" + store.var + "` needs at least " +
                 std::to_string(static_cast<long long>(d.min_len)) +
                 " element(s) here, but producers of store `" + store.name +
                 "` send at most " +
                 std::to_string(static_cast<long long>(produced.len.hi)));
        continue;
      }
      if (produced.proven_vector() && d.elem_len >= 0 &&
          (produced.len.hi < d.elem_len || produced.len.lo > d.elem_len)) {
        emit(task, d.pos,
             "elementwise use of `" + store.var + "` requires length " +
                 std::to_string(static_cast<long long>(d.elem_len)) +
                 ", but producers of store `" + store.name +
                 "` send a different length");
      }
    }
  }
}

}  // namespace banger::analyze
