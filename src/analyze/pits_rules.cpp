// PITS routine dataflow layer (BAN101-BAN108): a forward must-assign
// analysis with branch intersection, straight-line constant propagation
// (loops kill the constants of everything they assign), and a global
// read/write census for dead-store detection. The analysis mirrors the
// interpreter's semantics (interp.cpp): `when` is a 3-argument special
// form, formula bodies see only their parameters and the constants, for
// loop variables are assigned only when the body runs, vector indices
// are 0-based integers.
#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>

#include "analyze/analyze.hpp"
#include "pits/builtins.hpp"
#include "pits/value.hpp"

namespace banger::analyze {

namespace {

using pits::AssignStmt;
using pits::BinOp;
using pits::Block;
using pits::Call;
using pits::Expr;
using pits::ExprStmt;
using pits::ForStmt;
using pits::FormulaDef;
using pits::IfStmt;
using pits::Index;
using pits::NumberLit;
using pits::RepeatStmt;
using pits::ReturnStmt;
using pits::Stmt;
using pits::StringLit;
using pits::UnOp;
using pits::Unary;
using pits::Value;
using pits::VarRef;
using pits::VectorLit;
using pits::WhileStmt;

/// Edit distance for "did you mean" hints on unknown function names.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = up;
    }
  }
  return row[b.size()];
}

std::string closest_builtin(const std::string& name) {
  std::string best;
  std::size_t best_d = 3;  // suggest only within edit distance 2
  for (const std::string& candidate : pits::BuiltinRegistry::instance().names()) {
    const std::size_t d = edit_distance(name, candidate);
    if (d < best_d) {
      best_d = d;
      best = candidate;
    }
  }
  return best;
}

class RoutineAnalyzer {
 public:
  RoutineAnalyzer(const RoutineContext& context, std::vector<Diagnostic>& sink)
      : ctx_(context), sink_(sink) {}

  void run(const Block& body) {
    collect_formulas(body);
    census_block(body, /*in_formula=*/false);
    State st;
    st.defined.insert(ctx_.inputs.begin(), ctx_.inputs.end());
    walk_block(body, st);
    report_dead_stores();
  }

 private:
  struct State {
    std::set<std::string> defined;           // must-assigned here
    std::map<std::string, Value> consts;     // known constant values
  };

  // ---- reporting ----

  SourcePos at(SourcePos p) const {
    if (!p.valid() || ctx_.pits_line <= 0) return p;
    return {ctx_.pits_line + p.line - 1, p.column + ctx_.pits_indent};
  }

  void emit(std::string code, SourcePos pos, std::string message,
            std::string hint = {}) {
    const DiagnosticRule* rule = find_rule(code);
    Diagnostic d;
    d.code = std::move(code);
    d.severity = rule != nullptr ? rule->severity : Severity::Warning;
    d.subject_kind = "task";
    d.subject = ctx_.subject;
    d.message = std::move(message);
    d.hint = std::move(hint);
    d.pos = at(pos);
    sink_.push_back(std::move(d));
  }

  // ---- pre-passes ----

  void collect_formulas(const Block& block) {
    for_each_stmt(block, [&](const Stmt& s) {
      if (const auto* def = std::get_if<FormulaDef>(&s.node)) {
        formulas_.emplace(def->name, def->params.size());
      }
    });
  }

  /// Global read/write census: which variables are read anywhere, and the
  /// first assignment site of each (for dead-store reporting). Formula
  /// parameters shadow task variables inside formula bodies.
  void census_block(const Block& block, bool in_formula) {
    for (const auto& s : block) census_stmt(*s, in_formula);
  }

  void census_stmt(const Stmt& s, bool in_formula) {
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, AssignStmt>) {
            if (node.index) {
              reads_.insert(node.target);  // element assign reads the vector
              census_expr(*node.index, {});
            }
            census_expr(*node.value, {});
            if (!in_formula) {
              first_assign_.try_emplace(node.target, s.pos);
            }
          } else if constexpr (std::is_same_v<T, IfStmt>) {
            for (const auto& arm : node.arms) {
              census_expr(*arm.cond, {});
              census_block(arm.body, in_formula);
            }
            census_block(node.else_body, in_formula);
          } else if constexpr (std::is_same_v<T, WhileStmt>) {
            census_expr(*node.cond, {});
            census_block(node.body, in_formula);
          } else if constexpr (std::is_same_v<T, RepeatStmt>) {
            census_expr(*node.count, {});
            census_block(node.body, in_formula);
          } else if constexpr (std::is_same_v<T, ForStmt>) {
            census_expr(*node.from, {});
            census_expr(*node.to, {});
            if (node.step) census_expr(*node.step, {});
            loop_vars_.insert(node.var);
            census_block(node.body, in_formula);
          } else if constexpr (std::is_same_v<T, FormulaDef>) {
            census_expr(*node.body,
                        {node.params.begin(), node.params.end()});
          } else if constexpr (std::is_same_v<T, ExprStmt>) {
            census_expr(*node.expr, {});
          } else {
            (void)node;  // ReturnStmt
          }
        },
        s.node);
  }

  void census_expr(const Expr& e, const std::set<std::string>& shadowed) {
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, VarRef>) {
            if (!shadowed.contains(node.name)) reads_.insert(node.name);
          } else if constexpr (std::is_same_v<T, VectorLit>) {
            for (const auto& el : node.elements) census_expr(*el, shadowed);
          } else if constexpr (std::is_same_v<T, Unary>) {
            census_expr(*node.operand, shadowed);
          } else if constexpr (std::is_same_v<T, pits::Binary>) {
            census_expr(*node.lhs, shadowed);
            census_expr(*node.rhs, shadowed);
          } else if constexpr (std::is_same_v<T, Index>) {
            census_expr(*node.base, shadowed);
            census_expr(*node.index, shadowed);
          } else if constexpr (std::is_same_v<T, Call>) {
            for (const auto& a : node.args) census_expr(*a, shadowed);
          }
        },
        e.node);
  }

  template <typename Fn>
  static void for_each_stmt(const Block& block, const Fn& fn) {
    for (const auto& s : block) {
      fn(*s);
      std::visit(
          [&](const auto& node) {
            using T = std::decay_t<decltype(node)>;
            if constexpr (std::is_same_v<T, IfStmt>) {
              for (const auto& arm : node.arms) for_each_stmt(arm.body, fn);
              for_each_stmt(node.else_body, fn);
            } else if constexpr (std::is_same_v<T, WhileStmt> ||
                                 std::is_same_v<T, RepeatStmt> ||
                                 std::is_same_v<T, ForStmt>) {
              for_each_stmt(node.body, fn);
            }
          },
          s->node);
    }
  }

  static std::set<std::string> assigned_in(const Block& block) {
    std::set<std::string> out;
    for_each_stmt(block, [&](const Stmt& s) {
      if (const auto* a = std::get_if<AssignStmt>(&s.node)) {
        out.insert(a->target);
      } else if (const auto* f = std::get_if<ForStmt>(&s.node)) {
        out.insert(f->var);
      }
    });
    return out;
  }

  static bool returns_in(const Block& block) {
    bool found = false;
    for_each_stmt(block, [&](const Stmt& s) {
      if (std::holds_alternative<ReturnStmt>(s.node)) found = true;
    });
    return found;
  }

  static void vars_in(const Expr& e, std::set<std::string>& out) {
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, VarRef>) {
            out.insert(node.name);
          } else if constexpr (std::is_same_v<T, VectorLit>) {
            for (const auto& el : node.elements) vars_in(*el, out);
          } else if constexpr (std::is_same_v<T, Unary>) {
            vars_in(*node.operand, out);
          } else if constexpr (std::is_same_v<T, pits::Binary>) {
            vars_in(*node.lhs, out);
            vars_in(*node.rhs, out);
          } else if constexpr (std::is_same_v<T, Index>) {
            vars_in(*node.base, out);
            vars_in(*node.index, out);
          } else if constexpr (std::is_same_v<T, Call>) {
            for (const auto& a : node.args) vars_in(*a, out);
          }
        },
        e.node);
  }

  // ---- constant folding (scalar + literal-vector, no calls) ----

  std::optional<Value> fold(const Expr& e, const State& st) const {
    return std::visit(
        [&](const auto& node) -> std::optional<Value> {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, NumberLit>) {
            return Value(node.value);
          } else if constexpr (std::is_same_v<T, StringLit>) {
            return Value(node.value);
          } else if constexpr (std::is_same_v<T, VarRef>) {
            if (auto it = st.consts.find(node.name); it != st.consts.end()) {
              return it->second;
            }
            if (auto it = pits::constants().find(node.name);
                it != pits::constants().end()) {
              return Value(it->second);
            }
            return std::nullopt;
          } else if constexpr (std::is_same_v<T, VectorLit>) {
            pits::Vector v;
            v.reserve(node.elements.size());
            for (const auto& el : node.elements) {
              auto f = fold(*el, st);
              if (!f || !f->is_scalar()) return std::nullopt;
              v.push_back(f->as_scalar());
            }
            return Value(std::move(v));
          } else if constexpr (std::is_same_v<T, Unary>) {
            auto f = fold(*node.operand, st);
            if (!f) return std::nullopt;
            if (node.op == UnOp::Not) return Value(f->truthy() ? 0.0 : 1.0);
            if (!f->is_scalar()) return std::nullopt;
            return Value(-f->as_scalar());
          } else if constexpr (std::is_same_v<T, pits::Binary>) {
            return fold_binary(node, st);
          } else if constexpr (std::is_same_v<T, Index>) {
            auto base = fold(*node.base, st);
            auto index = fold(*node.index, st);
            if (!base || !index || !base->is_vector() || !index->is_scalar()) {
              return std::nullopt;
            }
            const double raw = index->as_scalar();
            const auto& vec = base->as_vector();
            if (std::floor(raw) != raw || raw < 0 ||
                raw >= static_cast<double>(vec.size())) {
              return std::nullopt;  // reported separately as BAN105
            }
            return Value(vec[static_cast<std::size_t>(raw)]);
          } else {
            return std::nullopt;  // calls are never folded (rand, print)
          }
        },
        e.node);
  }

  std::optional<Value> fold_binary(const pits::Binary& node,
                                   const State& st) const {
    auto lhs = fold(*node.lhs, st);
    auto rhs = fold(*node.rhs, st);
    if (!lhs || !rhs) return std::nullopt;
    if (node.op == BinOp::And) {
      return Value(lhs->truthy() && rhs->truthy() ? 1.0 : 0.0);
    }
    if (node.op == BinOp::Or) {
      return Value(lhs->truthy() || rhs->truthy() ? 1.0 : 0.0);
    }
    if (node.op == BinOp::Eq) return Value(lhs->equals(*rhs) ? 1.0 : 0.0);
    if (node.op == BinOp::Ne) return Value(lhs->equals(*rhs) ? 0.0 : 1.0);
    if (!lhs->is_scalar() || !rhs->is_scalar()) return std::nullopt;
    const double a = lhs->as_scalar();
    const double b = rhs->as_scalar();
    switch (node.op) {
      case BinOp::Add: return Value(a + b);
      case BinOp::Sub: return Value(a - b);
      case BinOp::Mul: return Value(a * b);
      case BinOp::Div: return b == 0 ? std::nullopt : std::optional(Value(a / b));
      case BinOp::Mod:
        return b == 0 ? std::nullopt : std::optional(Value(std::fmod(a, b)));
      case BinOp::Pow: return Value(std::pow(a, b));
      case BinOp::Lt: return Value(a < b ? 1.0 : 0.0);
      case BinOp::Le: return Value(a <= b ? 1.0 : 0.0);
      case BinOp::Gt: return Value(a > b ? 1.0 : 0.0);
      case BinOp::Ge: return Value(a >= b ? 1.0 : 0.0);
      default: return std::nullopt;
    }
  }

  // ---- expression walk: reads, calls, constant-derived errors ----

  void check_read(const std::string& name, SourcePos pos, const State& st) {
    if (st.defined.contains(name)) return;
    if (pits::constants().contains(name)) return;
    if (formulas_.contains(name)) return;
    if (first_assign_.contains(name) || loop_vars_.contains(name)) {
      emit("BAN101", pos,
           "`" + name + "` may be read before it is assigned",
           "assign `" + name + "` on every path before this statement");
    }
    // Names never assigned anywhere are the routine's free inputs; the
    // interface layer (BAN004) checks those against the declared ports.
  }

  void walk_expr(const Expr& e, State& st) {
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, VarRef>) {
            check_read(node.name, e.pos, st);
          } else if constexpr (std::is_same_v<T, VectorLit>) {
            for (const auto& el : node.elements) walk_expr(*el, st);
          } else if constexpr (std::is_same_v<T, Unary>) {
            walk_expr(*node.operand, st);
          } else if constexpr (std::is_same_v<T, pits::Binary>) {
            walk_expr(*node.lhs, st);
            walk_expr(*node.rhs, st);
            if (node.op == BinOp::Div || node.op == BinOp::Mod) {
              if (auto rhs = fold(*node.rhs, st);
                  rhs && rhs->is_scalar() && rhs->as_scalar() == 0) {
                emit("BAN104", node.rhs->pos,
                     std::string(node.op == BinOp::Div ? "division" : "mod") +
                         " by zero: the divisor is always 0",
                     "guard the division with `if` or `when(...)`");
              }
            }
          } else if constexpr (std::is_same_v<T, Index>) {
            walk_expr(*node.base, st);
            walk_expr(*node.index, st);
            check_index(node, st);
          } else if constexpr (std::is_same_v<T, Call>) {
            for (const auto& a : node.args) walk_expr(*a, st);
            check_call(node, e.pos, st);
          }
        },
        e.node);
  }

  void check_index(const Index& node, const State& st) {
    auto base = fold(*node.base, st);
    auto index = fold(*node.index, st);
    if (!base || !index || !base->is_vector() || !index->is_scalar()) return;
    const double raw = index->as_scalar();
    const std::size_t n = base->as_vector().size();
    if (std::floor(raw) != raw) {
      emit("BAN105", node.index->pos,
           "index " + util_format(raw) + " is not an integer");
    } else if (raw < 0 || raw >= static_cast<double>(n)) {
      emit("BAN105", node.index->pos,
           "index " + util_format(raw) + " is out of range [0," +
               std::to_string(n) + ")",
           "PITS vectors are 0-based");
    }
  }

  static std::string util_format(double v) {
    std::string s = std::to_string(v);
    s.erase(s.find_last_not_of('0') + 1);
    if (!s.empty() && s.back() == '.') s.pop_back();
    return s;
  }

  void check_call(const Call& node, SourcePos pos, const State& st) {
    (void)st;
    const int n = static_cast<int>(node.args.size());
    if (node.callee == "when") {
      if (n != 3) {
        emit("BAN107", pos, "when() expects (condition, then, else), got " +
                                std::to_string(n) + " argument(s)");
      }
      return;
    }
    if (auto it = formulas_.find(node.callee); it != formulas_.end()) {
      if (static_cast<std::size_t>(n) != it->second) {
        emit("BAN107", pos,
             "formula `" + node.callee + "` expects " +
                 std::to_string(it->second) + " argument(s), got " +
                 std::to_string(n));
      }
      return;
    }
    const pits::Builtin* fn =
        pits::BuiltinRegistry::instance().find(node.callee);
    if (fn == nullptr) {
      std::string hint;
      if (std::string near = closest_builtin(node.callee); !near.empty()) {
        hint = "did you mean `" + near + "`?";
      }
      emit("BAN106", pos, "unknown function `" + node.callee + "`",
           std::move(hint));
      return;
    }
    if (n < fn->min_args || (fn->max_args >= 0 && n > fn->max_args)) {
      std::string expects = std::to_string(fn->min_args);
      if (fn->max_args < 0) {
        expects += "+";
      } else if (fn->max_args != fn->min_args) {
        expects += ".." + std::to_string(fn->max_args);
      }
      emit("BAN107", pos,
           "`" + node.callee + "` expects " + expects + " argument(s), got " +
               std::to_string(n));
    }
  }

  // ---- statement walk ----

  void walk_block(const Block& block, State& st) {
    bool after_return = false;
    bool unreachable_reported = false;
    for (const auto& s : block) {
      if (after_return && !unreachable_reported) {
        emit("BAN103", s->pos,
             "statement is unreachable: the routine has already returned",
             "remove the dead code or the `return` above it");
        unreachable_reported = true;
      }
      walk_stmt(*s, st);
      if (std::holds_alternative<ReturnStmt>(s->node)) after_return = true;
    }
  }

  void walk_stmt(const Stmt& s, State& st) {
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, AssignStmt>) {
            if (node.index) {
              check_read(node.target, s.pos, st);
              walk_expr(*node.index, st);
              walk_expr(*node.value, st);
              st.defined.insert(node.target);
              st.consts.erase(node.target);
            } else {
              walk_expr(*node.value, st);
              st.defined.insert(node.target);
              if (auto v = fold(*node.value, st)) {
                st.consts.insert_or_assign(node.target, std::move(*v));
              } else {
                st.consts.erase(node.target);
              }
            }
          } else if constexpr (std::is_same_v<T, IfStmt>) {
            walk_if(node, st);
          } else if constexpr (std::is_same_v<T, WhileStmt>) {
            walk_while(node, s.pos, st);
          } else if constexpr (std::is_same_v<T, RepeatStmt>) {
            walk_expr(*node.count, st);
            walk_loop_body(node.body, st, {});
          } else if constexpr (std::is_same_v<T, ForStmt>) {
            walk_expr(*node.from, st);
            walk_expr(*node.to, st);
            if (node.step) walk_expr(*node.step, st);
            // The loop variable is assigned only when the body runs, so
            // it is not must-defined after the loop.
            walk_loop_body(node.body, st, node.var);
          } else if constexpr (std::is_same_v<T, FormulaDef>) {
            State formula_scope;  // bodies see only parameters + constants
            formula_scope.defined.insert(node.params.begin(),
                                         node.params.end());
            walk_formula_body(*node.body, node, formula_scope);
          } else if constexpr (std::is_same_v<T, ExprStmt>) {
            walk_expr(*node.expr, st);
          } else {
            (void)node;  // ReturnStmt
          }
        },
        s.node);
  }

  void walk_if(const IfStmt& node, State& st) {
    for (const auto& arm : node.arms) walk_expr(*arm.cond, st);
    std::vector<State> outcomes;
    for (const auto& arm : node.arms) {
      State branch = st;
      walk_block(arm.body, branch);
      outcomes.push_back(std::move(branch));
    }
    State else_branch = st;
    walk_block(node.else_body, else_branch);
    outcomes.push_back(std::move(else_branch));
    // Join: a variable is defined/constant after the if only when every
    // branch (including the implicit empty else) agrees.
    State joined = std::move(outcomes.back());
    outcomes.pop_back();
    for (const State& o : outcomes) {
      std::erase_if(joined.defined, [&](const std::string& v) {
        return !o.defined.contains(v);
      });
      std::erase_if(joined.consts, [&](const auto& kv) {
        auto it = o.consts.find(kv.first);
        return it == o.consts.end() || !it->second.equals(kv.second);
      });
    }
    st = std::move(joined);
  }

  void walk_while(const WhileStmt& node, SourcePos pos, State& st) {
    walk_expr(*node.cond, st);
    const auto body_assigns = assigned_in(node.body);
    if (auto cond = fold(*node.cond, st); cond && cond->truthy()) {
      std::set<std::string> cond_vars;
      vars_in(*node.cond, cond_vars);
      const bool vars_change = std::any_of(
          cond_vars.begin(), cond_vars.end(),
          [&](const std::string& v) { return body_assigns.contains(v); });
      if (!vars_change && !returns_in(node.body)) {
        emit("BAN108", pos,
             "loop condition is always true and nothing in the body changes "
             "it",
             "assign one of the condition's variables inside the loop, or "
             "add a `return`");
      }
    }
    walk_loop_body(node.body, st, {});
  }

  /// Analyses a loop body against a state in which every variable the
  /// body assigns has lost its constant (the back edge invalidates first-
  /// iteration knowledge). Definitions made inside the body do not escape
  /// (the body may run zero times).
  void walk_loop_body(const Block& body, State& st,
                      const std::string& loop_var) {
    for (const std::string& v : assigned_in(body)) st.consts.erase(v);
    if (!loop_var.empty()) st.consts.erase(loop_var);
    State inner = st;
    if (!loop_var.empty()) inner.defined.insert(loop_var);
    walk_block(body, inner);
  }

  void walk_formula_body(const Expr& body, const FormulaDef& def,
                         State& scope) {
    // Reads of task variables inside a formula are runtime errors (the
    // body sees only its parameters); check_read reports them as BAN101
    // when the name is assigned elsewhere in the routine.
    (void)def;
    walk_expr(body, scope);
  }

  // ---- dead stores ----

  void report_dead_stores() {
    for (const auto& [var, pos] : first_assign_) {
      if (reads_.contains(var)) continue;
      if (std::find(ctx_.outputs.begin(), ctx_.outputs.end(), var) !=
          ctx_.outputs.end()) {
        continue;
      }
      emit("BAN102", pos,
           "`" + var + "` is assigned but its value is never used",
           "remove the assignment, or declare `" + var +
               "` as an output (out=)");
    }
  }

  const RoutineContext& ctx_;
  std::vector<Diagnostic>& sink_;
  std::map<std::string, std::size_t> formulas_;  // name -> arity
  std::set<std::string> reads_;                  // read anywhere
  std::set<std::string> loop_vars_;              // for-loop variables
  std::map<std::string, SourcePos> first_assign_;
};

}  // namespace

void analyze_routine(const pits::Block& body, const RoutineContext& context,
                     std::vector<Diagnostic>& sink) {
  RoutineAnalyzer(context, sink).run(body);
}

}  // namespace banger::analyze
