// Drawing-level interface rules (BAN001-BAN010) and graph determinacy
// rules (BAN201-BAN203).
//
// The interface layer is the original `lint_design` rule set rewired
// into the diagnostic engine; the message text is kept verbatim so the
// legacy lint output (and its golden tests) are a pure projection of
// these diagnostics.
//
// The determinacy layer asks the question the paper's environment must
// answer before promising users a deterministic trial run: can two tasks
// touch the same storage in an order the schedule gets to choose?
// Ordering is the transitive closure of the flattened dataflow edges,
// computed once as reachability bitsets in reverse topological order.
#include <algorithm>
#include <cstdint>
#include <map>
#include <set>

#include "analyze/analyze.hpp"
#include "pits/interp.hpp"
#include "util/strings.hpp"

namespace banger::analyze {

namespace {

using graph::FlatStore;
using graph::FlattenResult;
using graph::TaskId;

Diagnostic make(std::string code, std::string subject_kind,
                std::string subject, std::string message,
                SourcePos pos = {}, std::string hint = {}) {
  const DiagnosticRule* rule = find_rule(code);
  Diagnostic d;
  d.code = std::move(code);
  d.severity = rule != nullptr ? rule->severity : Severity::Warning;
  d.subject_kind = std::move(subject_kind);
  d.subject = std::move(subject);
  d.message = std::move(message);
  d.hint = std::move(hint);
  d.pos = pos;
  return d;
}

// ---------------------------------------------------------------------
// Interface layer (BAN001-BAN010) — legacy lint rules, verbatim text.
// ---------------------------------------------------------------------

void check_task_interfaces(const FlattenResult& flat,
                           const AnalyzeOptions& options,
                           std::vector<Diagnostic>& sink) {
  for (TaskId t = 0; t < flat.graph.num_tasks(); ++t) {
    const graph::Task& task = flat.graph.task(t);
    const bool empty_body = util::trim(task.pits).empty();

    if (empty_body) {
      if (!task.outputs.empty()) {
        sink.push_back(make("BAN001", "task", task.name,
                            "declares outputs but has no PITS routine",
                            task.pos,
                            "add a `pits { ... }` block that assigns " +
                                util::join(task.outputs, ", ")));
      } else if (options.require_pits) {
        sink.push_back(make("BAN002", "task", task.name,
                            "has no PITS routine (skeleton node)", task.pos));
      }
      continue;
    }

    pits::Program program;
    try {
      program = pits::Program::parse(task.pits);
    } catch (const Error& e) {
      SourcePos pos = task.pos;
      if (task.pits_line > 0 && e.pos().valid()) {
        pos = {task.pits_line + e.pos().line - 1,
               e.pos().column + task.pits_indent};
      }
      sink.push_back(make("BAN003", "task", task.name,
                          std::string("PITS does not parse: ") + e.what(),
                          pos));
      continue;
    }

    // Reads the routine performs but the node does not declare.
    const auto reads = program.inputs();
    for (const std::string& var : reads) {
      if (std::find(task.inputs.begin(), task.inputs.end(), var) ==
          task.inputs.end()) {
        sink.push_back(make(
            "BAN004", "task", task.name,
            "routine reads `" + var + "` which is not a declared input",
            task.pos, "add `" + var + "` to the task's in= list"));
      }
    }
    // Declared inputs the routine never touches.
    for (const std::string& var : task.inputs) {
      if (std::find(reads.begin(), reads.end(), var) == reads.end()) {
        sink.push_back(make("BAN005", "task", task.name,
                            "declared input `" + var + "` is never read",
                            task.pos));
      }
    }
    // Declared outputs the routine never assigns.
    const auto writes = program.outputs();
    for (const std::string& var : task.outputs) {
      if (std::find(writes.begin(), writes.end(), var) == writes.end()) {
        sink.push_back(make(
            "BAN006", "task", task.name,
            "declared output `" + var + "` is never assigned", task.pos,
            "assign `" + var + "` in the routine or drop it from out="));
      }
    }

    if (options.work_estimate_factor > 0) {
      // Crude but useful: statement count as a work proxy.
      const auto statements = static_cast<double>(
          std::count(task.pits.begin(), task.pits.end(), '\n'));
      if (statements > 0 && task.work > 0) {
        const double ratio = task.work / statements;
        if (ratio > options.work_estimate_factor ||
            ratio < 1.0 / options.work_estimate_factor) {
          sink.push_back(
              make("BAN007", "task", task.name,
                   "work estimate " + util::format_double(task.work) +
                       " looks far from routine size (" +
                       util::format_double(statements) + " lines)",
                   task.pos));
        }
      }
    }
  }
}

void check_stores(const FlattenResult& flat, std::vector<Diagnostic>& sink) {
  for (const FlatStore& store : flat.stores) {
    if (store.writers.empty() && store.readers.empty()) {
      sink.push_back(make("BAN008", "store", store.name,
                          "is never read or written (dead store)", store.pos,
                          "delete the store or connect it with arcs"));
    }
  }
  for (TaskId t = 0; t < flat.graph.num_tasks(); ++t) {
    const graph::Task& task = flat.graph.task(t);
    for (const std::string& var : task.inputs) {
      bool supplied = false;
      for (graph::EdgeId e : flat.graph.in_edges(t)) {
        const auto& outputs = flat.graph.task(flat.graph.edge(e).from).outputs;
        if (std::find(outputs.begin(), outputs.end(), var) != outputs.end()) {
          supplied = true;
          break;
        }
      }
      if (!supplied) {
        const FlatStore* store = flat.find_store(var);
        supplied = store != nullptr && store->writers.empty();
      }
      if (!supplied) {
        sink.push_back(make("BAN009", "task", task.name,
                            "input `" + var + "` is bound to nothing",
                            flat.graph.task(t).pos,
                            "draw an arc from a producer or an input store "
                            "carrying `" + var + "`"));
      }
    }
  }
}

void check_graph_shape(const FlattenResult& flat,
                       std::vector<Diagnostic>& sink) {
  // Tasks disconnected from every output store do work nobody observes.
  std::set<TaskId> useful;
  std::vector<TaskId> frontier;
  for (const FlatStore& store : flat.stores) {
    if (store.readers.empty()) {
      for (TaskId w : store.writers) frontier.push_back(w);
    }
  }
  for (TaskId t = 0; t < flat.graph.num_tasks(); ++t) {
    if (flat.graph.out_edges(t).empty() &&
        !flat.graph.task(t).outputs.empty()) {
      frontier.push_back(t);
    }
  }
  while (!frontier.empty()) {
    const TaskId t = frontier.back();
    frontier.pop_back();
    if (!useful.insert(t).second) continue;
    for (TaskId p : flat.graph.preds(t)) frontier.push_back(p);
  }
  if (!useful.empty()) {
    for (TaskId t = 0; t < flat.graph.num_tasks(); ++t) {
      if (!useful.contains(t)) {
        sink.push_back(make("BAN010", "task", flat.graph.task(t).name,
                            "contributes to no output store",
                            flat.graph.task(t).pos));
      }
    }
  }
}

// ---------------------------------------------------------------------
// Determinacy layer (BAN201-BAN203).
// ---------------------------------------------------------------------

/// Reachability of the flattened DAG as one bitset row per task:
/// reach(a) contains b iff there is a nonempty path a -> b.
class Reachability {
 public:
  explicit Reachability(const graph::TaskGraph& g)
      : n_(g.num_tasks()), words_((n_ + 63) / 64), rows_(n_ * words_, 0) {
    const auto topo = g.topo_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const TaskId t = *it;
      for (const TaskId s : g.succs(t)) {
        set(t, s);
        std::uint64_t* row = rows_.data() + static_cast<std::size_t>(t) * words_;
        const std::uint64_t* srow =
            rows_.data() + static_cast<std::size_t>(s) * words_;
        for (std::size_t w = 0; w < words_; ++w) row[w] |= srow[w];
      }
    }
  }

  [[nodiscard]] bool reaches(TaskId a, TaskId b) const {
    return (rows_[static_cast<std::size_t>(a) * words_ + b / 64] >>
            (b % 64)) &
           1U;
  }
  /// True when the schedule may not reorder a and b.
  [[nodiscard]] bool ordered(TaskId a, TaskId b) const {
    return a == b || reaches(a, b) || reaches(b, a);
  }

 private:
  void set(TaskId a, TaskId b) {
    rows_[static_cast<std::size_t>(a) * words_ + b / 64] |=
        std::uint64_t{1} << (b % 64);
  }

  std::size_t n_;
  std::size_t words_;
  std::vector<std::uint64_t> rows_;
};

/// Writer pairs sorted by task name so reports are stable across graph
/// construction orders.
std::vector<std::pair<TaskId, TaskId>> unordered_pairs(
    const std::vector<TaskId>& tasks, const graph::TaskGraph& g,
    const Reachability& reach) {
  std::vector<TaskId> sorted = tasks;
  std::sort(sorted.begin(), sorted.end(), [&](TaskId a, TaskId b) {
    return g.task(a).name < g.task(b).name;
  });
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<std::pair<TaskId, TaskId>> out;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    for (std::size_t j = i + 1; j < sorted.size(); ++j) {
      if (!reach.ordered(sorted[i], sorted[j])) {
        out.emplace_back(sorted[i], sorted[j]);
      }
    }
  }
  return out;
}

}  // namespace

void run_interface_rules(const FlattenResult& flat,
                         const AnalyzeOptions& options,
                         std::vector<Diagnostic>& sink) {
  check_task_interfaces(flat, options, sink);
  check_stores(flat, sink);
  check_graph_shape(flat, sink);
}

void run_determinacy_rules(const FlattenResult& flat,
                           std::vector<Diagnostic>& sink) {
  const graph::TaskGraph& g = flat.graph;
  const Reachability reach(g);

  for (const FlatStore& store : flat.stores) {
    if (store.writers.size() < 2) continue;
    const auto races = unordered_pairs(store.writers, g, reach);
    for (const auto& [a, b] : races) {
      if (!store.readers.empty()) {
        sink.push_back(make(
            "BAN201", "store", store.name,
            "write-write race: `" + g.task(a).name + "` and `" +
                g.task(b).name + "` both write `" + store.var +
                "` with no ordering between them",
            store.pos,
            "add an arc between the writers, or split the store"));
      } else {
        sink.push_back(make(
            "BAN203", "store", store.name,
            "output merge order is schedule-dependent: `" + g.task(a).name +
                "` and `" + g.task(b).name + "` write it concurrently",
            store.pos,
            "order the writers, or give each its own output store"));
      }
    }
  }

  // Var-aliased stores: two stores of the same variable name at different
  // hierarchy levels alias one value cell at bind time (find_store picks
  // the first match), so a reader of one store unordered with a writer of
  // a sibling store observes a schedule-dependent value.
  std::map<std::string, std::vector<std::size_t>> by_var;
  for (std::size_t i = 0; i < flat.stores.size(); ++i) {
    by_var[flat.stores[i].var].push_back(i);
  }
  for (const auto& [var, indices] : by_var) {
    if (indices.size() < 2) continue;
    for (const std::size_t ri : indices) {
      for (const std::size_t wi : indices) {
        if (ri == wi) continue;
        const FlatStore& rstore = flat.stores[ri];
        const FlatStore& wstore = flat.stores[wi];
        for (const TaskId r : rstore.readers) {
          for (const TaskId w : wstore.writers) {
            if (reach.ordered(r, w)) continue;
            sink.push_back(make(
                "BAN202", "store", rstore.name,
                "read-write conflict on `" + var + "`: `" + g.task(r).name +
                    "` reads `" + rstore.name + "` unordered with `" +
                    g.task(w).name + "` writing aliased store `" +
                    wstore.name + "`",
                rstore.pos,
                "rename one of the `" + var + "` stores or order the tasks"));
          }
        }
      }
    }
  }
}

}  // namespace banger::analyze
