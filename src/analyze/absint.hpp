// banger/analyze/absint.hpp
//
// Abstract interpretation over PITS routines: a forward analysis on a
// product domain of value kinds (scalar / vector / string / unbound),
// floating-point intervals for scalar values, and intervals for vector
// lengths and elements. Loops stabilise by widening at the head; formula
// calls are analysed interprocedurally with a depth cap and memoised
// top-argument summaries.
//
// Two consumers share the engine:
//
//   diagnostics  run_absint_rules() proves BAN301-BAN305 facts about one
//                routine (guaranteed division by zero, interval-proven
//                out-of-bounds indices, dead branches, non-terminating
//                loops, elementwise length mismatches) and returns a
//                ShapeSummary used by run_shape_rules() to check
//                producer/consumer shapes along the flattened task graph
//                (BAN306);
//   compilation  compute_facts() re-runs the engine context-free — every
//                free variable may be unbound, so the proofs hold for
//                any environment — and records per-AST-node facts the
//                bytecode compiler (pits/compile.cpp) uses to elide
//                checks and batch statement ticks. Elision never changes
//                observable behaviour; the differential fuzz suite in
//                tests/pits_vm_test.cpp enforces walker equivalence.
#pragma once

#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "graph/design.hpp"
#include "pits/ast.hpp"
#include "pits/facts.hpp"
#include "util/error.hpp"

namespace banger::pits {
class Program;
}  // namespace banger::pits

namespace banger::analyze {

inline constexpr double kAbsInf = std::numeric_limits<double>::infinity();

/// A floating-point interval [lo, hi] plus two refinement bits: whether
/// every non-NaN value is a mathematical integer, and whether NaN is a
/// possible value. `lo`/`hi` themselves are never NaN; an interval that
/// would be is widened to full range with `maybe_nan` set.
struct Interval {
  double lo = -kAbsInf;
  double hi = kAbsInf;
  bool integer = false;
  bool maybe_nan = true;

  [[nodiscard]] bool is_exact() const {
    return lo == hi && !maybe_nan && std::isfinite(lo);
  }
  [[nodiscard]] bool is_top() const {
    return lo == -kAbsInf && hi == kAbsInf && !integer && maybe_nan;
  }
};

[[nodiscard]] inline Interval iv_top() { return {}; }

[[nodiscard]] inline Interval iv_range(double lo, double hi,
                                       bool integer = false,
                                       bool maybe_nan = false) {
  if (std::isnan(lo) || std::isnan(hi) || lo > hi) return {};
  return {lo, hi, integer, maybe_nan};
}

[[nodiscard]] inline Interval iv_exact(double v) {
  if (std::isnan(v)) return {};
  return {v, v, std::floor(v) == v, false};
}

[[nodiscard]] inline bool operator==(const Interval& a, const Interval& b) {
  return a.lo == b.lo && a.hi == b.hi && a.integer == b.integer &&
         a.maybe_nan == b.maybe_nan;
}

/// Least upper bound: the convex hull, conjoined integrality, disjoined
/// NaN possibility.
[[nodiscard]] Interval join(const Interval& a, const Interval& b);

/// Standard interval widening: a bound that grew since `prev` jumps to
/// infinity, a stable bound is kept. Guarantees loop analyses terminate:
/// each bound can widen at most once, the bits are monotone.
[[nodiscard]] Interval widen(const Interval& prev, const Interval& next);

/// Abstract PITS value: which runtime kinds are possible, plus the
/// interval refinements that apply to each kind. `num` constrains the
/// value when it is a scalar; `len`/`elem` constrain it when it is a
/// vector. `must_assigned` means an actual `:=` assigned the name on
/// every path (stronger than "not unbound": calculator constants
/// materialise on read without an assignment).
struct AbsVal {
  bool may_scalar = true;
  bool may_vector = true;
  bool may_string = true;
  bool may_unbound = true;
  bool must_assigned = false;
  Interval num;
  Interval len{0, kAbsInf, true, false};
  Interval elem;
  /// Name of the task input this value is an unmodified copy of, empty
  /// otherwise. Powers the cross-task shape demands of BAN306.
  std::string origin;

  [[nodiscard]] bool proven_scalar() const {
    return may_scalar && !may_vector && !may_string && !may_unbound;
  }
  [[nodiscard]] bool proven_vector() const {
    return may_vector && !may_scalar && !may_string && !may_unbound;
  }
  [[nodiscard]] bool proven_string() const {
    return may_string && !may_scalar && !may_vector && !may_unbound;
  }

  [[nodiscard]] static AbsVal top() { return {}; }
  [[nodiscard]] static AbsVal top_bound() {
    AbsVal v;
    v.may_unbound = false;
    return v;
  }
  [[nodiscard]] static AbsVal scalar(const Interval& n) {
    AbsVal v;
    v.may_vector = v.may_string = v.may_unbound = false;
    v.num = n;
    return v;
  }
  [[nodiscard]] static AbsVal vector(const Interval& length,
                                     const Interval& element) {
    AbsVal v;
    v.may_scalar = v.may_string = v.may_unbound = false;
    v.len = length;
    v.elem = element;
    return v;
  }
  [[nodiscard]] static AbsVal string() {
    AbsVal v;
    v.may_scalar = v.may_vector = v.may_unbound = false;
    return v;
  }
};

[[nodiscard]] bool operator==(const AbsVal& a, const AbsVal& b);
[[nodiscard]] AbsVal join(const AbsVal& a, const AbsVal& b);
[[nodiscard]] AbsVal widen(const AbsVal& prev, const AbsVal& next);

/// What one routine requires of one of its inputs, collected from the
/// sites that use the input before reassigning it.
struct ShapeDemand {
  bool needs_vector = false;  ///< input is indexed
  double min_len = 0;         ///< least length the indexing requires
  bool needs_scalar = false;  ///< input is a repeat count / loop bound / index
  double elem_len = -1;       ///< exact length an elementwise op requires, or -1
  SourcePos pos;              ///< first demanding site (file coordinates)
};

/// Per-routine interface summary for the graph-level shape pass: the
/// abstract value of each declared output at routine exit, and the
/// demands placed on each input.
struct ShapeSummary {
  std::map<std::string, AbsVal> outputs;
  std::map<std::string, ShapeDemand> demands;
};

/// Context-free analysis of one routine body: proofs that hold for every
/// environment the routine could run against (free variables may be
/// unbound and of any type). The returned facts key AST node addresses
/// of `body`, so they are only meaningful for a compile of that same
/// block — pits::Program::precompile(facts) wires them through.
[[nodiscard]] pits::bc::AnalysisFacts compute_facts(const pits::Block& body);

/// compute_facts + precompile in one call: the drop-in replacement for
/// Program::precompile() used by the executor and the calculator panel.
void precompile_optimized(const pits::Program& program);

/// Interval/shape diagnostics (BAN301-BAN305) over one routine, with
/// declared inputs assumed bound. Appends to `sink` (and prunes BAN101
/// reports the interpreter proves are false positives); returns the
/// routine's shape summary for run_shape_rules().
ShapeSummary run_absint_rules(const pits::Block& body,
                              const RoutineContext& context,
                              std::vector<Diagnostic>& sink);

/// Graph-level shape propagation (BAN306): compares each flattened
/// store's producer output shapes against its consumers' input demands.
/// `summaries` maps task ids of `flat.graph` to their routine summaries.
void run_shape_rules(const graph::FlattenResult& flat,
                     const std::map<graph::TaskId, ShapeSummary>& summaries,
                     std::vector<Diagnostic>& sink);

}  // namespace banger::analyze
