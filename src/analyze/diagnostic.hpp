// banger/analyze/diagnostic.hpp
//
// The unified diagnostic model of the static-analysis subsystem. Every
// before-run check in the environment — drawing-level interface rules,
// PITS routine dataflow, graph determinacy — reports through the same
// `Diagnostic` record with a stable code (BAN001..), a severity, the
// subject it is attached to, and (when the design came from a `.pitl`
// file) a real source span. Emitters render a diagnostic set as plain
// text, JSON, or SARIF 2.1.0 for editor/CI integration.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace banger::analyze {

enum class Severity : std::uint8_t {
  Note,     ///< informational; never affects exit status
  Warning,  ///< probably a mistake, the design still runs
  Error,    ///< will fail or be nondeterministic at run time
};

std::string_view to_string(Severity severity) noexcept;

/// One finding of the analysis engine.
struct Diagnostic {
  /// Stable rule code ("BAN104"); catalogued in diagnostic_rules().
  std::string code;
  Severity severity = Severity::Warning;
  /// "task", "store", "graph" — what the finding is attached to.
  std::string subject_kind;
  /// Qualified name of the subject ("solve.fan1").
  std::string subject;
  std::string message;
  /// Optional fix-it hint ("add `x` to the task's in= list").
  std::string hint;
  /// Position in the `.pitl` file; {0,0} when unavailable
  /// (programmatically built designs).
  SourcePos pos;

  [[nodiscard]] std::string to_string() const;
};

/// Catalog entry for one rule: every code the engine can emit, with its
/// default severity and a one-line title (used by `docs/analysis.md`, the
/// SARIF rules array, and the tests' completeness check).
struct DiagnosticRule {
  std::string_view code;
  Severity severity = Severity::Warning;
  std::string_view title;
};

/// All rules, sorted by code.
const std::vector<DiagnosticRule>& diagnostic_rules();

/// Catalog lookup; nullptr for unknown codes.
const DiagnosticRule* find_rule(std::string_view code);

/// Deterministic order: severity (errors first), subject kind, subject,
/// line, code, message. Duplicates (all fields equal) are removed.
void sort_and_dedupe(std::vector<Diagnostic>& diagnostics);

/// True if any diagnostic is at least `threshold` severe.
bool has_severity(const std::vector<Diagnostic>& diagnostics,
                  Severity threshold);

/// Rendering context shared by the emitters.
struct EmitOptions {
  /// Path of the analysed `.pitl` file, used as the location prefix in
  /// text output and the artifact URI in SARIF; may be empty.
  std::string file;
};

/// One line per diagnostic (`file:line:col: error[BAN104]: ...`) plus an
/// indented `hint:` line when present, and a trailing summary line.
std::string emit_text(const std::vector<Diagnostic>& diagnostics,
                      const EmitOptions& options = {});

/// A JSON array of diagnostic objects (stable key order).
std::string emit_json(const std::vector<Diagnostic>& diagnostics,
                      const EmitOptions& options = {});

/// A SARIF 2.1.0 log with one run; the tool's rules array carries the
/// whole catalog so codes resolve even when they did not fire.
std::string emit_sarif(const std::vector<Diagnostic>& diagnostics,
                       const EmitOptions& options = {});

}  // namespace banger::analyze
