#include "analyze/diagnostic.hpp"

#include <algorithm>
#include <sstream>

namespace banger::analyze {

std::string_view to_string(Severity severity) noexcept {
  switch (severity) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

const std::vector<DiagnosticRule>& diagnostic_rules() {
  static const std::vector<DiagnosticRule> rules = {
      // Drawing-level interface rules (the original design lint).
      {"BAN001", Severity::Error, "task declares outputs but has no PITS routine"},
      {"BAN002", Severity::Warning, "task has no PITS routine (skeleton node)"},
      {"BAN003", Severity::Error, "PITS routine does not parse"},
      {"BAN004", Severity::Error, "routine reads a variable that is not a declared input"},
      {"BAN005", Severity::Warning, "declared input is never read by the routine"},
      {"BAN006", Severity::Error, "declared output is never assigned by the routine"},
      {"BAN007", Severity::Warning, "work estimate far from routine size"},
      {"BAN008", Severity::Warning, "store is never read or written (dead store)"},
      {"BAN009", Severity::Error, "task input is bound to nothing"},
      {"BAN010", Severity::Warning, "task contributes to no output store"},
      // PITS routine dataflow rules.
      {"BAN101", Severity::Warning, "variable may be read before it is assigned"},
      {"BAN102", Severity::Warning, "assigned value is never used (dead store)"},
      {"BAN103", Severity::Warning, "statement is unreachable after return"},
      {"BAN104", Severity::Error, "division or mod by constant zero"},
      {"BAN105", Severity::Error, "constant vector index out of range"},
      {"BAN106", Severity::Error, "call to unknown function"},
      {"BAN107", Severity::Error, "wrong number of arguments in call"},
      {"BAN108", Severity::Warning, "while loop can never terminate"},
      // Graph determinacy / race rules.
      {"BAN201", Severity::Error, "write-write race: unordered writers to a read store"},
      {"BAN202", Severity::Warning, "read-write conflict: reader unordered with a writer"},
      {"BAN203", Severity::Warning, "output store merge order is schedule-dependent"},
      // Abstract-interpretation rules (interval/shape proofs).
      {"BAN301", Severity::Error, "division or mod by a divisor proven zero"},
      {"BAN302", Severity::Error, "vector index proven out of range or non-integer"},
      {"BAN303", Severity::Warning, "branch condition has a proven constant outcome"},
      {"BAN304", Severity::Warning, "while loop proven non-terminating"},
      {"BAN305", Severity::Error, "elementwise operation on vectors of proven different lengths"},
      {"BAN306", Severity::Warning, "producer/consumer shape mismatch across the task graph"},
  };
  return rules;
}

const DiagnosticRule* find_rule(std::string_view code) {
  for (const DiagnosticRule& rule : diagnostic_rules()) {
    if (rule.code == code) return &rule;
  }
  return nullptr;
}

std::string Diagnostic::to_string() const {
  std::string out(analyze::to_string(severity));
  out += "[" + code + "]: " + subject_kind + " `" + subject + "`: " + message;
  if (pos.valid()) {
    out += " (line " + std::to_string(pos.line) + ", col " +
           std::to_string(pos.column) + ")";
  }
  return out;
}

void sort_and_dedupe(std::vector<Diagnostic>& diagnostics) {
  auto key_less = [](const Diagnostic& a, const Diagnostic& b) {
    if (a.severity != b.severity)
      return static_cast<int>(a.severity) > static_cast<int>(b.severity);
    if (a.subject_kind != b.subject_kind) return a.subject_kind < b.subject_kind;
    if (a.subject != b.subject) return a.subject < b.subject;
    if (a.pos.line != b.pos.line) return a.pos.line < b.pos.line;
    if (a.pos.column != b.pos.column) return a.pos.column < b.pos.column;
    if (a.code != b.code) return a.code < b.code;
    return a.message < b.message;
  };
  auto key_eq = [](const Diagnostic& a, const Diagnostic& b) {
    return a.severity == b.severity && a.subject_kind == b.subject_kind &&
           a.subject == b.subject && a.pos == b.pos && a.code == b.code &&
           a.message == b.message;
  };
  std::stable_sort(diagnostics.begin(), diagnostics.end(), key_less);
  diagnostics.erase(
      std::unique(diagnostics.begin(), diagnostics.end(), key_eq),
      diagnostics.end());
}

bool has_severity(const std::vector<Diagnostic>& diagnostics,
                  Severity threshold) {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [threshold](const Diagnostic& d) {
                       return static_cast<int>(d.severity) >=
                              static_cast<int>(threshold);
                     });
}

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string quoted(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

/// SARIF levels: note / warning / error (matches our severities).
std::string_view sarif_level(Severity severity) noexcept {
  return to_string(severity);
}

}  // namespace

std::string emit_text(const std::vector<Diagnostic>& diagnostics,
                      const EmitOptions& options) {
  std::ostringstream out;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::Error) ++errors;
    if (d.severity == Severity::Warning) ++warnings;
    if (!options.file.empty()) {
      out << options.file;
      if (d.pos.valid()) out << ':' << d.pos.line << ':' << d.pos.column;
      out << ": ";
    } else if (d.pos.valid()) {
      out << d.pos.line << ':' << d.pos.column << ": ";
    }
    out << to_string(d.severity) << '[' << d.code << "]: " << d.subject_kind
        << " `" << d.subject << "`: " << d.message << "\n";
    if (!d.hint.empty()) out << "  hint: " << d.hint << "\n";
  }
  if (diagnostics.empty()) {
    out << "clean: no issues found\n";
  } else {
    out << errors << " error(s), " << warnings << " warning(s)\n";
  }
  return out.str();
}

std::string emit_json(const std::vector<Diagnostic>& diagnostics,
                      const EmitOptions& options) {
  std::ostringstream out;
  out << "{\n  \"file\": " << quoted(options.file) << ",\n"
      << "  \"diagnostics\": [";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"code\": " << quoted(d.code)
        << ", \"severity\": " << quoted(to_string(d.severity))
        << ", \"subject_kind\": " << quoted(d.subject_kind)
        << ", \"subject\": " << quoted(d.subject)
        << ", \"line\": " << d.pos.line << ", \"column\": " << d.pos.column
        << ", \"message\": " << quoted(d.message);
    if (!d.hint.empty()) out << ", \"hint\": " << quoted(d.hint);
    out << "}";
  }
  out << (diagnostics.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

std::string emit_sarif(const std::vector<Diagnostic>& diagnostics,
                       const EmitOptions& options) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"banger\",\n"
      << "          \"rules\": [";
  const auto& rules = diagnostic_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "            {\"id\": " << quoted(rules[i].code)
        << ", \"shortDescription\": {\"text\": " << quoted(rules[i].title)
        << "}}";
  }
  out << "\n          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "        {\"ruleId\": " << quoted(d.code)
        << ", \"level\": " << quoted(sarif_level(d.severity))
        << ", \"message\": {\"text\": "
        << quoted(d.subject_kind + " `" + d.subject + "`: " + d.message)
        << "}";
    if (!options.file.empty()) {
      out << ", \"locations\": [{\"physicalLocation\": "
          << "{\"artifactLocation\": {\"uri\": " << quoted(options.file)
          << "}";
      if (d.pos.valid()) {
        out << ", \"region\": {\"startLine\": " << d.pos.line
            << ", \"startColumn\": " << d.pos.column << "}";
      }
      out << "}}]";
    }
    out << "}";
  }
  out << (diagnostics.empty() ? "]" : "\n      ]") << "\n    }\n  ]\n}\n";
  return out.str();
}

}  // namespace banger::analyze
