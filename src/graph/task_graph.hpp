// banger/graph/task_graph.hpp
//
// The flattened, leaf-level task DAG that scheduling, simulation, and
// execution operate on. Flattening a hierarchical Design (design.hpp)
// expands supernodes and converts storage nodes into direct task->task
// data dependences, so a TaskGraph contains only primitive tasks and
// weighted communication edges.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace banger::graph {

using TaskId = std::uint32_t;
using EdgeId = std::uint32_t;
inline constexpr TaskId kNoTask = static_cast<TaskId>(-1);

/// A primitive task after flattening.
struct Task {
  /// Fully-qualified name ("root.solve.f121"), unique in the TaskGraph.
  std::string name;
  /// Work estimate in abstract units.
  double work = 1.0;
  /// PITS source for the body (may be empty for skeleton designs).
  std::string pits;
  /// Variables consumed / produced, in declaration order.
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;

  /// Source location of the originating node directive in the `.pitl`
  /// file ({0,0} for programmatic designs), the file line of the first
  /// PITS body line (0 when unknown), and the indentation stripped from
  /// the pits block. Carried through flattening so diagnostics can point
  /// at real locations.
  SourcePos pos;
  int pits_line = 0;
  int pits_indent = 0;
};

/// A data dependence: `to` may not start before `from` finishes, and if
/// they run on different processors, `bytes` of data must be shipped.
struct Edge {
  TaskId from = kNoTask;
  TaskId to = kNoTask;
  double bytes = 0.0;
  /// Variable name(s) carried, comma-joined when several stores merge.
  std::string var;
};

/// Immutable-after-build DAG of primitive tasks. Parallel edges between
/// the same task pair are merged at insert time (their byte counts add:
/// two distinct variables both have to travel).
class TaskGraph {
 public:
  TaskId add_task(Task task);

  /// Adds (or merges into an existing) edge. Endpoints must exist and
  /// differ.
  EdgeId add_edge(TaskId from, TaskId to, double bytes, std::string var = {});

  [[nodiscard]] std::size_t num_tasks() const noexcept { return tasks_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  [[nodiscard]] const Task& task(TaskId id) const;
  [[nodiscard]] Task& task(TaskId id);
  [[nodiscard]] const Edge& edge(EdgeId id) const;
  [[nodiscard]] const std::vector<Task>& tasks() const noexcept { return tasks_; }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }

  [[nodiscard]] std::optional<TaskId> find(const std::string& name) const;
  [[nodiscard]] TaskId require(const std::string& name) const;

  /// Edge ids entering / leaving a task.
  [[nodiscard]] const std::vector<EdgeId>& in_edges(TaskId id) const;
  [[nodiscard]] const std::vector<EdgeId>& out_edges(TaskId id) const;

  /// Predecessor / successor task ids (derived from edges).
  [[nodiscard]] std::vector<TaskId> preds(TaskId id) const;
  [[nodiscard]] std::vector<TaskId> succs(TaskId id) const;

  /// Tasks with no predecessors / successors.
  [[nodiscard]] std::vector<TaskId> sources() const;
  [[nodiscard]] std::vector<TaskId> sinks() const;

  /// Deterministic topological order; throws Error{Graph} if cyclic.
  [[nodiscard]] std::vector<TaskId> topo_order() const;
  [[nodiscard]] bool is_acyclic() const;

  /// Sum of all task work.
  [[nodiscard]] double total_work() const noexcept;
  /// Sum of all edge bytes.
  [[nodiscard]] double total_bytes() const noexcept;

 private:
  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::unordered_map<std::string, TaskId> by_name_;
  // Merge map for parallel edges: (from,to) -> edge id.
  std::unordered_map<std::uint64_t, EdgeId> edge_index_;
};

}  // namespace banger::graph
