// banger/graph/task_graph.hpp
//
// The flattened, leaf-level task DAG that scheduling, simulation, and
// execution operate on. Flattening a hierarchical Design (design.hpp)
// expands supernodes and converts storage nodes into direct task->task
// data dependences, so a TaskGraph contains only primitive tasks and
// weighted communication edges.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace banger::graph {

using TaskId = std::uint32_t;
using EdgeId = std::uint32_t;
inline constexpr TaskId kNoTask = static_cast<TaskId>(-1);

/// A primitive task after flattening.
struct Task {
  /// Fully-qualified name ("root.solve.f121"), unique in the TaskGraph.
  std::string name;
  /// Work estimate in abstract units.
  double work = 1.0;
  /// PITS source for the body (may be empty for skeleton designs).
  std::string pits;
  /// Variables consumed / produced, in declaration order.
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;

  /// Source location of the originating node directive in the `.pitl`
  /// file ({0,0} for programmatic designs), the file line of the first
  /// PITS body line (0 when unknown), and the indentation stripped from
  /// the pits block. Carried through flattening so diagnostics can point
  /// at real locations.
  SourcePos pos;
  int pits_line = 0;
  int pits_indent = 0;
};

/// A data dependence: `to` may not start before `from` finishes, and if
/// they run on different processors, `bytes` of data must be shipped.
struct Edge {
  TaskId from = kNoTask;
  TaskId to = kNoTask;
  double bytes = 0.0;
  /// Variable name(s) carried, comma-joined when several stores merge.
  std::string var;
};

/// Contiguous, read-only view over one task's edge ids inside the CSR
/// adjacency arena. Iterates in the same order the old per-task vectors
/// did (ascending edge id == first-insertion order), so every consumer's
/// tie-breaking is unchanged.
class EdgeSpan {
 public:
  using value_type = EdgeId;
  using const_iterator = const EdgeId*;

  constexpr EdgeSpan() noexcept = default;
  constexpr EdgeSpan(const EdgeId* data, std::size_t size) noexcept
      : data_(data), size_(size) {}

  [[nodiscard]] constexpr const_iterator begin() const noexcept {
    return data_;
  }
  [[nodiscard]] constexpr const_iterator end() const noexcept {
    return data_ + size_;
  }
  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] constexpr EdgeId operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] constexpr EdgeId front() const noexcept { return data_[0]; }
  [[nodiscard]] constexpr EdgeId back() const noexcept {
    return data_[size_ - 1];
  }

 private:
  const EdgeId* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Immutable-after-build DAG of primitive tasks. Parallel edges between
/// the same task pair are merged at insert time (their byte counts add:
/// two distinct variables both have to travel).
///
/// Adjacency lives in a flat CSR arena (one edge-id array + per-task
/// offsets per direction) instead of a vector-of-vectors, so building
/// and walking 10^5-10^6-task graphs costs two large allocations rather
/// than one per task. The arena is rebuilt lazily: add_edge marks it
/// stale, the first adjacency query rebuilds it in O(V + E).
class TaskGraph {
 public:
  TaskGraph() = default;
  // The lazily-built arena carries an atomic flag and a mutex, so the
  // copy/move operations are spelled out: copies drop the arena (it is
  // rebuilt on first query), moves carry it over.
  TaskGraph(const TaskGraph& other);
  TaskGraph& operator=(const TaskGraph& other);
  TaskGraph(TaskGraph&& other) noexcept;
  TaskGraph& operator=(TaskGraph&& other) noexcept;
  ~TaskGraph() = default;

  TaskId add_task(Task task);

  /// Adds (or merges into an existing) edge. Endpoints must exist and
  /// differ.
  EdgeId add_edge(TaskId from, TaskId to, double bytes, std::string var = {});

  /// Pre-sizes the task/edge arrays (builders that know their final
  /// shape avoid reallocation churn; purely an optimisation).
  void reserve(std::size_t tasks, std::size_t edges);

  [[nodiscard]] std::size_t num_tasks() const noexcept { return tasks_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  [[nodiscard]] const Task& task(TaskId id) const;
  [[nodiscard]] Task& task(TaskId id);
  [[nodiscard]] const Edge& edge(EdgeId id) const;
  [[nodiscard]] const std::vector<Task>& tasks() const noexcept { return tasks_; }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }

  [[nodiscard]] std::optional<TaskId> find(const std::string& name) const;
  [[nodiscard]] TaskId require(const std::string& name) const;

  /// Edge ids entering / leaving a task, in ascending edge-id order
  /// (identical to the historical per-task insertion order). The view
  /// stays valid until the next add_edge.
  [[nodiscard]] EdgeSpan in_edges(TaskId id) const;
  [[nodiscard]] EdgeSpan out_edges(TaskId id) const;

  /// Predecessor / successor task ids (derived from edges).
  [[nodiscard]] std::vector<TaskId> preds(TaskId id) const;
  [[nodiscard]] std::vector<TaskId> succs(TaskId id) const;

  /// Tasks with no predecessors / successors.
  [[nodiscard]] std::vector<TaskId> sources() const;
  [[nodiscard]] std::vector<TaskId> sinks() const;

  /// Deterministic topological order; throws Error{Graph} if cyclic.
  [[nodiscard]] std::vector<TaskId> topo_order() const;
  [[nodiscard]] bool is_acyclic() const;

  /// Sum of all task work.
  [[nodiscard]] double total_work() const noexcept;
  /// Sum of all edge bytes.
  [[nodiscard]] double total_bytes() const noexcept;

 private:
  /// Rebuilds the CSR arrays from edges_ (counting sort by endpoint;
  /// edge ids come out ascending per task). Thread-safe: concurrent
  /// readers of an unbuilt arena serialise on a mutex behind a
  /// double-checked atomic flag, so parallel schedulers may share one
  /// graph (mutation remains single-threaded, as before).
  void ensure_adjacency() const;

  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  std::unordered_map<std::string, TaskId> by_name_;
  // Merge map for parallel edges: (from,to) -> edge id.
  std::unordered_map<std::uint64_t, EdgeId> edge_index_;

  // CSR adjacency arena, rebuilt lazily (mutable: queries are logically
  // const). offsets have num_tasks()+1 entries; ids hold each edge id
  // once per direction.
  mutable std::vector<std::uint32_t> in_offsets_;
  mutable std::vector<std::uint32_t> out_offsets_;
  mutable std::vector<EdgeId> in_ids_;
  mutable std::vector<EdgeId> out_ids_;
  mutable std::atomic<bool> adjacency_valid_{false};
  mutable std::mutex adjacency_mutex_;
};

}  // namespace banger::graph
