// banger/graph/builder.hpp
//
// Fluent construction of hierarchical designs — the programmatic stand-
// in for the drawing editor. Two conveniences carry most of the weight:
//
//   * IO inference: a task's declared inputs/outputs default to the free
//     and assigned variables of its PITS routine, so the builder user
//     writes the routine once and the interface follows;
//   * auto-wiring: after all nodes exist, arcs are derived from variable
//     names — task outputs flow into same-named stores, stores and
//     producer tasks feed same-named task inputs.
//
// Example (the quickstart design in six statements):
//
//   auto design = DesignBuilder("quadratic")
//                     .store("xs", 256)
//                     .store("ys", 256)
//                     .task("square_term", "sq := 3 * xs * xs", 4)
//                     .task("linear_term", "lin := 2 * xs", 2)
//                     .task("combine", "ys := sq + lin", 1)
//                     .build();          // auto-wires + validates
#pragma once

#include <map>
#include <set>
#include <string>
#include <tuple>

#include "graph/design.hpp"

namespace banger::graph {

class DesignBuilder {
 public:
  explicit DesignBuilder(std::string name);

  /// Adds a store to the current graph.
  DesignBuilder& store(const std::string& name, double bytes = 8.0);

  /// Adds a task; inputs/outputs inferred from the PITS source (free
  /// variables in, assigned variables out; assigned-then-read locals
  /// stay internal because they are not free).
  DesignBuilder& task(const std::string& name, const std::string& pits,
                      double work = 1.0);

  /// Adds a task with an explicit interface (no inference).
  DesignBuilder& task(const std::string& name, const std::string& pits,
                      double work, std::vector<std::string> inputs,
                      std::vector<std::string> outputs);

  /// Adds a supernode referencing a child graph by name; the child is
  /// created on first reference (populate it via graph()).
  DesignBuilder& super(const std::string& name, const std::string& child,
                       std::vector<std::string> inputs,
                       std::vector<std::string> outputs);

  /// Switches the current graph (creating it if needed); "" or the
  /// design name selects the root.
  DesignBuilder& graph(const std::string& name);

  /// Explicit arc in the current graph (auto-wiring adds the rest).
  DesignBuilder& arc(const std::string& from, const std::string& to,
                     const std::string& var = {}, double bytes = 8.0);

  /// Default message size for auto-wired task-to-task arcs carrying
  /// `var` (stores use their own size).
  DesignBuilder& var_bytes(const std::string& var, double bytes);

  /// Auto-wires every graph, validates, and returns the design. The
  /// builder is left empty (moved-from).
  Design build();

  /// build() without validation — for tests that want to inspect
  /// deliberately broken designs.
  Design build_unchecked();

 private:
  void auto_wire(DataflowGraph& g);
  [[nodiscard]] double bytes_for(const std::string& var) const;

  Design design_;
  GraphId current_;
  std::map<std::string, GraphId> graph_ids_;
  std::map<std::string, double> var_bytes_;
  // Arcs the user added explicitly: (graph, from, to) — auto-wiring
  // must not duplicate them.
  std::set<std::tuple<GraphId, NodeId, NodeId>> explicit_arcs_;
};

}  // namespace banger::graph
