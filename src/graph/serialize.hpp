// banger/graph/serialize.hpp
//
// Text serialisation of hierarchical designs — the on-disk form of what
// the Banger editor drew. A `.pitl` file is line-based:
//
//   design lu3x3
//   graph lu3x3                     # first graph is the root drawing
//     store A bytes=72
//     task fan1 work=3 in=A out=l21,l31
//     pits {
//       l21 := a21 / a11
//     }
//     super solve graph=back_sub in=L,U,b out=x
//     arc A -> fan1 var=A
//   graph back_sub
//     ...
//
// `#` starts a comment; indentation is cosmetic. Supernode child graphs
// are referenced by name and may be defined later in the file.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/design.hpp"

namespace banger::graph {

/// Parses a `.pitl` document. Throws Error{Parse} with a line position on
/// malformed input and Error{Graph}/Error{Name} on semantic violations.
Design parse_design(std::string_view text);

/// Reads and parses a `.pitl` file.
Design load_design(const std::string& path);

/// Renders a design back to `.pitl` text. parse_design(to_pitl(d)) is an
/// identity up to node/arc ordering (ordering is preserved as built).
std::string to_pitl(const Design& design);

/// Writes to_pitl() output to a file; throws Error{Io} on failure.
void save_design(const Design& design, const std::string& path);

}  // namespace banger::graph
