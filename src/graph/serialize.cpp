#include "graph/serialize.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace banger::graph {

namespace {

using util::split;
using util::split_ws;
using util::trim;

struct KeyValues {
  std::unordered_map<std::string, std::string> map;

  [[nodiscard]] bool has(const std::string& key) const {
    return map.contains(key);
  }
  [[nodiscard]] std::string str(const std::string& key,
                                std::string fallback = {}) const {
    auto it = map.find(key);
    return it == map.end() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& key, double fallback,
                           int line) const {
    auto it = map.find(key);
    if (it == map.end()) return fallback;
    const std::string& s = it->second;
    double value = 0;
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
    if (ec != std::errc{} || ptr != s.data() + s.size()) {
      fail(ErrorCode::Parse, "bad numeric value `" + s + "` for " + key,
           {line, 1});
    }
    return value;
  }
  [[nodiscard]] std::vector<std::string> list(const std::string& key) const {
    std::vector<std::string> out;
    auto it = map.find(key);
    if (it == map.end()) return out;
    for (auto part : split(it->second, ',')) {
      auto t = trim(part);
      if (!t.empty()) out.emplace_back(t);
    }
    return out;
  }
};

/// Parses trailing `key=value` tokens of a directive line.
KeyValues parse_kv(const std::vector<std::string_view>& tokens,
                   std::size_t first, int line) {
  KeyValues kv;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    auto eq = tokens[i].find('=');
    if (eq == std::string_view::npos) {
      fail(ErrorCode::Parse,
           "expected key=value, got `" + std::string(tokens[i]) + "`",
           {line, 1});
    }
    kv.map.emplace(std::string(tokens[i].substr(0, eq)),
                   std::string(tokens[i].substr(eq + 1)));
  }
  return kv;
}

std::string strip_comment(std::string_view raw) {
  // '#' outside of a pits block starts a comment.
  auto pos = raw.find('#');
  if (pos != std::string_view::npos) raw = raw.substr(0, pos);
  return std::string(trim(raw));
}

}  // namespace

Design parse_design(std::string_view text) {
  std::vector<std::string> lines;
  for (auto l : split(text, '\n')) lines.emplace_back(l);

  Design design;
  bool named = false;
  DataflowGraph* current = nullptr;
  NodeId last_task = kNoNode;  // pits target within `current`
  std::unordered_map<std::string, GraphId> graph_ids;
  // Supernode child references resolved after the whole file is read:
  // (graph id, node id, child name, line).
  struct PendingSuper {
    GraphId gid;
    NodeId nid;
    std::string child;
    int line;
  };
  std::vector<PendingSuper> pending;
  GraphId current_gid = kNoGraph;

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const int lineno = static_cast<int>(li + 1);
    std::string line = strip_comment(lines[li]);
    if (line.empty()) continue;

    auto tokens = split_ws(line);
    const std::string head(tokens[0]);

    if (head == "pits") {
      if (current == nullptr || last_task == kNoNode) {
        fail(ErrorCode::Parse, "pits block without a preceding task",
             {lineno, 1});
      }
      if (tokens.size() < 2 || tokens[1] != "{") {
        fail(ErrorCode::Parse, "expected `pits {`", {lineno, 1});
      }
      const int body_first_line = lineno + 1;
      std::vector<std::string> body_lines;
      bool closed = false;
      while (++li < lines.size()) {
        // Inside the block lines are raw PITS source ('#' is not a
        // comment delimiter here; PITS has its own `--` comments).
        if (std::string(trim(lines[li])) == "}") {
          closed = true;
          break;
        }
        body_lines.push_back(lines[li]);
      }
      if (!closed) {
        fail(ErrorCode::Parse, "unterminated pits block", {lineno, 1});
      }
      // Strip the common leading indentation so serialisation round-trips
      // to a fixpoint while nested PITS indentation survives.
      std::size_t common = std::string::npos;
      for (const std::string& l : body_lines) {
        if (trim(l).empty()) continue;
        common = std::min(common, l.find_first_not_of(" \t"));
      }
      if (common == std::string::npos) common = 0;
      std::string body;
      for (const std::string& l : body_lines) {
        body += l.size() > common ? l.substr(common) : std::string(trim(l));
        body += '\n';
      }
      current->node(last_task).pits = body;
      current->node(last_task).pits_line = body_first_line;
      current->node(last_task).pits_indent = static_cast<int>(common);
      continue;
    }

    if (head == "design") {
      if (tokens.size() != 2) {
        fail(ErrorCode::Parse, "expected `design <name>`", {lineno, 1});
      }
      if (named) {
        fail(ErrorCode::Parse, "duplicate design directive", {lineno, 1});
      }
      design = Design(std::string(tokens[1]));
      named = true;
      current = nullptr;
      continue;
    }

    if (head == "graph") {
      if (tokens.size() != 2) {
        fail(ErrorCode::Parse, "expected `graph <name>`", {lineno, 1});
      }
      std::string gname(tokens[1]);
      if (graph_ids.contains(gname)) {
        fail(ErrorCode::Parse, "duplicate graph `" + gname + "`", {lineno, 1});
      }
      if (graph_ids.empty()) {
        current_gid = design.root();
        design.graph(current_gid).set_name(gname);
      } else {
        current_gid = design.add_graph(gname);
      }
      graph_ids.emplace(std::move(gname), current_gid);
      current = &design.graph(current_gid);
      last_task = kNoNode;
      continue;
    }

    if (current == nullptr) {
      fail(ErrorCode::Parse, "directive `" + head + "` before any graph",
           {lineno, 1});
    }

    if (head == "task" || head == "store" || head == "super") {
      if (tokens.size() < 2) {
        fail(ErrorCode::Parse, "expected `" + head + " <name> ...`",
             {lineno, 1});
      }
      auto kv = parse_kv(tokens, 2, lineno);
      Node node;
      node.name = std::string(tokens[1]);
      node.pos = {lineno, 1};
      if (head == "task") {
        node.kind = NodeKind::Task;
        node.work = kv.num("work", 1.0, lineno);
      } else if (head == "store") {
        node.kind = NodeKind::Storage;
        node.bytes = kv.num("bytes", 8.0, lineno);
      } else {
        node.kind = NodeKind::Super;
        if (!kv.has("graph")) {
          fail(ErrorCode::Parse, "super requires graph=<name>", {lineno, 1});
        }
      }
      node.inputs = kv.list("in");
      node.outputs = kv.list("out");
      NodeId nid;
      try {
        nid = current->add_node(std::move(node));
      } catch (const Error& e) {
        fail(e.code(), e.message(), {lineno, 1});
      }
      if (head == "super") {
        pending.push_back({current_gid, nid, kv.str("graph"), lineno});
        last_task = kNoNode;
      } else if (head == "task") {
        last_task = nid;
      } else {
        last_task = kNoNode;
      }
      continue;
    }

    if (head == "arc") {
      // arc <from> -> <to> [var=..] [bytes=..]
      if (tokens.size() < 4 || tokens[2] != "->") {
        fail(ErrorCode::Parse, "expected `arc <from> -> <to> ...`",
             {lineno, 1});
      }
      auto kv = parse_kv(tokens, 4, lineno);
      try {
        current->connect(std::string(tokens[1]), std::string(tokens[3]),
                         kv.str("var"), kv.num("bytes", 8.0, lineno));
      } catch (const Error& e) {
        fail(e.code(), e.message(), {lineno, 1});
      }
      last_task = kNoNode;
      continue;
    }

    fail(ErrorCode::Parse, "unknown directive `" + head + "`", {lineno, 1});
  }

  for (const auto& p : pending) {
    auto it = graph_ids.find(p.child);
    if (it == graph_ids.end()) {
      fail(ErrorCode::Parse,
           "supernode references undefined graph `" + p.child + "`",
           {p.line, 1});
    }
    design.graph(p.gid).node(p.nid).subgraph = it->second;
  }
  return design;
}

Design load_design(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(ErrorCode::Io, "cannot open `" + path + "` for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_design(buf.str());
}

std::string to_pitl(const Design& design) {
  std::ostringstream out;
  out << "design " << design.name() << "\n";
  for (GraphId gid = 0; gid < static_cast<GraphId>(design.num_graphs());
       ++gid) {
    const DataflowGraph& g = design.graph(gid);
    out << "graph " << g.name() << "\n";
    auto emit_vars = [&](const char* key, const std::vector<std::string>& v) {
      if (v.empty()) return;
      out << ' ' << key << '=' << util::join(v, ",");
    };
    for (const Node& n : g.nodes()) {
      switch (n.kind) {
        case NodeKind::Task:
          out << "  task " << n.name << " work=" << util::format_double(n.work, 12);
          emit_vars("in", n.inputs);
          emit_vars("out", n.outputs);
          out << "\n";
          if (!n.pits.empty()) {
            out << "  pits {\n";
            for (auto line : split(n.pits, '\n')) {
              if (!trim(line).empty()) out << "    " << line << "\n";
            }
            out << "  }\n";
          }
          break;
        case NodeKind::Storage:
          out << "  store " << n.name
              << " bytes=" << util::format_double(n.bytes, 12) << "\n";
          break;
        case NodeKind::Super:
          out << "  super " << n.name << " graph="
              << design.graph(n.subgraph).name();
          emit_vars("in", n.inputs);
          emit_vars("out", n.outputs);
          out << "\n";
          break;
      }
    }
    for (const Arc& a : g.arcs()) {
      out << "  arc " << g.node(a.from).name << " -> " << g.node(a.to).name;
      if (!a.var.empty()) out << " var=" << a.var;
      out << " bytes=" << util::format_double(a.bytes, 12) << "\n";
    }
  }
  return out.str();
}

void save_design(const Design& design, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail(ErrorCode::Io, "cannot open `" + path + "` for writing");
  out << to_pitl(design);
  if (!out) fail(ErrorCode::Io, "error writing `" + path + "`");
}

}  // namespace banger::graph
