#include "graph/graph.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace banger::graph {

std::string_view to_string(NodeKind kind) noexcept {
  switch (kind) {
    case NodeKind::Task: return "task";
    case NodeKind::Super: return "super";
    case NodeKind::Storage: return "storage";
  }
  return "unknown";
}

NodeId DataflowGraph::add_node(Node node) {
  if (!util::is_identifier(node.name)) {
    fail(ErrorCode::Name,
         "node name `" + node.name + "` is not a valid identifier");
  }
  if (by_name_.contains(node.name)) {
    fail(ErrorCode::Name, "duplicate node name `" + node.name + "` in graph `" +
                              name_ + "`");
  }
  if (node.kind == NodeKind::Task && node.work < 0) {
    fail(ErrorCode::Graph, "task `" + node.name + "` has negative work");
  }
  if (node.kind == NodeKind::Storage && node.bytes < 0) {
    fail(ErrorCode::Graph, "store `" + node.name + "` has negative size");
  }
  const auto id = static_cast<NodeId>(nodes_.size());
  by_name_.emplace(node.name, id);
  nodes_.push_back(std::move(node));
  in_arcs_.emplace_back();
  out_arcs_.emplace_back();
  return id;
}

ArcId DataflowGraph::add_arc(Arc arc) {
  if (arc.from >= nodes_.size() || arc.to >= nodes_.size()) {
    fail(ErrorCode::Graph, "arc endpoint out of range in graph `" + name_ + "`");
  }
  if (arc.from == arc.to) {
    fail(ErrorCode::Graph, "self-loop on node `" + nodes_[arc.from].name +
                               "` (dataflow designs are acyclic)");
  }
  if (arc.bytes < 0) {
    fail(ErrorCode::Graph, "arc with negative byte count");
  }
  const auto id = static_cast<ArcId>(arcs_.size());
  out_arcs_[arc.from].push_back(id);
  in_arcs_[arc.to].push_back(id);
  arcs_.push_back(std::move(arc));
  return id;
}

ArcId DataflowGraph::connect(const std::string& from, const std::string& to,
                             std::string var, double bytes) {
  return add_arc({require(from), require(to), std::move(var), bytes});
}

const Node& DataflowGraph::node(NodeId id) const {
  BANGER_ASSERT(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

Node& DataflowGraph::node(NodeId id) {
  BANGER_ASSERT(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

const Arc& DataflowGraph::arc(ArcId id) const {
  BANGER_ASSERT(id < arcs_.size(), "arc id out of range");
  return arcs_[id];
}

std::optional<NodeId> DataflowGraph::find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

NodeId DataflowGraph::require(const std::string& name) const {
  auto id = find(name);
  if (!id) {
    fail(ErrorCode::Name,
         "no node named `" + name + "` in graph `" + name_ + "`");
  }
  return *id;
}

const std::vector<ArcId>& DataflowGraph::in_arcs(NodeId id) const {
  BANGER_ASSERT(id < in_arcs_.size(), "node id out of range");
  return in_arcs_[id];
}

const std::vector<ArcId>& DataflowGraph::out_arcs(NodeId id) const {
  BANGER_ASSERT(id < out_arcs_.size(), "node id out of range");
  return out_arcs_[id];
}

std::size_t DataflowGraph::count(NodeKind kind) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [kind](const Node& n) { return n.kind == kind; }));
}

void DataflowGraph::validate() const {
  for (const Arc& a : arcs_) {
    const Node& src = nodes_[a.from];
    const Node& dst = nodes_[a.to];
    if (src.kind == NodeKind::Storage && dst.kind == NodeKind::Storage) {
      fail(ErrorCode::Graph, "arc between stores `" + src.name + "` and `" +
                                 dst.name + "`; route data through a task");
    }
    if (!a.var.empty()) {
      auto declares = [](const std::vector<std::string>& vars,
                         const std::string& v) {
        return std::find(vars.begin(), vars.end(), v) != vars.end();
      };
      if (src.kind != NodeKind::Storage && !src.outputs.empty() &&
          !declares(src.outputs, a.var)) {
        fail(ErrorCode::Graph, "arc carries `" + a.var + "` but node `" +
                                   src.name + "` does not output it");
      }
      if (dst.kind != NodeKind::Storage && !dst.inputs.empty() &&
          !declares(dst.inputs, a.var)) {
        fail(ErrorCode::Graph, "arc carries `" + a.var + "` but node `" +
                                   dst.name + "` does not input it");
      }
    }
  }
  if (!is_acyclic()) {
    fail(ErrorCode::Graph, "graph `" + name_ + "` contains a cycle");
  }
}

std::vector<NodeId> DataflowGraph::topo_order() const {
  std::vector<std::size_t> indegree(nodes_.size(), 0);
  for (const Arc& a : arcs_) ++indegree[a.to];

  // Kahn's algorithm with a deterministic (smallest-id-first) frontier so
  // downstream heuristics tie-break reproducibly.
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < nodes_.size(); ++v)
    if (indegree[v] == 0) frontier.push_back(v);

  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!frontier.empty()) {
    auto it = std::min_element(frontier.begin(), frontier.end());
    NodeId v = *it;
    frontier.erase(it);
    order.push_back(v);
    for (ArcId e : out_arcs_[v]) {
      if (--indegree[arcs_[e].to] == 0) frontier.push_back(arcs_[e].to);
    }
  }
  if (order.size() != nodes_.size()) {
    fail(ErrorCode::Graph, "graph `" + name_ + "` contains a cycle");
  }
  return order;
}

bool DataflowGraph::is_acyclic() const {
  try {
    (void)topo_order();
    return true;
  } catch (const Error&) {
    return false;
  }
}

}  // namespace banger::graph
