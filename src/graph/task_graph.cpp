#include "graph/task_graph.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/error.hpp"

namespace banger::graph {

TaskGraph::TaskGraph(const TaskGraph& other)
    : tasks_(other.tasks_),
      edges_(other.edges_),
      by_name_(other.by_name_),
      edge_index_(other.edge_index_) {}

TaskGraph& TaskGraph::operator=(const TaskGraph& other) {
  if (this == &other) return *this;
  tasks_ = other.tasks_;
  edges_ = other.edges_;
  by_name_ = other.by_name_;
  edge_index_ = other.edge_index_;
  // Copies drop the arena; it rebuilds on first adjacency query.
  in_offsets_.clear();
  out_offsets_.clear();
  in_ids_.clear();
  out_ids_.clear();
  adjacency_valid_.store(false, std::memory_order_relaxed);
  return *this;
}

TaskGraph::TaskGraph(TaskGraph&& other) noexcept
    : tasks_(std::move(other.tasks_)),
      edges_(std::move(other.edges_)),
      by_name_(std::move(other.by_name_)),
      edge_index_(std::move(other.edge_index_)),
      in_offsets_(std::move(other.in_offsets_)),
      out_offsets_(std::move(other.out_offsets_)),
      in_ids_(std::move(other.in_ids_)),
      out_ids_(std::move(other.out_ids_)),
      adjacency_valid_(
          other.adjacency_valid_.load(std::memory_order_relaxed)) {
  other.adjacency_valid_.store(false, std::memory_order_relaxed);
}

TaskGraph& TaskGraph::operator=(TaskGraph&& other) noexcept {
  if (this == &other) return *this;
  tasks_ = std::move(other.tasks_);
  edges_ = std::move(other.edges_);
  by_name_ = std::move(other.by_name_);
  edge_index_ = std::move(other.edge_index_);
  in_offsets_ = std::move(other.in_offsets_);
  out_offsets_ = std::move(other.out_offsets_);
  in_ids_ = std::move(other.in_ids_);
  out_ids_ = std::move(other.out_ids_);
  adjacency_valid_.store(
      other.adjacency_valid_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  other.adjacency_valid_.store(false, std::memory_order_relaxed);
  return *this;
}

TaskId TaskGraph::add_task(Task task) {
  if (task.name.empty()) {
    fail(ErrorCode::Name, "task with empty name");
  }
  if (by_name_.contains(task.name)) {
    fail(ErrorCode::Name, "duplicate task name `" + task.name + "`");
  }
  if (task.work < 0) {
    fail(ErrorCode::Graph, "task `" + task.name + "` has negative work");
  }
  const auto id = static_cast<TaskId>(tasks_.size());
  by_name_.emplace(task.name, id);
  tasks_.push_back(std::move(task));
  // A task without edges has an empty adjacency row; only the offset
  // arrays grow, so an up-to-date arena merely needs one more entry.
  if (adjacency_valid_.load(std::memory_order_relaxed)) {
    in_offsets_.push_back(static_cast<std::uint32_t>(in_ids_.size()));
    out_offsets_.push_back(static_cast<std::uint32_t>(out_ids_.size()));
  }
  return id;
}

EdgeId TaskGraph::add_edge(TaskId from, TaskId to, double bytes,
                           std::string var) {
  if (from >= tasks_.size() || to >= tasks_.size()) {
    fail(ErrorCode::Graph, "edge endpoint out of range");
  }
  if (from == to) {
    fail(ErrorCode::Graph, "self-dependence on task `" + tasks_[from].name + "`");
  }
  if (bytes < 0) {
    fail(ErrorCode::Graph, "edge with negative byte count");
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(from) << 32) | static_cast<std::uint64_t>(to);
  if (auto it = edge_index_.find(key); it != edge_index_.end()) {
    Edge& e = edges_[it->second];
    e.bytes += bytes;
    if (!var.empty()) {
      if (!e.var.empty()) e.var += ',';
      e.var += var;
    }
    return it->second;  // merged: adjacency unchanged
  }
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({from, to, bytes, std::move(var)});
  edge_index_.emplace(key, id);
  adjacency_valid_.store(false, std::memory_order_relaxed);
  return id;
}

void TaskGraph::reserve(std::size_t tasks, std::size_t edges) {
  tasks_.reserve(tasks);
  edges_.reserve(edges);
  by_name_.reserve(tasks);
  edge_index_.reserve(edges);
}

void TaskGraph::ensure_adjacency() const {
  if (adjacency_valid_.load(std::memory_order_acquire)) return;
  const std::lock_guard<std::mutex> lock(adjacency_mutex_);
  if (adjacency_valid_.load(std::memory_order_relaxed)) return;
  const std::size_t n = tasks_.size();
  in_offsets_.assign(n + 1, 0);
  out_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++in_offsets_[e.to + 1];
    ++out_offsets_[e.from + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    in_offsets_[v + 1] += in_offsets_[v];
    out_offsets_[v + 1] += out_offsets_[v];
  }
  in_ids_.resize(edges_.size());
  out_ids_.resize(edges_.size());
  // Fill cursors double as scratch; walking edges in id order makes each
  // per-task row ascending by edge id — exactly the order the historical
  // per-task push_back vectors held.
  std::vector<std::uint32_t> in_cursor(in_offsets_.begin(),
                                       in_offsets_.end() - 1);
  std::vector<std::uint32_t> out_cursor(out_offsets_.begin(),
                                        out_offsets_.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const Edge& e = edges_[id];
    in_ids_[in_cursor[e.to]++] = id;
    out_ids_[out_cursor[e.from]++] = id;
  }
  adjacency_valid_.store(true, std::memory_order_release);
}

const Task& TaskGraph::task(TaskId id) const {
  BANGER_ASSERT(id < tasks_.size(), "task id out of range");
  return tasks_[id];
}

Task& TaskGraph::task(TaskId id) {
  BANGER_ASSERT(id < tasks_.size(), "task id out of range");
  return tasks_[id];
}

const Edge& TaskGraph::edge(EdgeId id) const {
  BANGER_ASSERT(id < edges_.size(), "edge id out of range");
  return edges_[id];
}

std::optional<TaskId> TaskGraph::find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

TaskId TaskGraph::require(const std::string& name) const {
  auto id = find(name);
  if (!id) fail(ErrorCode::Name, "no task named `" + name + "`");
  return *id;
}

EdgeSpan TaskGraph::in_edges(TaskId id) const {
  BANGER_ASSERT(id < tasks_.size(), "task id out of range");
  ensure_adjacency();
  return {in_ids_.data() + in_offsets_[id],
          static_cast<std::size_t>(in_offsets_[id + 1] - in_offsets_[id])};
}

EdgeSpan TaskGraph::out_edges(TaskId id) const {
  BANGER_ASSERT(id < tasks_.size(), "task id out of range");
  ensure_adjacency();
  return {out_ids_.data() + out_offsets_[id],
          static_cast<std::size_t>(out_offsets_[id + 1] - out_offsets_[id])};
}

std::vector<TaskId> TaskGraph::preds(TaskId id) const {
  std::vector<TaskId> out;
  out.reserve(in_edges(id).size());
  for (EdgeId e : in_edges(id)) out.push_back(edges_[e].from);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TaskId> TaskGraph::succs(TaskId id) const {
  std::vector<TaskId> out;
  out.reserve(out_edges(id).size());
  for (EdgeId e : out_edges(id)) out.push_back(edges_[e].to);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TaskId> TaskGraph::sources() const {
  ensure_adjacency();
  std::vector<TaskId> out;
  for (TaskId v = 0; v < tasks_.size(); ++v)
    if (in_offsets_[v + 1] == in_offsets_[v]) out.push_back(v);
  return out;
}

std::vector<TaskId> TaskGraph::sinks() const {
  ensure_adjacency();
  std::vector<TaskId> out;
  for (TaskId v = 0; v < tasks_.size(); ++v)
    if (out_offsets_[v + 1] == out_offsets_[v]) out.push_back(v);
  return out;
}

std::vector<TaskId> TaskGraph::topo_order() const {
  ensure_adjacency();
  std::vector<std::size_t> indegree(tasks_.size(), 0);
  for (const Edge& e : edges_) ++indegree[e.to];

  // Min-heap frontier: each step releases the smallest ready id — the
  // same order a linear min scan produces — in O(E log V).
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> frontier;
  for (TaskId v = 0; v < tasks_.size(); ++v)
    if (indegree[v] == 0) frontier.push(v);

  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!frontier.empty()) {
    const TaskId v = frontier.top();
    frontier.pop();
    order.push_back(v);
    for (std::uint32_t i = out_offsets_[v]; i < out_offsets_[v + 1]; ++i) {
      const TaskId succ = edges_[out_ids_[i]].to;
      if (--indegree[succ] == 0) frontier.push(succ);
    }
  }
  if (order.size() != tasks_.size()) {
    fail(ErrorCode::Graph, "task graph contains a cycle");
  }
  return order;
}

bool TaskGraph::is_acyclic() const {
  try {
    (void)topo_order();
    return true;
  } catch (const Error&) {
    return false;
  }
}

double TaskGraph::total_work() const noexcept {
  return std::accumulate(tasks_.begin(), tasks_.end(), 0.0,
                         [](double acc, const Task& t) { return acc + t.work; });
}

double TaskGraph::total_bytes() const noexcept {
  return std::accumulate(edges_.begin(), edges_.end(), 0.0,
                         [](double acc, const Edge& e) { return acc + e.bytes; });
}

}  // namespace banger::graph
