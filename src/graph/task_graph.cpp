#include "graph/task_graph.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/error.hpp"

namespace banger::graph {

TaskId TaskGraph::add_task(Task task) {
  if (task.name.empty()) {
    fail(ErrorCode::Name, "task with empty name");
  }
  if (by_name_.contains(task.name)) {
    fail(ErrorCode::Name, "duplicate task name `" + task.name + "`");
  }
  if (task.work < 0) {
    fail(ErrorCode::Graph, "task `" + task.name + "` has negative work");
  }
  const auto id = static_cast<TaskId>(tasks_.size());
  by_name_.emplace(task.name, id);
  tasks_.push_back(std::move(task));
  in_edges_.emplace_back();
  out_edges_.emplace_back();
  return id;
}

EdgeId TaskGraph::add_edge(TaskId from, TaskId to, double bytes,
                           std::string var) {
  if (from >= tasks_.size() || to >= tasks_.size()) {
    fail(ErrorCode::Graph, "edge endpoint out of range");
  }
  if (from == to) {
    fail(ErrorCode::Graph, "self-dependence on task `" + tasks_[from].name + "`");
  }
  if (bytes < 0) {
    fail(ErrorCode::Graph, "edge with negative byte count");
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(from) << 32) | static_cast<std::uint64_t>(to);
  if (auto it = edge_index_.find(key); it != edge_index_.end()) {
    Edge& e = edges_[it->second];
    e.bytes += bytes;
    if (!var.empty()) {
      if (!e.var.empty()) e.var += ',';
      e.var += var;
    }
    return it->second;
  }
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({from, to, bytes, std::move(var)});
  out_edges_[from].push_back(id);
  in_edges_[to].push_back(id);
  edge_index_.emplace(key, id);
  return id;
}

const Task& TaskGraph::task(TaskId id) const {
  BANGER_ASSERT(id < tasks_.size(), "task id out of range");
  return tasks_[id];
}

Task& TaskGraph::task(TaskId id) {
  BANGER_ASSERT(id < tasks_.size(), "task id out of range");
  return tasks_[id];
}

const Edge& TaskGraph::edge(EdgeId id) const {
  BANGER_ASSERT(id < edges_.size(), "edge id out of range");
  return edges_[id];
}

std::optional<TaskId> TaskGraph::find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

TaskId TaskGraph::require(const std::string& name) const {
  auto id = find(name);
  if (!id) fail(ErrorCode::Name, "no task named `" + name + "`");
  return *id;
}

const std::vector<EdgeId>& TaskGraph::in_edges(TaskId id) const {
  BANGER_ASSERT(id < in_edges_.size(), "task id out of range");
  return in_edges_[id];
}

const std::vector<EdgeId>& TaskGraph::out_edges(TaskId id) const {
  BANGER_ASSERT(id < out_edges_.size(), "task id out of range");
  return out_edges_[id];
}

std::vector<TaskId> TaskGraph::preds(TaskId id) const {
  std::vector<TaskId> out;
  out.reserve(in_edges(id).size());
  for (EdgeId e : in_edges(id)) out.push_back(edges_[e].from);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TaskId> TaskGraph::succs(TaskId id) const {
  std::vector<TaskId> out;
  out.reserve(out_edges(id).size());
  for (EdgeId e : out_edges(id)) out.push_back(edges_[e].to);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TaskId> TaskGraph::sources() const {
  std::vector<TaskId> out;
  for (TaskId v = 0; v < tasks_.size(); ++v)
    if (in_edges_[v].empty()) out.push_back(v);
  return out;
}

std::vector<TaskId> TaskGraph::sinks() const {
  std::vector<TaskId> out;
  for (TaskId v = 0; v < tasks_.size(); ++v)
    if (out_edges_[v].empty()) out.push_back(v);
  return out;
}

std::vector<TaskId> TaskGraph::topo_order() const {
  std::vector<std::size_t> indegree(tasks_.size(), 0);
  for (const Edge& e : edges_) ++indegree[e.to];

  // Min-heap frontier: each step releases the smallest ready id — the
  // same order a linear min scan produces — in O(E log V).
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> frontier;
  for (TaskId v = 0; v < tasks_.size(); ++v)
    if (indegree[v] == 0) frontier.push(v);

  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!frontier.empty()) {
    const TaskId v = frontier.top();
    frontier.pop();
    order.push_back(v);
    for (EdgeId e : out_edges_[v]) {
      if (--indegree[edges_[e].to] == 0) frontier.push(edges_[e].to);
    }
  }
  if (order.size() != tasks_.size()) {
    fail(ErrorCode::Graph, "task graph contains a cycle");
  }
  return order;
}

bool TaskGraph::is_acyclic() const {
  try {
    (void)topo_order();
    return true;
  } catch (const Error&) {
    return false;
  }
}

double TaskGraph::total_work() const noexcept {
  return std::accumulate(tasks_.begin(), tasks_.end(), 0.0,
                         [](double acc, const Task& t) { return acc + t.work; });
}

double TaskGraph::total_bytes() const noexcept {
  return std::accumulate(edges_.begin(), edges_.end(), 0.0,
                         [](double acc, const Edge& e) { return acc + e.bytes; });
}

}  // namespace banger::graph
