// banger/graph/graph.hpp
//
// One level of a PITL (programming-in-the-large) hierarchical dataflow
// graph, as drawn in the Banger editor (paper Fig. 1):
//
//   - Task nodes   (ovals): primitive sequential routines, later given a
//                  PITS calculator program and a work estimate.
//   - Super nodes  (bold ovals): decomposable into a lower-level graph.
//   - Storage nodes(open rectangles): named data stores (A, b, L, U, x in
//                  the paper's LU example) with a size in bytes.
//
// Arcs establish precedence created by control flow or dataflow and are
// labelled with the variable whose data flows along them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace banger::graph {

/// Index of a node within its DataflowGraph.
using NodeId = std::uint32_t;
/// Index of an arc within its DataflowGraph.
using ArcId = std::uint32_t;
/// Index of a graph within a Design.
using GraphId = std::int32_t;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);
inline constexpr GraphId kNoGraph = -1;

enum class NodeKind : std::uint8_t {
  Task,     ///< Primitive sequential task (PITS routine).
  Super,    ///< Decomposable node that expands to a child graph.
  Storage,  ///< Named data store (open rectangle in the paper).
};

std::string_view to_string(NodeKind kind) noexcept;

/// A node of one graph level. `name` is unique within the graph.
struct Node {
  NodeKind kind = NodeKind::Task;
  std::string name;

  /// Work estimate in abstract units; a Machine converts units to seconds
  /// via its processor speed. Meaningful for Task nodes only.
  double work = 1.0;

  /// Data size in bytes held by a Storage node; used as the default
  /// message size when the store's value must move between processors.
  double bytes = 8.0;

  /// PITS calculator source defining the task body (may be empty while
  /// the design is still a skeleton — the paper's "leaving the coding
  /// details for later").
  std::string pits;

  /// Child graph index for Super nodes; kNoGraph otherwise.
  GraphId subgraph = kNoGraph;

  /// Where the node directive appears in the `.pitl` file ({0,0} when the
  /// design was built programmatically), the file line of the first PITS
  /// body line (0 when unknown), and the indentation stripped from the
  /// block. Diagnostics use these to point at real source locations.
  SourcePos pos;
  int pits_line = 0;
  int pits_indent = 0;

  /// Ordered variable names the node consumes / produces. For Storage
  /// nodes these are implicit (the store's own name) and stay empty.
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
};

/// A directed arc `from -> to` labelled with the variable it carries.
struct Arc {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::string var;
  /// Message size in bytes when the variable crosses processors.
  double bytes = 8.0;
};

/// One level of the hierarchy: a named directed graph of nodes and arcs.
/// The class owns its storage and exposes cheap indexed access; structural
/// validation lives in validate().
class DataflowGraph {
 public:
  DataflowGraph() = default;
  explicit DataflowGraph(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds a node; its name must be a valid identifier, unique in this
  /// graph. Returns the new node's id.
  NodeId add_node(Node node);

  /// Adds an arc between existing nodes. Self-loops are rejected.
  ArcId add_arc(Arc arc);

  /// Convenience: adds an arc from/to nodes looked up by name.
  ArcId connect(const std::string& from, const std::string& to,
                std::string var = {}, double bytes = 8.0);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t num_arcs() const noexcept { return arcs_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Arc& arc(ArcId id) const;
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] const std::vector<Arc>& arcs() const noexcept { return arcs_; }

  /// Name lookup; returns std::nullopt if absent.
  [[nodiscard]] std::optional<NodeId> find(const std::string& name) const;
  /// Name lookup that throws ErrorCode::Name if absent.
  [[nodiscard]] NodeId require(const std::string& name) const;

  /// Arc ids entering / leaving a node.
  [[nodiscard]] const std::vector<ArcId>& in_arcs(NodeId id) const;
  [[nodiscard]] const std::vector<ArcId>& out_arcs(NodeId id) const;

  /// Counts nodes of a kind.
  [[nodiscard]] std::size_t count(NodeKind kind) const noexcept;

  /// Structural validation of this level in isolation:
  ///   - arcs reference valid, distinct endpoints;
  ///   - no Storage -> Storage arcs (stores exchange data via tasks);
  ///   - arcs into/out of a Task must carry a variable the task declares
  ///     (when the arc is labelled);
  ///   - the graph is acyclic (large-grain dataflow designs "not
  ///     involving loops or branches", per the paper).
  /// Throws Error{Graph} on the first violation.
  void validate() const;

  /// Topological order of this level's nodes. Throws if cyclic.
  [[nodiscard]] std::vector<NodeId> topo_order() const;

  /// True if the level contains no directed cycle.
  [[nodiscard]] bool is_acyclic() const;

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Arc> arcs_;
  std::vector<std::vector<ArcId>> in_arcs_;
  std::vector<std::vector<ArcId>> out_arcs_;
  std::unordered_map<std::string, NodeId> by_name_;
};

}  // namespace banger::graph
