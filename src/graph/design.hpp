// banger/graph/design.hpp
//
// A complete hierarchical PITL design: a set of dataflow graph levels in
// which bold (Super) nodes of one level expand into lower-level graphs,
// exactly as in the paper's Figure 1. The Design owns all levels; level 0
// is the root drawing.
//
// Flattening converts the hierarchy into the primitive TaskGraph that the
// schedulers consume:
//   1. every Super node is replaced by its child graph (names become
//      qualified: "solve.fan1"), and arcs incident to the Super node are
//      re-bound to the child nodes that consume/produce the arc variable;
//   2. every Storage node is eliminated: each writer-task/reader-task pair
//      through a store becomes a direct data dependence whose message size
//      is the store's size in bytes. Stores without writers are the
//      design's external inputs; stores without readers are its outputs.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/task_graph.hpp"

namespace banger::graph {

/// A named data store surviving flattening, with the leaf tasks that
/// write/read it. Input stores (no writers) receive their values from the
/// environment before a run; output stores hold the program's results.
struct FlatStore {
  /// Qualified name ("solve.x").
  std::string name;
  /// Variable identity: the unqualified store name ("x").
  std::string var;
  double bytes = 8.0;
  std::vector<TaskId> writers;
  std::vector<TaskId> readers;
  /// Declaration site of the storage node in the `.pitl` file ({0,0}
  /// for programmatic designs).
  SourcePos pos;
};

/// Result of Design::flatten().
struct FlattenResult {
  TaskGraph graph;
  std::vector<FlatStore> stores;

  /// Indices into `stores` partitioned by role.
  [[nodiscard]] std::vector<std::size_t> input_stores() const;
  [[nodiscard]] std::vector<std::size_t> output_stores() const;
  [[nodiscard]] const FlatStore* find_store(const std::string& var) const;
};

/// The hierarchical design. Construct, then populate the root graph and
/// any child graphs, then validate() and flatten().
class Design {
 public:
  explicit Design(std::string name = "design");

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Adds a child graph level and returns its id (root is id 0).
  /// References returned by graph()/root_graph() remain valid.
  GraphId add_graph(std::string name);

  [[nodiscard]] GraphId root() const noexcept { return 0; }
  [[nodiscard]] std::size_t num_graphs() const noexcept { return graphs_.size(); }

  [[nodiscard]] DataflowGraph& graph(GraphId id);
  [[nodiscard]] const DataflowGraph& graph(GraphId id) const;
  [[nodiscard]] DataflowGraph& root_graph() { return graph(0); }
  [[nodiscard]] const DataflowGraph& root_graph() const { return graph(0); }

  /// Whole-design validation:
  ///   - each level validates structurally;
  ///   - every Super node references an existing, non-root graph;
  ///   - the graph-reference relation is acyclic (no recursive designs);
  ///   - flattening succeeds (all supernode boundary variables bind).
  void validate() const;

  /// Depth of the hierarchy: 1 for a flat design, 2 for the paper's
  /// Figure 1, etc.
  [[nodiscard]] int depth() const;

  /// Total primitive (leaf) tasks after full expansion.
  [[nodiscard]] std::size_t num_leaf_tasks() const;

  /// Expands the hierarchy and eliminates stores. Throws Error{Graph} on
  /// unbound supernode variables or cycles.
  [[nodiscard]] FlattenResult flatten() const;

 private:
  std::string name_;
  // deque: stable references across add_graph (builders hold level refs).
  std::deque<DataflowGraph> graphs_;
};

}  // namespace banger::graph
