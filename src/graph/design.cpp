#include "graph/design.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "util/error.hpp"

namespace banger::graph {

namespace {

/// Working representation during expansion: a flat soup of Task/Storage/
/// Super nodes. Super nodes are replaced one by one until none remain.
struct WorkNode {
  Node node;          // node.name holds the *qualified* name
  bool dead = false;  // tombstone after replacement
};

struct WorkArc {
  std::size_t from = 0;
  std::size_t to = 0;
  std::string var;
  double bytes = 8.0;
  bool dead = false;
};

std::string unqualified(const std::string& name) {
  auto pos = name.rfind('.');
  return pos == std::string::npos ? name : name.substr(pos + 1);
}

}  // namespace

std::vector<std::size_t> FlattenResult::input_stores() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < stores.size(); ++i)
    if (stores[i].writers.empty()) out.push_back(i);
  return out;
}

std::vector<std::size_t> FlattenResult::output_stores() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < stores.size(); ++i)
    if (stores[i].readers.empty() && !stores[i].writers.empty())
      out.push_back(i);
  return out;
}

const FlatStore* FlattenResult::find_store(const std::string& var) const {
  for (const auto& s : stores)
    if (s.var == var || s.name == var) return &s;
  return nullptr;
}

Design::Design(std::string name) : name_(std::move(name)) {
  graphs_.emplace_back(name_);
}

GraphId Design::add_graph(std::string name) {
  graphs_.emplace_back(std::move(name));
  return static_cast<GraphId>(graphs_.size() - 1);
}

DataflowGraph& Design::graph(GraphId id) {
  BANGER_ASSERT(id >= 0 && static_cast<std::size_t>(id) < graphs_.size(),
                "graph id out of range");
  return graphs_[static_cast<std::size_t>(id)];
}

const DataflowGraph& Design::graph(GraphId id) const {
  BANGER_ASSERT(id >= 0 && static_cast<std::size_t>(id) < graphs_.size(),
                "graph id out of range");
  return graphs_[static_cast<std::size_t>(id)];
}

void Design::validate() const {
  for (const auto& g : graphs_) g.validate();

  // Supernode references: existing, non-root, acyclic.
  const auto n = graphs_.size();
  std::vector<std::vector<std::size_t>> refs(n);
  for (std::size_t gi = 0; gi < n; ++gi) {
    for (const Node& node : graphs_[gi].nodes()) {
      if (node.kind != NodeKind::Super) continue;
      if (node.subgraph < 0 ||
          static_cast<std::size_t>(node.subgraph) >= n) {
        fail(ErrorCode::Graph, "supernode `" + node.name +
                                   "` references a missing child graph");
      }
      if (node.subgraph == 0) {
        fail(ErrorCode::Graph, "supernode `" + node.name +
                                   "` references the root graph");
      }
      refs[gi].push_back(static_cast<std::size_t>(node.subgraph));
    }
  }
  // Cycle check over the graph-reference relation (DFS, three colors).
  std::vector<int> color(n, 0);
  std::vector<std::size_t> stack;
  auto dfs = [&](auto&& self, std::size_t g) -> void {
    color[g] = 1;
    for (std::size_t child : refs[g]) {
      if (color[child] == 1) {
        fail(ErrorCode::Graph, "recursive hierarchy through graph `" +
                                   graphs_[child].name() + "`");
      }
      if (color[child] == 0) self(self, child);
    }
    color[g] = 2;
  };
  for (std::size_t g = 0; g < n; ++g)
    if (color[g] == 0) dfs(dfs, g);

  (void)flatten();  // binding errors surface here
}

int Design::depth() const {
  // Longest chain in the (acyclic) graph-reference relation, counting
  // levels from the root.
  std::vector<int> memo(graphs_.size(), -1);
  auto dfs = [&](auto&& self, std::size_t g) -> int {
    if (memo[g] >= 0) return memo[g];
    int best = 1;
    for (const Node& node : graphs_[g].nodes()) {
      if (node.kind == NodeKind::Super && node.subgraph > 0 &&
          static_cast<std::size_t>(node.subgraph) < graphs_.size()) {
        best = std::max(
            best, 1 + self(self, static_cast<std::size_t>(node.subgraph)));
      }
    }
    return memo[g] = best;
  };
  return dfs(dfs, 0);
}

std::size_t Design::num_leaf_tasks() const {
  return flatten().graph.num_tasks();
}

FlattenResult Design::flatten() const {
  // ---- Phase 1: load the root level into the working soup. ----
  std::vector<WorkNode> wnodes;
  std::vector<WorkArc> warcs;
  std::deque<std::size_t> super_queue;  // indices of pending Super nodes

  auto load_level = [&](const DataflowGraph& g, const std::string& prefix)
      -> std::vector<std::size_t> {
    std::vector<std::size_t> local_to_work(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      WorkNode wn;
      wn.node = g.node(v);
      wn.node.name = prefix + wn.node.name;
      local_to_work[v] = wnodes.size();
      if (wn.node.kind == NodeKind::Super) super_queue.push_back(wnodes.size());
      wnodes.push_back(std::move(wn));
    }
    for (const Arc& a : g.arcs()) {
      warcs.push_back(
          {local_to_work[a.from], local_to_work[a.to], a.var, a.bytes, false});
    }
    return local_to_work;
  };

  load_level(graphs_[0], "");

  // ---- Phase 2: expand Super nodes until none remain. ----
  // `consumes`/`produces` decide how arcs incident to a Super node re-bind
  // inside its freshly spliced child level.
  auto consumes = [&](std::size_t wi, const std::string& var) {
    const Node& n = wnodes[wi].node;
    switch (n.kind) {
      case NodeKind::Storage:
        return unqualified(n.name) == var;
      case NodeKind::Task:
      case NodeKind::Super: {
        if (std::find(n.inputs.begin(), n.inputs.end(), var) ==
            n.inputs.end())
          return false;
        // Already fed internally? then it is not a free input.
        for (const WorkArc& a : warcs) {
          if (!a.dead && a.to == wi && a.var == var) return false;
        }
        return true;
      }
    }
    return false;
  };
  auto produces = [&](std::size_t wi, const std::string& var) {
    const Node& n = wnodes[wi].node;
    if (n.kind == NodeKind::Storage) return unqualified(n.name) == var;
    return std::find(n.outputs.begin(), n.outputs.end(), var) !=
           n.outputs.end();
  };

  std::size_t expansions = 0;
  while (!super_queue.empty()) {
    if (++expansions > 100000) {
      fail(ErrorCode::Limit, "hierarchy expansion exceeded 100000 supernodes");
    }
    const std::size_t si = super_queue.front();
    super_queue.pop_front();
    const Node super = wnodes[si].node;  // copy: we tombstone below
    BANGER_ASSERT(super.kind == NodeKind::Super, "queue holds supernodes");
    if (super.subgraph <= 0 ||
        static_cast<std::size_t>(super.subgraph) >= graphs_.size()) {
      fail(ErrorCode::Graph, "supernode `" + super.name +
                                 "` references a missing child graph");
    }
    if (graphs_.size() > 1 && expansions > graphs_.size() * 10000) {
      fail(ErrorCode::Limit, "runaway hierarchy expansion (recursive design?)");
    }

    const DataflowGraph& child =
        graphs_[static_cast<std::size_t>(super.subgraph)];
    const auto child_map = load_level(child, super.name + ".");

    // Re-bind arcs that touched the Super node.
    const std::size_t arc_count = warcs.size();
    for (std::size_t ai = 0; ai < arc_count; ++ai) {
      WorkArc arc = warcs[ai];
      if (arc.dead) continue;
      const bool from_super = arc.from == si;
      const bool to_super = arc.to == si;
      if (!from_super && !to_super) continue;
      warcs[ai].dead = true;

      const std::string& var = arc.var;
      std::vector<std::size_t> froms, tos;
      if (from_super) {
        for (std::size_t wi : child_map)
          if (produces(wi, var)) froms.push_back(wi);
        if (froms.empty()) {
          fail(ErrorCode::Graph, "output `" + var + "` of supernode `" +
                                     super.name +
                                     "` is produced by nothing in graph `" +
                                     child.name() + "`");
        }
      } else {
        froms.push_back(arc.from);
      }
      if (to_super) {
        for (std::size_t wi : child_map)
          if (consumes(wi, var)) tos.push_back(wi);
        if (tos.empty()) {
          fail(ErrorCode::Graph, "input `" + var + "` of supernode `" +
                                     super.name +
                                     "` is consumed by nothing in graph `" +
                                     child.name() + "`");
        }
      } else {
        tos.push_back(arc.to);
      }
      for (std::size_t f : froms)
        for (std::size_t t : tos)
          if (f != t) warcs.push_back({f, t, var, arc.bytes, false});
    }
    wnodes[si].dead = true;
  }

  // ---- Phase 3: storage elimination into the TaskGraph. ----
  FlattenResult result;
  result.graph.reserve(wnodes.size(), warcs.size());
  std::unordered_map<std::size_t, TaskId> task_of;
  for (std::size_t wi = 0; wi < wnodes.size(); ++wi) {
    const WorkNode& wn = wnodes[wi];
    if (wn.dead || wn.node.kind != NodeKind::Task) continue;
    Task t;
    t.name = wn.node.name;
    t.work = wn.node.work;
    t.pits = wn.node.pits;
    t.inputs = wn.node.inputs;
    t.outputs = wn.node.outputs;
    t.pos = wn.node.pos;
    t.pits_line = wn.node.pits_line;
    t.pits_indent = wn.node.pits_indent;
    task_of.emplace(wi, result.graph.add_task(std::move(t)));
  }

  // Direct task->task arcs.
  for (const WorkArc& a : warcs) {
    if (a.dead) continue;
    const WorkNode& src = wnodes[a.from];
    const WorkNode& dst = wnodes[a.to];
    if (src.node.kind == NodeKind::Task && dst.node.kind == NodeKind::Task) {
      result.graph.add_edge(task_of.at(a.from), task_of.at(a.to), a.bytes,
                            a.var);
    }
  }

  // Stores: writer x reader dependences sized by the store.
  for (std::size_t wi = 0; wi < wnodes.size(); ++wi) {
    const WorkNode& wn = wnodes[wi];
    if (wn.dead || wn.node.kind != NodeKind::Storage) continue;
    FlatStore store;
    store.name = wn.node.name;
    store.var = unqualified(wn.node.name);
    store.bytes = wn.node.bytes;
    store.pos = wn.node.pos;
    for (const WorkArc& a : warcs) {
      if (a.dead) continue;
      if (a.to == wi && wnodes[a.from].node.kind == NodeKind::Task)
        store.writers.push_back(task_of.at(a.from));
      if (a.from == wi && wnodes[a.to].node.kind == NodeKind::Task)
        store.readers.push_back(task_of.at(a.to));
    }
    std::sort(store.writers.begin(), store.writers.end());
    store.writers.erase(
        std::unique(store.writers.begin(), store.writers.end()),
        store.writers.end());
    std::sort(store.readers.begin(), store.readers.end());
    store.readers.erase(
        std::unique(store.readers.begin(), store.readers.end()),
        store.readers.end());
    for (TaskId w : store.writers)
      for (TaskId r : store.readers)
        if (w != r) result.graph.add_edge(w, r, store.bytes, store.var);
    result.stores.push_back(std::move(store));
  }

  if (!result.graph.is_acyclic()) {
    fail(ErrorCode::Graph,
         "flattened design `" + name_ + "` contains a dependence cycle");
  }
  return result;
}

}  // namespace banger::graph
