#include "graph/analysis.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace banger::graph {

CostModel CostModel::from_work(const TaskGraph& g) {
  CostModel cost;
  cost.task_time.reserve(g.num_tasks());
  for (const Task& t : g.tasks()) cost.task_time.push_back(t.work);
  cost.edge_time.assign(g.num_edges(), 0.0);
  return cost;
}

CostModel CostModel::uniform(const TaskGraph& g, double speed,
                             double msg_startup, double bytes_per_second) {
  BANGER_ASSERT(speed > 0, "processor speed must be positive");
  CostModel cost;
  cost.task_time.reserve(g.num_tasks());
  for (const Task& t : g.tasks()) cost.task_time.push_back(t.work / speed);
  cost.edge_time.reserve(g.num_edges());
  for (const Edge& e : g.edges()) {
    double t = msg_startup;
    if (bytes_per_second > 0) t += e.bytes / bytes_per_second;
    cost.edge_time.push_back(t);
  }
  return cost;
}

std::vector<double> t_levels(const TaskGraph& g, const CostModel& cost) {
  BANGER_ASSERT(cost.task_time.size() == g.num_tasks(), "cost/task mismatch");
  BANGER_ASSERT(cost.edge_time.size() == g.num_edges(), "cost/edge mismatch");
  std::vector<double> tl(g.num_tasks(), 0.0);
  for (TaskId v : g.topo_order()) {
    for (EdgeId e : g.in_edges(v)) {
      const Edge& edge = g.edge(e);
      tl[v] = std::max(
          tl[v], tl[edge.from] + cost.task_time[edge.from] + cost.edge_time[e]);
    }
  }
  return tl;
}

std::vector<double> b_levels(const TaskGraph& g, const CostModel& cost) {
  BANGER_ASSERT(cost.task_time.size() == g.num_tasks(), "cost/task mismatch");
  BANGER_ASSERT(cost.edge_time.size() == g.num_edges(), "cost/edge mismatch");
  std::vector<double> bl(g.num_tasks(), 0.0);
  auto order = g.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId v = *it;
    double best = 0.0;
    for (EdgeId e : g.out_edges(v)) {
      const Edge& edge = g.edge(e);
      best = std::max(best, cost.edge_time[e] + bl[edge.to]);
    }
    bl[v] = cost.task_time[v] + best;
  }
  return bl;
}

std::vector<double> static_levels(const TaskGraph& g, const CostModel& cost) {
  CostModel no_comm = cost;
  no_comm.edge_time.assign(g.num_edges(), 0.0);
  return b_levels(g, no_comm);
}

double critical_path_length(const TaskGraph& g, const CostModel& cost) {
  if (g.num_tasks() == 0) return 0.0;
  auto bl = b_levels(g, cost);
  return *std::max_element(bl.begin(), bl.end());
}

std::vector<TaskId> critical_path(const TaskGraph& g, const CostModel& cost) {
  if (g.num_tasks() == 0) return {};
  auto bl = b_levels(g, cost);
  // Start at the entry task with the largest b-level, then repeatedly
  // follow the successor that dominates (edge + b-level attains v's
  // remaining path length).
  TaskId v = 0;
  for (TaskId u = 1; u < g.num_tasks(); ++u)
    if (bl[u] > bl[v]) v = u;
  std::vector<TaskId> path{v};
  for (;;) {
    const double remaining = bl[v] - cost.task_time[v];
    TaskId next = kNoTask;
    for (EdgeId e : g.out_edges(v)) {
      const Edge& edge = g.edge(e);
      if (std::abs(cost.edge_time[e] + bl[edge.to] - remaining) < 1e-12) {
        if (next == kNoTask || edge.to < next) next = edge.to;
      }
    }
    if (next == kNoTask) break;
    path.push_back(next);
    v = next;
  }
  return path;
}

std::size_t LevelProfile::max_width() const noexcept {
  std::size_t w = 0;
  for (const auto& level : levels) w = std::max(w, level.size());
  return w;
}

LevelProfile level_profile(const TaskGraph& g) {
  std::vector<int> level(g.num_tasks(), 0);
  int max_level = -1;
  for (TaskId v : g.topo_order()) {
    for (EdgeId e : g.in_edges(v)) {
      level[v] = std::max(level[v], level[g.edge(e).from] + 1);
    }
    max_level = std::max(max_level, level[v]);
  }
  LevelProfile profile;
  profile.levels.resize(static_cast<std::size_t>(max_level + 1));
  for (TaskId v = 0; v < g.num_tasks(); ++v)
    profile.levels[static_cast<std::size_t>(level[v])].push_back(v);
  return profile;
}

double average_parallelism(const TaskGraph& g) {
  if (g.num_tasks() == 0) return 0.0;
  auto cost = CostModel::from_work(g);
  const double cp = critical_path_length(g, cost);
  return cp > 0 ? g.total_work() / cp : 0.0;
}

}  // namespace banger::graph
