// banger/graph/analysis.hpp
//
// Machine-independent DAG analyses used by the scheduling heuristics and
// by the instant-feedback displays: t-levels, b-levels, critical path,
// width/parallelism profile. All analyses are parameterised by a cost
// model (seconds per task, seconds per edge) so a caller can evaluate the
// same design under different target machines; convenience overloads use
// raw work units and zero communication.
#pragma once

#include <vector>

#include "graph/task_graph.hpp"

namespace banger::graph {

/// Per-task execution times and per-edge communication times (seconds),
/// aligned with TaskGraph::tasks() / edges().
struct CostModel {
  std::vector<double> task_time;
  std::vector<double> edge_time;

  /// Unit costs: task time == work, communication free.
  static CostModel from_work(const TaskGraph& g);
  /// task time = work / speed, edge time = startup + bytes / bandwidth.
  static CostModel uniform(const TaskGraph& g, double speed,
                           double msg_startup, double bytes_per_second);
};

/// t-level: earliest possible start of each task assuming unlimited
/// processors (length of the longest path *into* the task, exclusive).
std::vector<double> t_levels(const TaskGraph& g, const CostModel& cost);

/// b-level: longest path from each task to any sink, *inclusive* of the
/// task's own time. Used as a static priority by HLFET/MH/DLS.
std::vector<double> b_levels(const TaskGraph& g, const CostModel& cost);

/// Static level: b-level computed with communication ignored (classic
/// "SL" from the scheduling literature).
std::vector<double> static_levels(const TaskGraph& g, const CostModel& cost);

/// Critical path length = max over tasks of t_level + task_time… i.e. the
/// minimum possible makespan with unlimited processors.
double critical_path_length(const TaskGraph& g, const CostModel& cost);

/// The task ids of one critical path, in execution order.
std::vector<TaskId> critical_path(const TaskGraph& g, const CostModel& cost);

/// Number of precedence levels (longest path in hops + 1) and the tasks
/// in each level — the "width profile" that bounds achievable speedup.
struct LevelProfile {
  std::vector<std::vector<TaskId>> levels;
  [[nodiscard]] std::size_t depth() const noexcept { return levels.size(); }
  [[nodiscard]] std::size_t max_width() const noexcept;
};
LevelProfile level_profile(const TaskGraph& g);

/// Average parallelism = total work / critical path work (communication-
/// free); the classic upper bound on speedup.
double average_parallelism(const TaskGraph& g);

}  // namespace banger::graph
