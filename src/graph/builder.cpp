#include "graph/builder.hpp"

#include <algorithm>

#include "pits/interp.hpp"
#include "util/error.hpp"

namespace banger::graph {

DesignBuilder::DesignBuilder(std::string name) : design_(std::move(name)) {
  current_ = design_.root();
  graph_ids_.emplace(design_.name(), current_);
}

DesignBuilder& DesignBuilder::store(const std::string& name, double bytes) {
  Node n;
  n.kind = NodeKind::Storage;
  n.name = name;
  n.bytes = bytes;
  design_.graph(current_).add_node(std::move(n));
  return *this;
}

DesignBuilder& DesignBuilder::task(const std::string& name,
                                   const std::string& pits, double work) {
  // Infer the interface from the routine itself.
  const auto program = pits::Program::parse(pits);
  return task(name, pits, work, program.inputs(), program.outputs());
}

DesignBuilder& DesignBuilder::task(const std::string& name,
                                   const std::string& pits, double work,
                                   std::vector<std::string> inputs,
                                   std::vector<std::string> outputs) {
  Node n;
  n.kind = NodeKind::Task;
  n.name = name;
  n.work = work;
  n.pits = pits;
  n.inputs = std::move(inputs);
  n.outputs = std::move(outputs);
  design_.graph(current_).add_node(std::move(n));
  return *this;
}

DesignBuilder& DesignBuilder::super(const std::string& name,
                                    const std::string& child,
                                    std::vector<std::string> inputs,
                                    std::vector<std::string> outputs) {
  auto it = graph_ids_.find(child);
  GraphId child_id;
  if (it == graph_ids_.end()) {
    child_id = design_.add_graph(child);
    graph_ids_.emplace(child, child_id);
  } else {
    child_id = it->second;
  }
  if (child_id == design_.root()) {
    fail(ErrorCode::Graph, "supernode cannot reference the root graph");
  }
  Node n;
  n.kind = NodeKind::Super;
  n.name = name;
  n.subgraph = child_id;
  n.inputs = std::move(inputs);
  n.outputs = std::move(outputs);
  design_.graph(current_).add_node(std::move(n));
  return *this;
}

DesignBuilder& DesignBuilder::graph(const std::string& name) {
  if (name.empty() || name == design_.name()) {
    current_ = design_.root();
    return *this;
  }
  auto it = graph_ids_.find(name);
  if (it == graph_ids_.end()) {
    current_ = design_.add_graph(name);
    graph_ids_.emplace(name, current_);
  } else {
    current_ = it->second;
  }
  return *this;
}

DesignBuilder& DesignBuilder::arc(const std::string& from,
                                  const std::string& to,
                                  const std::string& var, double bytes) {
  auto& g = design_.graph(current_);
  g.connect(from, to, var, bytes);
  explicit_arcs_.emplace(current_, g.require(from), g.require(to));
  return *this;
}

DesignBuilder& DesignBuilder::var_bytes(const std::string& var,
                                        double bytes) {
  var_bytes_[var] = bytes;
  return *this;
}

double DesignBuilder::bytes_for(const std::string& var) const {
  auto it = var_bytes_.find(var);
  return it == var_bytes_.end() ? 8.0 : it->second;
}

void DesignBuilder::auto_wire(DataflowGraph& g) {
  // Index producers per variable: stores by their own name, tasks and
  // supernodes by their output lists.
  std::map<std::string, std::vector<NodeId>> producers;
  std::map<std::string, NodeId> stores;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Node& n = g.node(v);
    if (n.kind == NodeKind::Storage) {
      stores.emplace(n.name, v);
    } else {
      for (const std::string& out : n.outputs) {
        producers[out].push_back(v);
      }
    }
  }

  const GraphId gid = [&] {
    for (const auto& [name, id] : graph_ids_) {
      if (&design_.graph(id) == &g) return id;
    }
    return design_.root();
  }();

  auto already = [&](NodeId from, NodeId to) {
    if (explicit_arcs_.contains({gid, from, to})) return true;
    for (ArcId a : g.out_arcs(from)) {
      if (g.arc(a).to == to) return true;
    }
    return false;
  };

  const auto node_count = static_cast<NodeId>(g.num_nodes());
  for (NodeId v = 0; v < node_count; ++v) {
    const Node n = g.node(v);  // copy: we add arcs below
    if (n.kind == NodeKind::Storage) continue;

    // Inputs: prefer a same-named store, else every producer task.
    for (const std::string& var : n.inputs) {
      if (auto s = stores.find(var); s != stores.end()) {
        if (!already(s->second, v)) {
          g.add_arc({s->second, v, var, g.node(s->second).bytes});
        }
        continue;
      }
      if (auto p = producers.find(var); p != producers.end()) {
        for (NodeId from : p->second) {
          if (from != v && !already(from, v)) {
            g.add_arc({from, v, var, bytes_for(var)});
          }
        }
      }
      // Unbound inputs are left for validate()/lint to report.
    }
    // Outputs into same-named stores.
    for (const std::string& var : n.outputs) {
      if (auto s = stores.find(var); s != stores.end()) {
        if (!already(v, s->second)) {
          g.add_arc({v, s->second, var, g.node(s->second).bytes});
        }
      }
    }
  }
}

Design DesignBuilder::build_unchecked() {
  for (GraphId gid = 0; gid < static_cast<GraphId>(design_.num_graphs());
       ++gid) {
    auto_wire(design_.graph(gid));
  }
  return std::move(design_);
}

Design DesignBuilder::build() {
  Design design = build_unchecked();
  design.validate();
  return design;
}

}  // namespace banger::graph
