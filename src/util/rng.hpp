// banger/util/rng.hpp
//
// Deterministic, seedable random number generation used by the random
// workload generators and the randomized schedulers. A small xoshiro256**
// implementation keeps results identical across platforms, which the
// reproduction benches rely on (std::mt19937 distributions are not
// portable across standard libraries).
#pragma once

#include <cstdint>

namespace banger::util {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via SplitMix64 so that
  /// similar seeds produce uncorrelated streams.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n); n must be > 0. Uses rejection to avoid
  /// modulo bias.
  std::uint64_t next_below(std::uint64_t n) {
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace banger::util
