// banger/util/strings.hpp
//
// Small string utilities shared by the serializers, the PITS lexer, and
// the text renderers. Everything operates on std::string_view and never
// allocates unless it must return an owning string.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace banger::util {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s) noexcept;

/// Splits on a single character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; no empty fields are produced.
std::vector<std::string_view> split_ws(std::string_view s);

/// True if `s` starts with / ends with the given prefix or suffix.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Joins the elements with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// True if `s` is a valid identifier: [A-Za-z_][A-Za-z0-9_]*.
bool is_identifier(std::string_view s) noexcept;

/// Formats a double compactly ("3", "3.5", "0.001") with up to
/// `max_digits` significant digits and no trailing zeros.
std::string format_double(double v, int max_digits = 6);

/// Left/right pads `s` with spaces to at least `width` columns.
std::string pad_left(std::string_view s, std::size_t width);
std::string pad_right(std::string_view s, std::size_t width);

/// FNV-1a 64-bit offset basis: the seed every hash starts from. Exposed
/// so derived hashes (e.g. the executor's per-task rand() seeds) can mix
/// extra state into the basis while sharing one implementation.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;

/// FNV-1a 64-bit over the bytes of `s`, starting from `seed`. The
/// content-address used by the serve artifact cache and by the schedule
/// golden manifests.
std::uint64_t fnv1a64(std::string_view s,
                      std::uint64_t seed = kFnvOffsetBasis) noexcept;

/// fnv1a64 rendered as 16 lowercase hex digits.
std::string fnv1a64_hex(std::string_view s);

/// Strictly parses a whole string as a decimal integer: optional sign,
/// digits only, no trailing junk, no overflow. Returns false (leaving
/// `out` untouched) on any violation — callers own the diagnostic.
bool parse_int64(std::string_view s, std::int64_t& out) noexcept;

/// Strictly parses a whole string as a finite double (no trailing
/// junk, no inf/nan). Returns false on any violation.
bool parse_double(std::string_view s, double& out) noexcept;

}  // namespace banger::util
