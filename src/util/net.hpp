// banger/util/net.hpp
//
// Minimal POSIX TCP helpers for the serve daemon: bind/listen, accept
// with a poll timeout (so the accept loop can notice a shutdown flag),
// client connect, and a std::streambuf over a connected socket so the
// per-connection protocol loop is the same std::istream/std::ostream
// code that serves stdio mode. IPv4 loopback-oriented: the service is a
// local design assistant, not an internet-facing endpoint.
#pragma once

#include <streambuf>
#include <string>

namespace banger::util {

/// Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port).
/// Returns the listening fd; throws Error{Io} on failure.
int tcp_listen(int port, int backlog = 16);

/// The locally bound port of a listening fd (resolves port 0).
int tcp_local_port(int fd);

/// Accepts one connection, waiting at most `timeout_ms` (-1 blocks).
/// Returns the connected fd, or -1 on timeout. Throws Error{Io} on a
/// socket error.
int tcp_accept(int fd, int timeout_ms);

/// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1").
/// Returns the connected fd; throws Error{Io} on failure.
int tcp_connect(const std::string& host, int port);

/// close(2) that tolerates already-closed fds.
void close_fd(int fd) noexcept;

/// Buffered read/write streambuf over a file descriptor. Wrap it in
/// std::iostream to speak a line protocol over a socket. sync() flushes;
/// the destructor flushes best-effort but does not close the fd (the
/// owner does, after the streams are gone).
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd);
  ~FdStreamBuf() override;

  FdStreamBuf(const FdStreamBuf&) = delete;
  FdStreamBuf& operator=(const FdStreamBuf&) = delete;

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  bool flush_out() noexcept;

  int fd_;
  char in_[4096];
  char out_[4096];
};

}  // namespace banger::util
