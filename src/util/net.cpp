#include "util/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace banger::util {

namespace {

[[noreturn]] void io_fail(const std::string& what) {
  fail(ErrorCode::Io, what + ": " + std::strerror(errno));
}

}  // namespace

int tcp_listen(int port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) io_fail("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    close_fd(fd);
    io_fail("bind port " + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) {
    close_fd(fd);
    io_fail("listen");
  }
  return fd;
}

int tcp_local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    io_fail("getsockname");
  }
  return ntohs(addr.sin_port);
}

int tcp_accept(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  for (;;) {
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r == 0) return -1;  // timeout
    if (r < 0) {
      if (errno == EINTR) continue;
      io_fail("poll");
    }
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) return conn;
    if (errno == EINTR || errno == ECONNABORTED) continue;
    io_fail("accept");
  }
}

int tcp_connect(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) io_fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close_fd(fd);
    fail(ErrorCode::Io, "invalid IPv4 address `" + host + "`");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    close_fd(fd);
    io_fail("connect " + host + ":" + std::to_string(port));
  }
  return fd;
}

void close_fd(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

FdStreamBuf::FdStreamBuf(int fd) : fd_(fd) {
  setg(in_, in_, in_);
  setp(out_, out_ + sizeof out_);
}

FdStreamBuf::~FdStreamBuf() { flush_out(); }

bool FdStreamBuf::flush_out() noexcept {
  const char* p = pbase();
  std::size_t left = static_cast<std::size_t>(pptr() - pbase());
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  setp(out_, out_ + sizeof out_);
  return true;
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  // A request/response protocol: everything written so far must be on
  // the wire before we block waiting for the peer.
  if (!flush_out()) return traits_type::eof();
  for (;;) {
    const ssize_t n = ::read(fd_, in_, sizeof in_);
    if (n > 0) {
      setg(in_, in_, in_ + n);
      return traits_type::to_int_type(*gptr());
    }
    if (n == 0) return traits_type::eof();
    if (errno != EINTR) return traits_type::eof();
  }
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (!flush_out()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreamBuf::sync() { return flush_out() ? 0 : -1; }

}  // namespace banger::util
