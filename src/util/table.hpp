// banger/util/table.hpp
//
// A minimal text table builder used by the bench report binaries to print
// the rows/series that mirror the paper's figures. Columns are sized to
// their widest cell; numeric cells are right-aligned.
#pragma once

#include <string>
#include <vector>

namespace banger::util {

class Table {
 public:
  /// Sets the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Appends one data row; its arity must match the header (if set) or
  /// the first row added.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with format_double.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int digits = 6);

  /// Adds a horizontal separator line at the current position.
  void add_separator();

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Renders the table with aligned columns. `indent` spaces prefix each
  /// line.
  [[nodiscard]] std::string to_string(int indent = 0) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace banger::util
