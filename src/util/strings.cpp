#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace banger::util {

namespace {
bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool is_identifier(std::string_view s) noexcept {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_')
    return false;
  return std::all_of(s.begin() + 1, s.end(), [](unsigned char c) {
    return std::isalnum(c) || c == '_';
  });
}

std::string format_double(double v, int max_digits) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", max_digits, v);
  return buf;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out;
  if (s.size() < width) out.assign(width - s.size(), ' ');
  out += s;
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::uint64_t fnv1a64(std::string_view s, std::uint64_t seed) noexcept {
  std::uint64_t h = seed;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string fnv1a64_hex(std::string_view s) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(s)));
  return buf;
}

bool parse_int64(std::string_view s, std::int64_t& out) noexcept {
  s = trim(s);
  if (s.empty()) return false;
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return false;
  out = value;
  return true;
}

bool parse_double(std::string_view s, double& out) noexcept {
  s = trim(s);
  if (s.empty()) return false;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return false;
  if (!std::isfinite(value)) return false;
  out = value;
  return true;
}

}  // namespace banger::util
