#include "util/table.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace banger::util {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i >= s.size()) return false;
  return std::isdigit(static_cast<unsigned char>(s[i])) != 0;
}
}  // namespace

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    BANGER_ASSERT(row.size() == header_.size(),
                  "table row arity must match header");
  }
  rows_.push_back({std::move(row), false});
}

void Table::add_row_numeric(const std::string& label,
                            const std::vector<double>& values, int digits) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_double(v, digits));
  add_row(std::move(row));
}

void Table::add_separator() { rows_.push_back({{}, true}); }

std::string Table::to_string(int indent) const {
  // Column widths.
  std::vector<std::size_t> widths;
  auto absorb = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  if (!header_.empty()) absorb(header_);
  for (const auto& row : rows_)
    if (!row.separator) absorb(row.cells);

  const std::string prefix(static_cast<std::size_t>(indent), ' ');
  std::string out;
  auto emit = [&](const std::vector<std::string>& cells, bool numeric_align) {
    out += prefix;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out += "  ";
      const bool right = numeric_align && looks_numeric(cells[i]) && i > 0;
      out += right ? pad_left(cells[i], widths[i])
                   : pad_right(cells[i], widths[i]);
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  auto rule = [&] {
    out += prefix;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      if (i > 0) out += "  ";
      out.append(widths[i], '-');
    }
    out += '\n';
  };

  if (!header_.empty()) {
    emit(header_, false);
    rule();
  }
  for (const auto& row : rows_) {
    if (row.separator) {
      rule();
    } else {
      emit(row.cells, true);
    }
  }
  return out;
}

}  // namespace banger::util
