#include "util/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <optional>
#include <string>

namespace banger::util {

int default_jobs() {
  if (const char* env = std::getenv("BANGER_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int resolve_jobs(int jobs) { return jobs >= 1 ? jobs : default_jobs(); }

ThreadPool::ThreadPool(int threads) : rec_(obs::current()) {
  const int n = resolve_jobs(threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  Job job{std::move(fn), rec_ ? rec_->wall_now() : 0.0};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(job));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop(int worker) {
  // The ambient recorder is thread-local; adopt the constructing
  // thread's recorder so closures observe the same ambient they would
  // have seen running inline (counters, nested ScopedRecorder, ...).
  std::optional<obs::ScopedRecorder> ambient;
  if (rec_ != nullptr) ambient.emplace(*rec_);
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop();
    }
    if (rec_) {
      const double start = rec_->wall_now();
      const double wait = start - job.enqueued;
      job.fn();
      const double end = rec_->wall_now();
      rec_->span(obs::Domain::Wall, obs::kTrackPool, worker, start, end,
                 "pool.task", "pool",
                 "\"queue_wait\": " + obs::json_number(wait));
      rec_->bump("pool.tasks");
      rec_->bump("pool.busy_seconds", end - start);
      rec_->bump("pool.queue_wait_seconds", wait);
    } else {
      job.fn();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

namespace detail {

void parallel_for_impl(std::size_t n, int jobs,
                       const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const int j = resolve_jobs(jobs);
  if (j <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Fixed contiguous chunks, a few per worker so uneven items still
  // balance. Chunk boundaries depend only on (n, workers), never on
  // execution timing.
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(j), n);
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t per_chunk = (n + chunks - 1) / chunks;

  // Exception determinism: record the lowest item index that threw and
  // rethrow that item's exception — independent of thread timing.
  std::mutex err_mutex;
  std::exception_ptr first_error;
  std::atomic<std::size_t> first_error_index{n};

  ThreadPool pool(static_cast<int>(workers));
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    pool.submit([&, begin, end] {
      for (std::size_t i = begin; i < end; ++i) {
        if (i > first_error_index.load(std::memory_order_relaxed)) {
          // Best-effort early exit; correctness does not depend on it
          // (only items above the failing index may be skipped).
          continue;
        }
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(err_mutex);
          if (i < first_error_index.load(std::memory_order_relaxed)) {
            first_error = std::current_exception();
            first_error_index.store(i, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail

}  // namespace banger::util
