// banger/util/error.hpp
//
// User-facing error type for the Banger environment. All recoverable,
// user-caused failures (parse errors, malformed graphs, infeasible
// schedules) are reported by throwing banger::Error. Internal invariant
// violations use BANGER_ASSERT, which is fatal.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace banger {

/// Broad classification of user-facing errors, used by tests and by CLI
/// tools to decide how to present a failure.
enum class ErrorCode : std::uint8_t {
  Generic,       ///< Unclassified failure.
  Parse,         ///< PITS / .pitl / .machine text could not be parsed.
  Name,          ///< Unknown or duplicate name (variable, node, function).
  Type,          ///< Value of the wrong shape (scalar vs vector, arity).
  Graph,         ///< Structurally invalid dataflow graph (cycle, dangling arc).
  Machine,       ///< Invalid machine description (bad topology, params).
  Schedule,      ///< Scheduling failed or produced an infeasible schedule.
  Runtime,       ///< PITS runtime error (division by zero, bad index).
  Io,            ///< File could not be read or written.
  Limit,         ///< A configured limit was exceeded (step count, memory).
  Usage,         ///< Invalid command-line usage (bad flag or flag value).
};

/// Returns a stable lowercase name for an error code ("parse", "graph", ...).
std::string_view to_string(ErrorCode code) noexcept;

/// Source position inside a PITS program or serialized file. Lines and
/// columns are 1-based; {0,0} means "no position available".
struct SourcePos {
  int line = 0;
  int column = 0;

  [[nodiscard]] bool valid() const noexcept { return line > 0; }
  friend bool operator==(const SourcePos&, const SourcePos&) = default;
};

/// The single exception type thrown by all banger libraries for
/// user-recoverable failures.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, std::string message, SourcePos pos = {});

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] SourcePos pos() const noexcept { return pos_; }
  /// Message without the "code:line:col" prefix that what() carries.
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

 private:
  ErrorCode code_;
  SourcePos pos_;
  std::string message_;
};

/// Internal invariant check; aborts with a diagnostic when violated.
/// Used for programmer errors, never for user input validation.
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);

#define BANGER_ASSERT(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) ::banger::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Throws Error with the given code; convenience for validation sites.
[[noreturn]] void fail(ErrorCode code, std::string message, SourcePos pos = {});

}  // namespace banger
