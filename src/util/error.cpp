#include "util/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace banger {

namespace {

std::string format_what(ErrorCode code, const std::string& message,
                        SourcePos pos) {
  std::string out(to_string(code));
  out += " error";
  if (pos.valid()) {
    out += " at ";
    out += std::to_string(pos.line);
    out += ':';
    out += std::to_string(pos.column);
  }
  out += ": ";
  out += message;
  return out;
}

}  // namespace

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::Generic: return "generic";
    case ErrorCode::Parse: return "parse";
    case ErrorCode::Name: return "name";
    case ErrorCode::Type: return "type";
    case ErrorCode::Graph: return "graph";
    case ErrorCode::Machine: return "machine";
    case ErrorCode::Schedule: return "schedule";
    case ErrorCode::Runtime: return "runtime";
    case ErrorCode::Io: return "io";
    case ErrorCode::Limit: return "limit";
    case ErrorCode::Usage: return "usage";
  }
  return "unknown";
}

Error::Error(ErrorCode code, std::string message, SourcePos pos)
    : std::runtime_error(format_what(code, message, pos)),
      code_(code),
      pos_(pos),
      message_(std::move(message)) {}

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "banger internal error: %s:%d: assertion `%s` failed: %s\n",
               file, line, expr, msg.c_str());
  std::abort();
}

void fail(ErrorCode code, std::string message, SourcePos pos) {
  throw Error(code, std::move(message), pos);
}

}  // namespace banger
