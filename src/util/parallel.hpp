// banger/util/parallel.hpp
//
// Intra-process parallelism for batch workloads: a small fixed-size
// thread pool plus deterministic `parallel_for` / `parallel_map`
// helpers. The design follows the partition-then-parallelize shape:
// callers split work into independent items, each item writes only its
// own result slot, and results are merged in item order — so the output
// is bit-identical no matter how many worker threads ran (jobs=1 runs
// everything inline on the caller's thread with no pool at all).
//
// There is deliberately no work stealing and no task graph here: every
// consumer in the library (scheduler bake-offs, annealing restarts,
// fault Monte Carlo, parameter sweeps) is embarrassingly parallel, and a
// mutex-guarded queue is already far from the bottleneck when each item
// runs a full scheduling pass.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace banger::util {

/// Number of worker threads to use when the caller asks for "default":
/// the BANGER_JOBS environment variable when set to a positive integer,
/// otherwise std::thread::hardware_concurrency() (at least 1).
int default_jobs();

/// Clamps a user-supplied jobs knob: values < 1 mean "default".
int resolve_jobs(int jobs);

/// Fixed pool of worker threads consuming a FIFO queue of closures.
/// Construction spawns the workers; destruction drains nothing — it
/// stops accepting work, wakes everyone, and joins. Submitted closures
/// must not throw (the helpers below wrap user functions and capture
/// exceptions per item instead).
class ThreadPool {
 public:
  /// `threads` < 1 selects default_jobs().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Enqueues one closure. Never blocks (unbounded queue).
  void submit(std::function<void()> fn);

  /// Blocks until every submitted closure has finished executing.
  void wait_idle();

 private:
  /// A queued closure plus its enqueue time (for the observability
  /// layer's queue-wait accounting; 0 when tracing is off).
  struct Job {
    std::function<void()> fn;
    double enqueued = 0.0;
  };

  void worker_loop(int worker);

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::queue<Job> queue_;
  std::size_t in_flight_ = 0;  // queued + executing
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  // Ambient recorder, captured once at construction (pools are created
  // per batch, inside any ScopedRecorder that should observe them).
  // Workers emit Domain::Wall spans on obs::kTrackPool — inherently
  // nondeterministic timings, which is why deterministic exports drop
  // the Wall domain.
  obs::TraceRecorder* rec_ = nullptr;
};

namespace detail {

/// Runs fn(0..n-1) across the pool in fixed contiguous chunks. The
/// first exception thrown (by lowest item index, deterministically) is
/// rethrown on the caller's thread after all items finished or were
/// skipped. jobs <= 1 executes inline.
void parallel_for_impl(std::size_t n, int jobs,
                       const std::function<void(std::size_t)>& fn);

}  // namespace detail

/// Deterministic parallel loop: calls fn(i) for i in [0, n). Results
/// must be communicated by writing to per-index slots. `jobs` < 1 means
/// default_jobs(); 1 runs inline on the calling thread.
template <typename Fn>
void parallel_for(std::size_t n, int jobs, Fn&& fn) {
  detail::parallel_for_impl(n, jobs, std::function<void(std::size_t)>(fn));
}

/// Deterministic parallel map: returns {fn(items[0]), fn(items[1]), ...}
/// in input order regardless of jobs. Requires R to be default- and
/// move-constructible.
template <typename T, typename Fn,
          typename R = std::invoke_result_t<Fn&, const T&>>
std::vector<R> parallel_map(const std::vector<T>& items, int jobs, Fn&& fn) {
  std::vector<R> results(items.size());
  parallel_for(items.size(), jobs,
               [&](std::size_t i) { results[i] = fn(items[i]); });
  return results;
}

}  // namespace banger::util
