#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <sstream>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace banger::sim {

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::TaskStart: return "start";
    case EventKind::TaskFinish: return "finish";
    case EventKind::MsgSend: return "send";
    case EventKind::MsgHop: return "hop";
    case EventKind::MsgArrive: return "arrive";
    case EventKind::ProcCrash: return "crash";
    case EventKind::TaskKill: return "kill";
    case EventKind::MsgDrop: return "drop";
    case EventKind::MsgRetry: return "retry";
    case EventKind::TaskReexec: return "reexec";
  }
  return "?";
}

std::string SimResult::animation(std::size_t limit) const {
  std::ostringstream out;
  std::size_t shown = 0;
  for (const SimEvent& e : events) {
    if (shown++ >= limit) {
      out << "... (" << events.size() - limit << " more events)\n";
      break;
    }
    out << "t=" << util::pad_left(util::format_double(e.time, 6), 10) << "  "
        << util::pad_right(std::string(to_string(e.kind)), 7) << " proc "
        << e.proc;
    switch (e.kind) {
      case EventKind::TaskStart:
      case EventKind::TaskFinish:
      case EventKind::TaskKill:
      case EventKind::TaskReexec:
        out << "  task " << e.task;
        break;
      case EventKind::ProcCrash:
        break;  // the processor column says it all
      default:
        out << "  edge " << e.edge;
        break;
    }
    out << '\n';
  }
  return out.str();
}

namespace {

struct CopyRef {
  graph::TaskId task = graph::kNoTask;
  ProcId proc = -1;
  double sched_start = 0.0;
  double sched_finish = 0.0;
  bool duplicate = false;
  // Simulation state:
  int lane_index = -1;        // position within the processor's lane
  bool lane_pred_done = true; // no predecessor by default
  double lane_ready = 0.0;
  std::size_t pending_msgs = 0;
  double msg_ready = 0.0;
  bool started = false;
  bool killed = false;  // dies with its processor before finishing
  double start = 0.0;
  double finish = 0.0;
};

}  // namespace

SimResult simulate(const TaskGraph& graph, const Machine& machine,
                   const Schedule& schedule, const SimOptions& options) {
  const auto& placements = schedule.placements();
  if (placements.empty() && graph.num_tasks() > 0) {
    fail(ErrorCode::Schedule, "cannot simulate an empty schedule");
  }

  // An absent or empty plan must reproduce the fault-free replay
  // byte-for-byte, so normalise both to nullptr up front.
  const fault::FaultPlan* plan =
      (options.faults != nullptr && !options.faults->empty()) ? options.faults
                                                              : nullptr;
  if (plan != nullptr) plan->validate(machine.num_procs());

  // ---- Build copy table and per-processor lanes. ----
  std::vector<CopyRef> copies;
  copies.reserve(placements.size());
  std::vector<std::vector<std::size_t>> copies_of_task(graph.num_tasks());
  for (const sched::Placement& p : placements) {
    if (p.task >= graph.num_tasks()) {
      fail(ErrorCode::Schedule, "placement of unknown task");
    }
    CopyRef c;
    c.task = p.task;
    c.proc = p.proc;
    c.sched_start = p.start;
    c.sched_finish = p.finish;
    c.duplicate = p.duplicate;
    copies_of_task[p.task].push_back(copies.size());
    copies.push_back(c);
  }
  for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
    if (copies_of_task[t].empty()) {
      fail(ErrorCode::Schedule,
           "task `" + graph.task(t).name + "` has no placement");
    }
  }

  // Lanes ordered by scheduled start.
  std::vector<std::vector<std::size_t>> lanes(
      static_cast<std::size_t>(machine.num_procs()));
  for (std::size_t ci = 0; ci < copies.size(); ++ci) {
    lanes[static_cast<std::size_t>(copies[ci].proc)].push_back(ci);
  }
  for (auto& lane : lanes) {
    std::sort(lane.begin(), lane.end(), [&](std::size_t a, std::size_t b) {
      if (copies[a].sched_start != copies[b].sched_start)
        return copies[a].sched_start < copies[b].sched_start;
      return a < b;
    });
    for (std::size_t i = 0; i < lane.size(); ++i) {
      copies[lane[i]].lane_index = static_cast<int>(i);
      if (i > 0) copies[lane[i]].lane_pred_done = false;
    }
  }

  // ---- Static message routing: which producer copy feeds which consumer
  // copy, chosen exactly as the scheduler chose (min scheduled arrival).
  struct Delivery {
    graph::EdgeId edge = 0;
    std::size_t to_copy = 0;
  };
  std::vector<std::vector<Delivery>> outbox(copies.size());
  for (std::size_t ci = 0; ci < copies.size(); ++ci) {
    CopyRef& consumer = copies[ci];
    for (graph::EdgeId e : graph.in_edges(consumer.task)) {
      const graph::Edge& edge = graph.edge(e);
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_copy = 0;
      for (std::size_t pi : copies_of_task[edge.from]) {
        const double arrival =
            copies[pi].sched_finish +
            machine.comm_time(edge.bytes, copies[pi].proc, consumer.proc);
        if (arrival < best - 1e-15) {
          best = arrival;
          best_copy = pi;
        }
      }
      outbox[best_copy].push_back({e, ci});
      ++consumer.pending_msgs;
    }
  }

  // ---- Event-driven replay. ----
  SimResult result;
  result.tasks.resize(graph.num_tasks());
  result.proc_busy.assign(static_cast<std::size_t>(machine.num_procs()), 0.0);

  auto record = [&](double time, EventKind kind, graph::TaskId task,
                    graph::EdgeId edge, ProcId proc) {
    if (options.record_events) result.events.push_back({time, kind, task, edge, proc});
  };

  // Directed-link availability for contention: (a<<32|b) -> free time.
  std::map<std::uint64_t, double> link_free;
  auto link_key = [](ProcId a, ProcId b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  };

  using QItem = std::pair<double, std::size_t>;  // (finish time, copy)
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> queue;

  auto try_start = [&](std::size_t ci) {
    CopyRef& c = copies[ci];
    if (c.started || !c.lane_pred_done || c.pending_msgs > 0) return;
    const double start = std::max(c.lane_ready, c.msg_ready);
    const double dur = machine.task_time(graph.task(c.task).work, c.proc);
    double finish = start + dur;
    if (plan != nullptr) {
      const auto crash = plan->crash_time(c.proc);
      if (crash.has_value() && *crash <= start) {
        return;  // fail-stop: the processor is already dead
      }
      finish = plan->task_finish(c.proc, start, dur);
      if (crash.has_value() && *crash < finish) {
        c.killed = true;  // dies mid-execution; the work is lost
        finish = *crash;
      }
    }
    c.started = true;
    c.start = start;
    c.finish = finish;
    record(c.start, EventKind::TaskStart, c.task, 0, c.proc);
    queue.push({c.finish, ci});
  };

  for (std::size_t ci = 0; ci < copies.size(); ++ci) try_start(ci);

  std::size_t finished = 0;
  while (!queue.empty()) {
    const auto [time, ci] = queue.top();
    queue.pop();
    CopyRef& c = copies[ci];
    if (c.killed) {
      // Crash mid-task: partial busy time is burnt, nothing is
      // delivered, and the rest of the lane never becomes ready.
      record(time, EventKind::TaskKill, c.task, 0, c.proc);
      result.proc_busy[static_cast<std::size_t>(c.proc)] += time - c.start;
      result.makespan = std::max(result.makespan, time);
      result.killed.push_back({c.task, c.proc, c.start, time});
      continue;
    }
    ++finished;
    record(time, EventKind::TaskFinish, c.task, 0, c.proc);
    result.proc_busy[static_cast<std::size_t>(c.proc)] += time - c.start;
    result.makespan = std::max(result.makespan, time);
    if (!c.duplicate) {
      result.tasks[c.task] = {c.start, c.finish, c.proc};
    }

    // Release the lane successor.
    const auto& lane = lanes[static_cast<std::size_t>(c.proc)];
    const auto next_index = static_cast<std::size_t>(c.lane_index) + 1;
    if (next_index < lane.size()) {
      CopyRef& succ = copies[lane[next_index]];
      succ.lane_pred_done = true;
      succ.lane_ready = time;
      try_start(lane[next_index]);
    }

    // Deliver messages.
    for (const Delivery& d : outbox[ci]) {
      CopyRef& consumer = copies[d.to_copy];
      const graph::Edge& edge = graph.edge(d.edge);
      double arrival = time;
      if (consumer.proc != c.proc) {
        ++result.num_messages;
        record(time, EventKind::MsgSend, consumer.task, d.edge, c.proc);
        if (options.link_contention &&
            machine.params().routing == machine::Routing::StoreAndForward) {
          // Hop-by-hop with per-link queueing.
          const auto path = machine.topology().route(c.proc, consumer.proc);
          double at = time;
          for (std::size_t h = 0; h + 1 < path.size(); ++h) {
            const double traversal = machine.comm_time_hops(edge.bytes, 1);
            double& free_at = link_free[link_key(path[h], path[h + 1])];
            const double depart = std::max(at, free_at);
            result.max_queue_delay =
                std::max(result.max_queue_delay, depart - at);
            free_at = depart + traversal;
            at = depart + traversal;
            result.total_link_time += traversal;
            record(at, EventKind::MsgHop, consumer.task, d.edge, path[h + 1]);
          }
          arrival = at;
        } else {
          arrival = time + machine.comm_time(edge.bytes, c.proc, consumer.proc);
          result.total_link_time +=
              machine.comm_time(edge.bytes, c.proc, consumer.proc);
        }
        if (plan != nullptr && plan->perturbs_messages() &&
            arrival > time) {
          // Dropped attempts each burn a full transmission plus backoff;
          // the final attempt lands with a jitter fraction of the base
          // latency added. The fate hash keys on (edge, from, to), so
          // replays are order-independent.
          const double latency = arrival - time;
          const fault::MsgFate fate =
              plan->msg_fate(d.edge, c.proc, consumer.proc);
          double sent = time;
          for (int attempt = 1; attempt < fate.attempts; ++attempt) {
            record(sent + latency, EventKind::MsgDrop, consumer.task, d.edge,
                   consumer.proc);
            sent += latency + plan->msg_loss().backoff;
            record(sent, EventKind::MsgRetry, consumer.task, d.edge, c.proc);
            result.total_link_time += latency;
          }
          arrival = sent + latency +
                    plan->msg_delay().jitter * fate.jitter_fraction * latency;
        }
        record(arrival, EventKind::MsgArrive, consumer.task, d.edge,
               consumer.proc);
      }
      consumer.msg_ready = std::max(consumer.msg_ready, arrival);
      BANGER_ASSERT(consumer.pending_msgs > 0, "message accounting broken");
      --consumer.pending_msgs;
      try_start(d.to_copy);
    }
  }

  if (plan == nullptr) {
    if (finished != copies.size()) {
      fail(ErrorCode::Schedule,
           "simulation deadlocked: " +
               std::to_string(copies.size() - finished) +
               " copies never became ready (infeasible schedule?)");
    }
  } else {
    // Stranded copies are the expected outcome of a crash; report the
    // completion state instead of failing.
    result.task_finished.assign(graph.num_tasks(), 0);
    for (const CopyRef& c : copies) {
      if (!c.started || c.killed) continue;
      result.task_finished[c.task] = 1;
      result.finished_copies.push_back(
          {c.task, c.proc, c.start, c.finish, c.duplicate});
    }
    result.complete =
        std::find(result.task_finished.begin(), result.task_finished.end(),
                  std::uint8_t{0}) == result.task_finished.end();
    for (const fault::CrashFault& crash : plan->crashes()) {
      if (crash.at <= result.makespan + 1e-12) {
        record(crash.at, EventKind::ProcCrash, graph::kNoTask, 0, crash.proc);
      }
    }
  }

  std::stable_sort(result.events.begin(), result.events.end(),
                   [](const SimEvent& a, const SimEvent& b) {
                     return a.time < b.time;
                   });

  // Observability: accumulate-only metrics, so concurrent simulations
  // (fault Monte Carlo trials) still sum to a deterministic total.
  if (obs::TraceRecorder* rec = obs::current()) {
    rec->bump("sim.runs");
    rec->bump("sim.messages", static_cast<double>(result.num_messages));
    rec->bump("sim.link_seconds", result.total_link_time);
    rec->bump("sim.makespan_total", result.makespan);
    if (plan != nullptr) {
      rec->bump("sim.copies_killed", static_cast<double>(result.killed.size()));
      if (!result.complete) rec->bump("sim.incomplete_runs");
    }
  }
  return result;
}

Schedule as_schedule(const SimResult& result, int num_procs,
                     const std::string& label) {
  Schedule schedule(num_procs, label);
  for (graph::TaskId t = 0; t < result.tasks.size(); ++t) {
    const TaskTiming& timing = result.tasks[t];
    schedule.place(t, timing.proc, timing.start, timing.finish);
  }
  return schedule;
}

}  // namespace banger::sim
