// banger/sim/simulator.hpp
//
// Discrete-event simulation of a scheduled PITL program on a target
// machine. The scheduler predicts times analytically; the simulator
// *replays* the schedule — tasks execute in their per-processor order,
// each starting when its processor is free and its input messages have
// arrived, messages travel the topology hop by hop — and reports what
// actually happens, optionally with link contention (which the analytic
// model ignores; ablation ABL3 quantifies the gap).
//
// The simulator also produces the time-ordered event log behind Banger's
// "graphical displays and animations" feedback.
#pragma once

#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "sched/repair.hpp"
#include "sched/schedule.hpp"

namespace banger::sim {

using graph::TaskGraph;
using machine::Machine;
using machine::ProcId;
using sched::Schedule;

struct SimOptions {
  /// Serialise messages through each directed link (store-and-forward
  /// queueing). Off = infinite link capacity, matching the scheduler's
  /// analytic assumption.
  bool link_contention = false;
  /// Record the animation event log (costs memory on big runs). Turning
  /// this off only drops the `events` vector; per-task `TaskTiming`,
  /// processor busy times, and all the scalar metrics are still
  /// populated.
  bool record_events = true;
  /// Optional fault plan to inject (crashes, slowdowns, message loss /
  /// jitter). Not owned; must outlive the simulate() call. nullptr or an
  /// empty plan reproduces the fault-free replay exactly.
  const fault::FaultPlan* faults = nullptr;
};

enum class EventKind : std::uint8_t {
  TaskStart,
  TaskFinish,
  MsgSend,
  MsgHop,
  MsgArrive,
  // Fault events (only emitted when SimOptions::faults is set):
  ProcCrash,  ///< a processor fail-stopped
  TaskKill,   ///< a running copy died mid-execution with its processor
  MsgDrop,    ///< a transmission attempt was lost
  MsgRetry,   ///< the sender retransmitted after backoff
  TaskReexec, ///< a repair pass re-ran a lost task (emitted by core)
};

std::string_view to_string(EventKind kind) noexcept;

struct SimEvent {
  double time = 0.0;
  EventKind kind = EventKind::TaskStart;
  graph::TaskId task = graph::kNoTask;  ///< task or message's edge target
  graph::EdgeId edge = 0;               ///< message events only
  ProcId proc = -1;                     ///< where it happened
};

struct TaskTiming {
  double start = 0.0;
  double finish = 0.0;
  ProcId proc = -1;
};

struct SimResult {
  double makespan = 0.0;
  /// Primary-copy timings per task id. Always populated, even with
  /// record_events=false. Under a fault plan a task whose primary copy
  /// never finished keeps the default {0, 0, -1} entry.
  std::vector<TaskTiming> tasks;
  /// Busy seconds per processor.
  std::vector<double> proc_busy;
  std::size_t num_messages = 0;
  /// Seconds of link occupation summed over all hops (retransmissions
  /// of dropped messages count each attempt).
  double total_link_time = 0.0;
  /// Largest queueing delay any message suffered (0 without contention).
  double max_queue_delay = 0.0;
  std::vector<SimEvent> events;  ///< time-ordered when recorded

  // ---- Fault reporting (filled only when SimOptions::faults is set;
  // without a plan `complete` stays true and the vectors stay empty). --
  /// One in-flight copy killed by a processor crash.
  struct Killed {
    graph::TaskId task = graph::kNoTask;
    ProcId proc = -1;
    double start = 0.0;  ///< when the doomed copy started
    double at = 0.0;     ///< crash time = when the work was lost
  };
  /// True when every task finished at least one copy (fault-free runs
  /// always complete; a crash usually strands part of the frontier).
  bool complete = true;
  /// Per task id: 1 when some copy finished anywhere.
  std::vector<std::uint8_t> task_finished;
  /// Every copy that ran to completion, in placement order — the input
  /// the repair scheduler needs.
  std::vector<sched::CompletedCopy> finished_copies;
  /// Copies that died mid-execution.
  std::vector<Killed> killed;

  /// Renders the first `limit` events as an animation script — one line
  /// per event, the text form of Banger's schedule animation.
  [[nodiscard]] std::string animation(std::size_t limit = 100) const;
};

/// Simulates `schedule` (which must be feasible for graph+machine).
/// Throws Error{Schedule} if the schedule is structurally unusable
/// (missing placements). Without a fault plan, a wedged replay is a
/// deadlock error; with one, stranded work is expected and reported via
/// SimResult::complete / task_finished instead.
SimResult simulate(const TaskGraph& graph, const Machine& machine,
                   const Schedule& schedule, const SimOptions& options = {});

/// Repackages simulated (actual) task timings as a Schedule so every
/// schedule renderer (Gantt, SVG, Chrome trace) can draw planned vs
/// simulated side by side. Duplicate copies are not reconstructed.
Schedule as_schedule(const SimResult& result, int num_procs,
                     const std::string& label = "simulated");

}  // namespace banger::sim
