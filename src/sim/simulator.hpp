// banger/sim/simulator.hpp
//
// Discrete-event simulation of a scheduled PITL program on a target
// machine. The scheduler predicts times analytically; the simulator
// *replays* the schedule — tasks execute in their per-processor order,
// each starting when its processor is free and its input messages have
// arrived, messages travel the topology hop by hop — and reports what
// actually happens, optionally with link contention (which the analytic
// model ignores; ablation ABL3 quantifies the gap).
//
// The simulator also produces the time-ordered event log behind Banger's
// "graphical displays and animations" feedback.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.hpp"

namespace banger::sim {

using graph::TaskGraph;
using machine::Machine;
using machine::ProcId;
using sched::Schedule;

struct SimOptions {
  /// Serialise messages through each directed link (store-and-forward
  /// queueing). Off = infinite link capacity, matching the scheduler's
  /// analytic assumption.
  bool link_contention = false;
  /// Record the animation event log (costs memory on big runs).
  bool record_events = true;
};

enum class EventKind : std::uint8_t {
  TaskStart,
  TaskFinish,
  MsgSend,
  MsgHop,
  MsgArrive,
};

std::string_view to_string(EventKind kind) noexcept;

struct SimEvent {
  double time = 0.0;
  EventKind kind = EventKind::TaskStart;
  graph::TaskId task = graph::kNoTask;  ///< task or message's edge target
  graph::EdgeId edge = 0;               ///< message events only
  ProcId proc = -1;                     ///< where it happened
};

struct TaskTiming {
  double start = 0.0;
  double finish = 0.0;
  ProcId proc = -1;
};

struct SimResult {
  double makespan = 0.0;
  /// Primary-copy timings per task id.
  std::vector<TaskTiming> tasks;
  /// Busy seconds per processor.
  std::vector<double> proc_busy;
  std::size_t num_messages = 0;
  /// Seconds of link occupation summed over all hops.
  double total_link_time = 0.0;
  /// Largest queueing delay any message suffered (0 without contention).
  double max_queue_delay = 0.0;
  std::vector<SimEvent> events;  ///< time-ordered when recorded

  /// Renders the first `limit` events as an animation script — one line
  /// per event, the text form of Banger's schedule animation.
  [[nodiscard]] std::string animation(std::size_t limit = 100) const;
};

/// Simulates `schedule` (which must be feasible for graph+machine).
/// Throws Error{Schedule} if the schedule is structurally unusable
/// (missing placements).
SimResult simulate(const TaskGraph& graph, const Machine& machine,
                   const Schedule& schedule, const SimOptions& options = {});

/// Repackages simulated (actual) task timings as a Schedule so every
/// schedule renderer (Gantt, SVG, Chrome trace) can draw planned vs
/// simulated side by side. Duplicate copies are not reconstructed.
Schedule as_schedule(const SimResult& result, int num_procs,
                     const std::string& label = "simulated");

}  // namespace banger::sim
